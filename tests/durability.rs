//! Durability integration tests: crash recovery must be invisible.
//!
//! The contract under test is the strongest one the store can make: after a
//! crash at *any* point in a checkin stream, snapshot-load + WAL-replay
//! produces a server whose parameters, iteration, and per-device ε ledger are
//! **bitwise identical** to an uninterrupted run — and resuming the stream
//! lands on the exact same trajectory. A property test sweeps random crash
//! points (including torn WAL tails) at the store level, and a networked test
//! SIGKILL-style crashes a live TCP server mid-experiment and restarts it from
//! its data directory.

use crowd_ml::core::config::ServerConfig;
use crowd_ml::core::device::CheckinPayload;
use crowd_ml::core::server::{EpochAggregate, Server, ServerState};
use crowd_ml::learning::MulticlassLogistic;
use crowd_ml::linalg::Vector;
use crowd_ml::net::{DeviceClient, NetServer};
use crowd_ml::proto::auth::{AuthToken, TokenRegistry};
use crowd_ml::store::testutil::temp_dir;
use crowd_ml::store::Store;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use std::time::Duration;

const DIM: usize = 4;
const CLASSES: usize = 3;
const PARAM_DIM: usize = DIM * CLASSES;

fn model() -> MulticlassLogistic {
    MulticlassLogistic::new(DIM, CLASSES).unwrap()
}

/// The durable configuration under test: ε accounting on (the ledger must
/// survive), periodic snapshots so crash points land before, on, and after
/// snapshot boundaries.
fn durable_config(dir: &Path, snapshot_every: u64) -> ServerConfig {
    ServerConfig::new()
        .with_rate_constant(1.5)
        .with_budget(0.3, f64::INFINITY)
        .with_data_dir(dir)
        .with_snapshot_every(snapshot_every)
}

/// The same configuration without persistence: the uninterrupted reference.
fn volatile_config() -> ServerConfig {
    ServerConfig::new()
        .with_rate_constant(1.5)
        .with_budget(0.3, f64::INFINITY)
}

/// A deterministic checkin stream: same seed, same payloads, bit for bit.
fn stream(seed: u64, n: usize) -> Vec<CheckinPayload> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|step| CheckinPayload {
            device_id: step as u64 % 4,
            checkout_iteration: step as u64,
            nonce: 0,
            gradient: Vector::from_vec((0..PARAM_DIM).map(|_| rng.gen_range(-1.0..1.0)).collect())
                .into(),
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1, 0],
        })
        .collect()
}

/// One durable checkin through the store protocol: WAL-append (write-ahead),
/// apply, snapshot when due — the same order `crowd-agg` uses.
fn durable_checkin(store: &mut Store, server: &mut Server<MulticlassLogistic>, p: &CheckinPayload) {
    let epoch = EpochAggregate::from_payload(p);
    let charges = server.epoch_charges(&epoch);
    store
        .log_epoch(server.iteration(), &epoch, &charges)
        .unwrap();
    server.apply_aggregate(&epoch).unwrap();
    if store.note_applied() {
        store.snapshot(&server.export_state()).unwrap();
    }
}

/// Reference states after every prefix of the stream, on a volatile server.
fn reference_states(payloads: &[CheckinPayload]) -> Vec<ServerState> {
    let mut server = Server::new(model(), volatile_config()).unwrap();
    let mut states = vec![server.export_state()];
    for p in payloads {
        server
            .apply_aggregate(&EpochAggregate::from_payload(p))
            .unwrap();
        states.push(server.export_state());
    }
    states
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash at a random point in a random checkin stream: the recovered
    /// server must equal the uninterrupted run bit for bit — parameters,
    /// iteration, AND budget ledger — and resuming must land on the same
    /// final state.
    #[test]
    fn recovery_at_random_crash_point_is_bitwise_identical(
        seed in 0u64..10_000,
        n in 4usize..24,
        crash_num in 0u64..1_000,
        snapshot_every in 1u64..7,
    ) {
        let crash_after = (crash_num as usize) % (n + 1);
        let payloads = stream(seed, n);
        let reference = reference_states(&payloads);

        let dir = temp_dir("prop");
        let config = durable_config(&dir, snapshot_every);
        let (mut store, mut server, _) = Store::open(model(), config.clone()).unwrap();
        for p in &payloads[..crash_after] {
            durable_checkin(&mut store, &mut server, p);
        }
        // Crash: no checkpoint, no flush.
        drop(store);
        drop(server);

        let (mut store, mut server, report) = Store::open(model(), config).unwrap();
        let recovered = server.export_state();
        prop_assert_eq!(&recovered, &reference[crash_after]);
        // Bitwise, not approximately: compare the raw f64 bit patterns.
        let recovered_bits: Vec<u64> =
            recovered.params.iter().map(|v| v.to_bits()).collect();
        let reference_bits: Vec<u64> =
            reference[crash_after].params.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(recovered_bits, reference_bits);
        prop_assert_eq!(recovered.iteration, crash_after as u64);
        prop_assert_eq!(
            &recovered.budget_ledger,
            &reference[crash_after].budget_ledger
        );
        prop_assert_eq!(report.skipped_epochs, 0);

        // Resuming the stream reproduces the uninterrupted trajectory exactly.
        for p in &payloads[crash_after..] {
            durable_checkin(&mut store, &mut server, p);
        }
        prop_assert_eq!(&server.export_state(), &reference[n]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A crash that tears the final WAL record (partial append) recovers to
    /// the last complete epoch — still bitwise equal to the reference at that
    /// iteration.
    #[test]
    fn torn_wal_tail_recovers_to_last_complete_epoch(
        seed in 0u64..10_000,
        n in 2usize..12,
        tear in 1u64..40,
    ) {
        let payloads = stream(seed, n);
        let reference = reference_states(&payloads);

        let dir = temp_dir("torn");
        // No periodic snapshots: everything lives in the WAL, so the tear is
        // guaranteed to hit the only copy of the newest epoch.
        let config = durable_config(&dir, 0);
        let (mut store, mut server, _) = Store::open(model(), config.clone()).unwrap();
        for p in &payloads {
            durable_checkin(&mut store, &mut server, p);
        }
        let wal_path = dir.join(format!("wal-{:08}.log", store.wal_seq()));
        drop(store);
        drop(server);

        let len = std::fs::metadata(&wal_path).unwrap().len();
        let tear = tear.min(len.saturating_sub(8));
        std::fs::OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .unwrap()
            .set_len(len - tear)
            .unwrap();

        let (_store, server, report) = Store::open(model(), config).unwrap();
        let recovered = server.export_state();
        let iteration = recovered.iteration as usize;
        prop_assert!(iteration <= n);
        prop_assert_eq!(&recovered, &reference[iteration]);
        prop_assert!(report.torn_tail || iteration == n);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Runs `body` on a worker thread and fails the test if it has not finished
/// within `limit` (sandbox watchdog, as in `network_deployment.rs`).
fn with_timeout(limit: Duration, body: fn()) {
    use std::sync::mpsc::RecvTimeoutError;
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(limit) {
        Ok(()) => {
            let _ = worker.join();
        }
        Err(RecvTimeoutError::Disconnected) => {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
        Err(RecvTimeoutError::Timeout) => {
            panic!("test exceeded its {limit:?} watchdog timeout")
        }
    }
}

/// The acceptance test: a live TCP server is crash-killed mid-experiment and
/// restarted from its data directory; training resumes on the same trajectory
/// (bitwise-identical final parameters vs. an uninterrupted server) and the
/// per-device ε spend survives the restart.
#[test]
fn tcp_server_killed_midway_resumes_identical_trajectory() {
    with_timeout(
        Duration::from_secs(120),
        tcp_server_killed_midway_resumes_identical_trajectory_body,
    );
}

fn tcp_server_killed_midway_resumes_identical_trajectory_body() {
    let n = 20;
    let crash_after = 8;
    let payloads = stream(11, n);
    let secret = 0xD00D;
    let tokens = || TokenRegistry::with_derived_tokens(4, secret);

    // One sequential client driving the stream keeps the epoch order (and so
    // the learning-rate schedule position) deterministic across runs.
    let drive = |addr, slice: &[CheckinPayload]| {
        for p in slice {
            let client =
                DeviceClient::builder(addr, p.device_id, AuthToken::derive(p.device_id, secret))
                    .build();
            assert!(client.checkin(p).unwrap().applied());
        }
    };

    // Uninterrupted reference over TCP, volatile server.
    let reference = NetServer::start(model(), volatile_config(), tokens()).unwrap();
    drive(reference.addr(), &payloads);
    assert_eq!(reference.iteration(), n as u64);
    let reference_params = reference.params();
    let reference_ledger = reference.budget_ledger();
    reference.shutdown();

    // Durable run: crash-kill after `crash_after` acknowledged checkins.
    let dir = temp_dir("tcp");
    let config = durable_config(&dir, 3);
    let server = NetServer::start(model(), config.clone(), tokens()).unwrap();
    drive(server.addr(), &payloads[..crash_after]);
    assert_eq!(server.iteration(), crash_after as u64);
    server.kill();

    // Restart from disk: recovery must report prior state, resume serving,
    // and the finished experiment must land on the reference bit for bit.
    let server = NetServer::start(model(), config, tokens()).unwrap();
    let report = server.recovery_report().unwrap().clone();
    assert!(report.recovered(), "restart must recover prior state");
    assert_eq!(server.iteration(), crash_after as u64);
    drive(server.addr(), &payloads[crash_after..]);
    assert_eq!(server.iteration(), n as u64);

    let final_bits: Vec<u64> = server.params().iter().map(|v| v.to_bits()).collect();
    let reference_bits: Vec<u64> = reference_params.iter().map(|v| v.to_bits()).collect();
    assert_eq!(
        final_bits, reference_bits,
        "recovered trajectory must be bitwise identical to the uninterrupted run"
    );
    // The ε spend of every device survived the crash and kept accumulating.
    assert_eq!(server.budget_ledger(), reference_ledger);
    assert!(!server.budget_ledger().is_empty());
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}
