//! Reproducibility guarantees: a fixed seed yields identical experiments,
//! different seeds yield different noise realizations, and the sharded
//! aggregation runtime reproduces the sequential single-lock aggregate bit for
//! bit.

use crowd_ml::agg::AggRuntime;
use crowd_ml::core::config::{AggSettings, PrivacyConfig, ServerConfig};
use crowd_ml::core::device::CheckinPayload;
use crowd_ml::core::experiment::{CrowdMlExperiment, ExperimentConfig};
use crowd_ml::core::server::Server;
use crowd_ml::data::synthetic::GaussianMixtureSpec;
use crowd_ml::learning::MulticlassLogistic;
use crowd_ml::linalg::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn experiment(seed: u64) -> CrowdMlExperiment {
    let spec = GaussianMixtureSpec::new(8, 3)
        .with_train_size(600)
        .with_test_size(150);
    let config = ExperimentConfig::builder()
        .devices(15)
        .minibatch(5)
        .privacy(PrivacyConfig::with_total_epsilon(2.0))
        .delay_delta(25.0)
        .eval_points(5)
        .seed(seed)
        .build();
    CrowdMlExperiment::gaussian_mixture(spec, config)
}

#[test]
fn same_seed_same_everything() {
    let a = experiment(77).run().expect("run a");
    let b = experiment(77).run().expect("run b");
    assert_eq!(a.curve, b.curve);
    assert_eq!(a.online_error, b.online_error);
    assert_eq!(a.server_iterations, b.server_iterations);

    // Baselines are deterministic too.
    let batch_a = experiment(77).run_central_batch().expect("batch a");
    let batch_b = experiment(77).run_central_batch().expect("batch b");
    assert_eq!(batch_a, batch_b);
}

#[test]
fn different_seeds_differ() {
    let a = experiment(1).run().expect("run 1");
    let b = experiment(2).run().expect("run 2");
    // Different data, partitioning, and noise: the curves should not coincide.
    assert_ne!(a.curve, b.curve);
}

const DETERMINISM_DIM: usize = 8;
const DETERMINISM_CLASSES: usize = 4;
const DETERMINISM_DEVICES: u64 = 12;
const DETERMINISM_CHECKINS: u64 = 4;

fn determinism_payload(device: u64, step: u64) -> CheckinPayload {
    let dim = DETERMINISM_DIM * DETERMINISM_CLASSES;
    let mut rng = StdRng::seed_from_u64(device * 7919 + step);
    CheckinPayload {
        device_id: device,
        checkout_iteration: step,
        nonce: 0,
        gradient: Vector::from_vec((0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()).into(),
        num_samples: 3,
        error_count: rng.gen_range(-2i64..3),
        label_counts: (0..DETERMINISM_CLASSES)
            .map(|_| rng.gen_range(0i64..3))
            .collect(),
    }
}

fn determinism_runtime(agg: AggSettings) -> AggRuntime<MulticlassLogistic> {
    let model = MulticlassLogistic::new(DETERMINISM_DIM, DETERMINISM_CLASSES).unwrap();
    let config = ServerConfig::new().with_rate_constant(1.5).with_agg(agg);
    AggRuntime::new(Server::new(model, config).unwrap()).unwrap()
}

/// The sharded runtime's epoch aggregate must equal the sequential single-lock
/// aggregate bit for bit: many shards fed from concurrent device threads end
/// in exactly the same parameters as one shard fed sequentially.
///
/// Epoch boundaries are pinned (one epoch covering every checkin, idle flush
/// disabled) so the only thing under test is what sharding can change: which
/// stripe accumulated each gradient and in which order the stripes merged.
#[test]
fn sharded_aggregation_matches_single_lock_bitwise() {
    let total = DETERMINISM_DEVICES * DETERMINISM_CHECKINS;

    // Sequential single-lock reference: one stripe, one thread, one epoch.
    let sequential = determinism_runtime(AggSettings {
        shard_count: 1,
        queue_bound: 2 * total as usize,
        epoch_size: total,
        worker_threads: 1,
        retry_after_ms: 1,
        flush_idle_ms: 0,
    });
    let mut waits = Vec::new();
    for device in 0..DETERMINISM_DEVICES {
        for step in 0..DETERMINISM_CHECKINS {
            waits.push(
                sequential
                    .submit(determinism_payload(device, step))
                    .expect("sequential submit"),
            );
        }
    }
    for wait in waits {
        assert!(wait.wait().expect("sequential outcome").accepted);
    }
    let expected_params = sequential.params();
    let expected_iteration = sequential.iteration();
    let expected_samples = sequential.total_samples();
    sequential.shutdown();

    // Concurrent sharded run: 7 stripes, one thread per device. A single
    // worker keeps each device's own checkins accumulating in submission order
    // (the guarantee the live protocol gets from devices awaiting their acks),
    // while the 12 device threads still race freely against each other — the
    // nondeterminism the per-device stripes and fixed merge order must absorb.
    let sharded = Arc::new(determinism_runtime(AggSettings {
        shard_count: 7,
        queue_bound: 2 * total as usize,
        epoch_size: total,
        worker_threads: 1,
        retry_after_ms: 1,
        flush_idle_ms: 0,
    }));
    let mut threads = Vec::new();
    for device in 0..DETERMINISM_DEVICES {
        let runtime = Arc::clone(&sharded);
        threads.push(std::thread::spawn(move || {
            // Each device's own checkins stay sequential (as the protocol
            // guarantees), but devices race freely against each other.
            let handles: Vec<_> = (0..DETERMINISM_CHECKINS)
                .map(|step| {
                    runtime
                        .submit(determinism_payload(device, step))
                        .expect("sharded submit")
                })
                .collect();
            for handle in handles {
                assert!(handle.wait().expect("sharded outcome").accepted);
            }
        }));
    }
    for thread in threads {
        thread.join().expect("device thread");
    }

    assert_eq!(sharded.iteration(), expected_iteration);
    assert_eq!(sharded.total_samples(), expected_samples);
    // Bit-for-bit: raw f64 comparison, no tolerance.
    assert_eq!(sharded.params().as_slice(), expected_params.as_slice());
    sharded.shutdown();
}

/// With the default per-checkin epochs (`epoch_size = 1`), the runtime applies
/// exactly the classic `Server::checkin` update: driving the same payloads
/// sequentially through both paths ends in bitwise identical parameters.
#[test]
fn runtime_epoch_size_one_matches_classic_server_bitwise() {
    let model = MulticlassLogistic::new(DETERMINISM_DIM, DETERMINISM_CLASSES).unwrap();
    let config = ServerConfig::new().with_rate_constant(1.5);
    let mut classic = Server::new(model, config.clone()).unwrap();
    let runtime = determinism_runtime(config.agg);

    for device in 0..DETERMINISM_DEVICES {
        for step in 0..DETERMINISM_CHECKINS {
            let payload = determinism_payload(device, step);
            let classic_outcome = classic.checkin(&payload).unwrap();
            let runtime_outcome = runtime.checkin(payload).unwrap();
            assert_eq!(classic_outcome.iteration, runtime_outcome.iteration);
            assert_eq!(classic_outcome.accepted, runtime_outcome.accepted);
        }
    }
    assert_eq!(classic.params().as_slice(), runtime.params().as_slice());
    assert_eq!(classic.total_samples(), runtime.total_samples());
    runtime.shutdown();
}

/// crowd-scope: instrumenting a deterministic run must not break its
/// determinism. Two identical seeded runs on logical-clock registries render
/// byte-identical text and JSON metric dumps — counters, gauges, and
/// histogram percentiles included.
#[test]
fn instrumented_runs_render_byte_identical_dumps() {
    use crowd_ml::telemetry::{Clock, Registry};

    fn run_once() -> (String, String) {
        let model = MulticlassLogistic::new(DETERMINISM_DIM, DETERMINISM_CLASSES).unwrap();
        let config = ServerConfig::new()
            .with_rate_constant(1.5)
            .with_budget(0.25, f64::INFINITY)
            .with_agg(AggSettings {
                shard_count: 3,
                queue_bound: 64,
                epoch_size: 1,
                worker_threads: 1,
                retry_after_ms: 1,
                flush_idle_ms: 0,
            });
        let metrics = Arc::new(Registry::with_clock(Clock::logical()));
        let runtime = AggRuntime::with_instrumentation(
            Server::new(model, config).unwrap(),
            None,
            Arc::clone(&metrics),
        )
        .unwrap();
        for device in 0..DETERMINISM_DEVICES {
            for step in 0..DETERMINISM_CHECKINS {
                // Deterministic time: tick between checkins, never while one
                // is in flight, so every measured latency is reproducible.
                metrics.clock().advance(7);
                let wait = runtime
                    .submit(determinism_payload(device, step))
                    .expect("instrumented submit");
                assert!(wait.wait().expect("instrumented outcome").accepted);
            }
        }
        runtime.shutdown();
        let snap = metrics.snapshot();
        (snap.render_text(), snap.render_json())
    }

    let (text_a, json_a) = run_once();
    let (text_b, json_b) = run_once();
    assert_eq!(text_a, text_b, "text dumps must be byte-identical");
    assert_eq!(json_a, json_b, "JSON dumps must be byte-identical");
    assert!(text_a.contains("time base: logical"));
    // The dump reflects the run, not an empty registry.
    let total = DETERMINISM_DEVICES * DETERMINISM_CHECKINS;
    assert!(text_a.contains(&format!("counter checkins_applied {total}")));
    assert!(text_a.contains(&format!("counter epoch_merges {total}")));
    assert!(text_a.contains(&format!("hist eps_spend_microeps count={total}")));
}
