//! Reproducibility guarantees: a fixed seed yields identical experiments, and
//! different seeds yield different noise realizations.

use crowd_ml::core::config::PrivacyConfig;
use crowd_ml::core::experiment::{CrowdMlExperiment, ExperimentConfig};
use crowd_ml::data::synthetic::GaussianMixtureSpec;

fn experiment(seed: u64) -> CrowdMlExperiment {
    let spec = GaussianMixtureSpec::new(8, 3)
        .with_train_size(600)
        .with_test_size(150);
    let config = ExperimentConfig::builder()
        .devices(15)
        .minibatch(5)
        .privacy(PrivacyConfig::with_total_epsilon(2.0))
        .delay_delta(25.0)
        .eval_points(5)
        .seed(seed)
        .build();
    CrowdMlExperiment::gaussian_mixture(spec, config)
}

#[test]
fn same_seed_same_everything() {
    let a = experiment(77).run().expect("run a");
    let b = experiment(77).run().expect("run b");
    assert_eq!(a.curve, b.curve);
    assert_eq!(a.online_error, b.online_error);
    assert_eq!(a.server_iterations, b.server_iterations);

    // Baselines are deterministic too.
    let batch_a = experiment(77).run_central_batch().expect("batch a");
    let batch_b = experiment(77).run_central_batch().expect("batch b");
    assert_eq!(batch_a, batch_b);
}

#[test]
fn different_seeds_differ() {
    let a = experiment(1).run().expect("run 1");
    let b = experiment(2).run().expect("run 2");
    // Different data, partitioning, and noise: the curves should not coincide.
    assert_ne!(a.curve, b.curve);
}
