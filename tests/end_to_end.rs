//! Cross-crate integration tests: the qualitative claims of the paper's
//! evaluation must hold on the synthetic workloads.

use crowd_ml::core::config::PrivacyConfig;
use crowd_ml::core::experiment::{CrowdMlExperiment, ExperimentConfig};
use crowd_ml::data::synthetic::GaussianMixtureSpec;

fn spec() -> GaussianMixtureSpec {
    GaussianMixtureSpec::new(12, 5)
        .with_train_size(2500)
        .with_test_size(500)
        .with_mean_scale(2.2)
        .with_noise_std(0.65)
}

fn config(minibatch: usize, privacy: PrivacyConfig, delay: f64, seed: u64) -> ExperimentConfig {
    ExperimentConfig::builder()
        .devices(50)
        .minibatch(minibatch)
        .passes(1.0)
        .privacy(privacy)
        .delay_delta(delay)
        .rate_constant(1.5)
        .eval_points(8)
        .seed(seed)
        .build()
}

/// Fig. 4's qualitative claim: without privacy or delay, Crowd-ML converges to
/// roughly the centralized batch error while the decentralized approach stays far
/// behind.
#[test]
fn crowd_ml_matches_central_and_beats_decentralized() {
    let experiment = CrowdMlExperiment::gaussian_mixture(
        spec(),
        config(1, PrivacyConfig::non_private(), 0.0, 1),
    );
    let crowd_err = experiment.run().expect("crowd run").final_test_error();
    let central_err = experiment.run_central_batch().expect("central batch");
    let decentral_err = experiment
        .run_decentralized(15)
        .expect("decentralized")
        .final_error()
        .unwrap();

    assert!(central_err < 0.2, "central batch error {central_err}");
    assert!(
        crowd_err < central_err + 0.1,
        "crowd error {crowd_err} should approach central {central_err}"
    );
    // "Clearly behind" is a relative claim in Fig. 4: require a meaningful
    // absolute gap and at least double the error, rather than a fixed 0.1
    // offset whose pass/fail flips with the RNG stream backing the run.
    assert!(
        decentral_err > crowd_err + 0.05 && decentral_err > 2.0 * crowd_err,
        "decentralized {decentral_err} should trail crowd {crowd_err} clearly"
    );
}

/// Fig. 5's qualitative claim: under local differential privacy, increasing the
/// minibatch size recovers accuracy, and Crowd-ML beats centralized SGD on
/// input-perturbed data.
#[test]
fn minibatch_mitigates_privacy_noise_and_beats_input_perturbation() {
    let privacy = PrivacyConfig::from_inverse_epsilon(0.1).expect("privacy from inverse epsilon");

    let b1 = CrowdMlExperiment::gaussian_mixture(spec(), config(1, privacy, 0.0, 2))
        .run()
        .expect("b=1 run")
        .final_test_error();
    let b20_experiment = CrowdMlExperiment::gaussian_mixture(spec(), config(20, privacy, 0.0, 2));
    let b20 = b20_experiment.run().expect("b=20 run").final_test_error();

    assert!(
        b20 < b1,
        "larger minibatch should reduce the error under privacy: b1 {b1}, b20 {b20}"
    );

    let central_sgd_err = b20_experiment
        .run_central_sgd()
        .expect("central sgd")
        .final_error()
        .unwrap();
    assert!(
        b20 < central_sgd_err,
        "crowd (b=20) {b20} should beat central SGD on perturbed inputs {central_sgd_err}"
    );
}

/// Fig. 6's qualitative claim: with a reasonable minibatch, even large delays do
/// not destroy learning.
#[test]
fn large_delays_do_not_break_learning_with_minibatch() {
    let privacy = PrivacyConfig::from_inverse_epsilon(0.1).expect("privacy");
    let no_delay = CrowdMlExperiment::gaussian_mixture(spec(), config(20, privacy, 0.0, 3))
        .run()
        .expect("no delay")
        .final_test_error();
    let delayed = CrowdMlExperiment::gaussian_mixture(spec(), config(20, privacy, 500.0, 3))
        .run()
        .expect("delayed")
        .final_test_error();
    assert!(
        delayed < no_delay + 0.15,
        "delayed error {delayed} should stay close to undelayed {no_delay}"
    );
    // Both must beat the 0.8 chance level of a 5-class problem by a wide margin.
    assert!(delayed < 0.5);
}

/// The activity-recognition workload (Fig. 3) converges quickly and, within the
/// range of learning rates that move the parameters at all on ~300 samples, is
/// insensitive to the exact constant (the paper sweeps down to 1e-6 on its real
/// traces; on the synthetic traces the very small constants simply have not
/// learned yet, which EXPERIMENTS.md records as a deviation).
#[test]
fn activity_recognition_converges_for_wide_rate_range() {
    let mut test_errors = Vec::new();
    let mut online_finals = Vec::new();
    for &c in &[1e-1, 1.0] {
        let config = ExperimentConfig::builder()
            .devices(7)
            .minibatch(1)
            .rate_constant(c)
            .eval_points(3)
            .seed(42)
            .build();
        let outcome = CrowdMlExperiment::activity(40, 150, config)
            .run()
            .expect("activity run");
        test_errors.push(outcome.final_test_error());
        online_finals.push(*outcome.online_error.last().unwrap());
    }
    // Both runs end with a classifier that beats the 2/3 chance level of the
    // 3-class task, and the learning rates land in a similar range.
    for &err in &test_errors {
        assert!(err < 0.55, "final test error {err}");
    }
    for &err in &online_finals {
        assert!(err < 0.65, "time-averaged online error {err}");
    }
    let spread = test_errors.iter().cloned().fold(f64::MIN, f64::max)
        - test_errors.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 0.25, "rate sensitivity too high: {test_errors:?}");
}
