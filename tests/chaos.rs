//! Chaos suite: seeded fault-injection and churn sweeps over the real TCP
//! stack, asserting the three standing invariants under every plan:
//!
//! 1. **Termination** — every seeded run finishes under its watchdog; no
//!    fault schedule may wedge a device or the server.
//! 2. **Ledger integrity** — the server's ε ledger charges exactly one
//!    per-checkin ε per *acknowledged* checkin: duplicates, retries, and
//!    crash-recovery replays never over-charge a device.
//! 3. **Transport transparency** — when faults are confined to the transport
//!    layer (drops, delays, duplicates, truncations; stable fleet, no
//!    crashes), the final parameters land bitwise on the fault-free
//!    reference: retries plus the dedup nonce deliver exactly-once checkins.
//!
//! Seed control:
//! * `CHAOS_SEEDS=n` sweeps seeds `0..n` (default 16; CI's nightly uses 64).
//! * `CHAOS_SEED=s` pins a single seed — the one-line repro for a failure.
//!
//! On failure the suite prints the failing seed, a repro command, and writes
//! the run's full trace to `target/chaos/` (uploaded as a CI artifact).

use crowd_ml::net::chaos::{ChaosCluster, ChaosReport};
use crowd_ml::sim::chaos::FaultPlan;
use crowd_ml::store::testutil::temp_dir;
use std::time::Duration;

/// Per-seed watchdog. Runs are sub-second in the common case; the limit is
/// generous because CI runners stall unpredictably.
const WATCHDOG: Duration = Duration::from_secs(120);

/// The seeds to sweep: `CHAOS_SEED` pins one, `CHAOS_SEEDS` widens the sweep.
fn seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        if let Ok(seed) = s.trim().parse() {
            return vec![seed];
        }
    }
    let count: u64 = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(16);
    (0..count).collect()
}

/// Writes the run's trace to `target/chaos/` and returns the repro line shown
/// in the panic message.
fn dump_failure(kind: &str, seed: u64, report: Option<&ChaosReport>, detail: &str) -> String {
    let dir = std::path::Path::new("target").join("chaos");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("trace-{kind}-seed{seed}.log"));
    let mut contents = format!("chaos failure: {kind}, seed {seed}\n{detail}\n\n");
    if let Some(report) = report {
        contents.push_str(&format!(
            "iterations: {}\nledger: {:?}\nacked: {:?}\nrestarts: {}\n\n-- trace --\n",
            report.iterations, report.ledger, report.acked_checkins, report.restarts
        ));
        for line in &report.trace {
            contents.push_str(line);
            contents.push('\n');
        }
    }
    let _ = std::fs::write(&path, contents);
    format!(
        "chaos {kind} failed at seed {seed}: {detail}\n\
         repro: CHAOS_SEED={seed} cargo test --release --test chaos {kind} -- --nocapture\n\
         trace: {}",
        path.display()
    )
}

/// Runs `body(seed)` under the watchdog; a hang fails with the seed repro.
fn sweep(kind: &'static str, body: fn(u64)) {
    for seed in seeds() {
        let (tx, rx) = std::sync::mpsc::channel();
        let worker = std::thread::spawn(move || {
            body(seed);
            let _ = tx.send(());
        });
        match rx.recv_timeout(WATCHDOG) {
            Ok(()) => {
                let _ = worker.join();
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                if let Err(panic) = worker.join() {
                    std::panic::resume_unwind(panic);
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                panic!(
                    "{}",
                    dump_failure(
                        kind,
                        seed,
                        None,
                        &format!(
                            "run exceeded its {WATCHDOG:?} watchdog (invariant 1: termination)"
                        )
                    )
                );
            }
        }
    }
}

/// Invariant 2, checked per device: `ledger[d] == ε · acked[d]` exactly (up to
/// float accumulation noise). Equality — not just an upper bound — because
/// every acknowledged checkin must be charged once, and nothing else may be.
/// `eps` is the run's configured `ChaosCluster::per_checkin_epsilon`.
fn assert_ledger_integrity(kind: &str, seed: u64, eps: f64, report: &ChaosReport) {
    for &(device, charged) in &report.ledger {
        let expected = eps * report.acked_checkins[device as usize] as f64;
        if (charged - expected).abs() > 1e-9 {
            panic!(
                "{}",
                dump_failure(
                    kind,
                    seed,
                    Some(report),
                    &format!(
                        "ledger integrity: device {device} charged ε {charged}, \
                         expected ε·acked = {expected} (invariant 2)"
                    )
                )
            );
        }
    }
}

fn transport_only_body(seed: u64) {
    let reference_cluster = ChaosCluster::new(FaultPlan::fault_free(seed));
    let eps = reference_cluster.per_checkin_epsilon;
    let reference = reference_cluster.run().expect("reference run failed");
    let chaotic = match ChaosCluster::new(FaultPlan::transport_only(seed)).run() {
        Ok(r) => r,
        Err(e) => panic!(
            "{}",
            dump_failure("transport_only", seed, None, &format!("run error: {e}"))
        ),
    };
    assert_ledger_integrity("transport_only", seed, eps, &reference);
    assert_ledger_integrity("transport_only", seed, eps, &chaotic);
    // Invariant 3: transport faults are invisible in the final state.
    if chaotic.params.as_slice() != reference.params.as_slice()
        || chaotic.iterations != reference.iterations
        || chaotic.ledger != reference.ledger
        || chaotic.acked_checkins != reference.acked_checkins
    {
        panic!(
            "{}",
            dump_failure(
                "transport_only",
                seed,
                Some(&chaotic),
                &format!(
                    "bitwise divergence from fault-free reference (invariant 3): \
                     iterations {} vs {}, acked {:?} vs {:?}, params equal: {}",
                    chaotic.iterations,
                    reference.iterations,
                    chaotic.acked_checkins,
                    reference.acked_checkins,
                    chaotic.params.as_slice() == reference.params.as_slice()
                )
            )
        );
    }
}

fn churn_crash_body(seed: u64) {
    let dir = temp_dir(&format!("chaos-{seed}"));
    let plan = FaultPlan::full(seed, 24);
    let earliest_crash = plan
        .crash
        .as_ref()
        .and_then(|c| c.points.first().copied())
        .expect("full plans script at least one crash point");
    let mut cluster = ChaosCluster::new(plan);
    // Batched epochs + idle flush: straggler checkins arrive alone and must
    // resolve through the aggregator's flush-idle path.
    cluster.server = cluster.server.with_epoch_size(2);
    cluster.data_dir = Some(dir.clone());
    let eps = cluster.per_checkin_epsilon;
    let report = match cluster.run() {
        Ok(r) => r,
        Err(e) => panic!(
            "{}",
            dump_failure("churn_crash", seed, None, &format!("run error: {e}"))
        ),
    };
    // Invariant 2 holds through churn, crashes, and WAL recovery: every
    // acknowledged checkin is charged exactly once, survived restarts
    // included.
    assert_ledger_integrity("churn_crash", seed, eps, &report);
    // Crash points beyond what churn let the run reach legitimately never
    // fire; a restart is only owed when the earliest point was reachable.
    if report.restarts == 0 && earliest_crash <= report.iterations {
        panic!(
            "{}",
            dump_failure(
                "churn_crash",
                seed,
                Some(&report),
                &format!(
                    "the run reached iteration {} past the earliest crash point \
                     {earliest_crash} but never restarted the server",
                    report.iterations
                )
            )
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn rounds_body(seed: u64) {
    // Leg 1 — transport transparency with masking in the path: a rounds-mode
    // run under transport-only faults must land bitwise on the rounds-mode
    // fault-free reference. Masked shares ride the same retry + dedup
    // machinery as free-run checkins (per-round, the server keys dedup on
    // `(round, nonce)`), so faults must stay invisible.
    let reference_cluster = ChaosCluster::new(FaultPlan::fault_free(seed)).with_rounds();
    let eps = reference_cluster.per_checkin_epsilon;
    let reference = reference_cluster
        .run()
        .expect("rounds reference run failed");
    let chaotic = match ChaosCluster::new(FaultPlan::transport_only(seed))
        .with_rounds()
        .run()
    {
        Ok(r) => r,
        Err(e) => panic!(
            "{}",
            dump_failure("rounds", seed, None, &format!("run error: {e}"))
        ),
    };
    assert_ledger_integrity("rounds", seed, eps, &reference);
    assert_ledger_integrity("rounds", seed, eps, &chaotic);
    if chaotic.params.as_slice() != reference.params.as_slice()
        || chaotic.iterations != reference.iterations
        || chaotic.ledger != reference.ledger
        || chaotic.acked_checkins != reference.acked_checkins
    {
        panic!(
            "{}",
            dump_failure(
                "rounds",
                seed,
                Some(&chaotic),
                &format!(
                    "bitwise divergence from rounds-mode reference (invariant 3): \
                     iterations {} vs {}, acked {:?} vs {:?}, params equal: {}",
                    chaotic.iterations,
                    reference.iterations,
                    chaotic.acked_checkins,
                    reference.acked_checkins,
                    chaotic.params.as_slice() == reference.params.as_slice()
                )
            )
        );
    }
    // Leg 2 — scripted mid-round dropouts plus churn: cohort members vanish
    // without submitting and rounds finalize at their deadline from the
    // survivors (mask compensation). The ledger invariant must still hold:
    // only acknowledged contributions are ever charged.
    let stormy = match ChaosCluster::new(FaultPlan::rounds(seed))
        .with_rounds()
        .run()
    {
        Ok(r) => r,
        Err(e) => panic!(
            "{}",
            dump_failure("rounds", seed, None, &format!("dropout-leg run error: {e}"))
        ),
    };
    assert_ledger_integrity("rounds", seed, eps, &stormy);
}

#[test]
fn transport_only_plans_land_bitwise_on_the_reference() {
    sweep("transport_only", transport_only_body);
}

#[test]
fn rounds_plans_hold_the_standing_invariants() {
    sweep("rounds", rounds_body);
}

#[test]
fn churn_and_crash_plans_terminate_without_overcharging() {
    sweep("churn_crash", churn_crash_body);
}

#[test]
fn chaotic_runs_exercise_the_fault_paths() {
    // Meta-check on the harness itself: across a handful of seeds, the
    // transport plans actually injected faults that forced dedup replays —
    // otherwise the sweep would be vacuously green.
    let mut replays = 0u64;
    for seed in 0..4u64 {
        let report = ChaosCluster::new(FaultPlan::transport_only(seed))
            .run()
            .expect("chaotic run failed");
        replays += report.dedup_replays;
    }
    assert!(
        replays > 0,
        "no dedup replays across 4 seeds — the fault shim is not injecting"
    );
}
