//! Reactor-server integration suite: the scale claim, cross-server parity,
//! and durability through the event-driven path.
//!
//! The headline claim of the reactor subsystem is capacity: a fixed pool of
//! reactor threads holds thousands of concurrent device connections where the
//! thread-per-connection server would need thousands of OS threads. The scale
//! test below drives 2,000 devices — each holding a persistent connection for
//! its whole checkout+checkin lifetime — from one `FleetDriver` thread and
//! requires every exchange to complete.
//!
//! Correctness claims ride on the shared `ServerCore`: the chaos suite's
//! sequential schedule must land bitwise-identically on either server, and
//! crash/recovery semantics must be unchanged when the WAL-backed runtime is
//! fronted by the reactor. `CROWD_SERVER=reactor` re-runs the whole chaos
//! suite (`tests/chaos.rs`) against the reactor in CI; this file keeps the
//! always-on cross-server checks.

use crowd_ml::learning::MulticlassLogistic;
use crowd_ml::net::chaos::{ChaosCluster, ServerKind};
use crowd_ml::net::{DeviceClient, FleetConfig, FleetDriver, ReactorServer};
use crowd_ml::proto::auth::{AuthToken, TokenRegistry};
use crowd_ml::sim::chaos::FaultPlan;
use crowd_ml::store::testutil::temp_dir;
use std::time::Duration;

/// Watchdog wrapper: these tests drive real sockets, so a regression that
/// wedges the event loop should fail with a message, not hang CI.
fn under_watchdog(limit: Duration, body: fn()) {
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    rx.recv_timeout(limit).expect("test exceeded its watchdog");
    let _ = worker.join();
}

#[test]
fn reactor_holds_2000_concurrent_devices() {
    under_watchdog(Duration::from_secs(300), || {
        let devices = 2000usize;
        let model = MulticlassLogistic::new(4, 3).unwrap();
        let tokens = TokenRegistry::with_derived_tokens(devices as u64, 99);
        let handle =
            ReactorServer::start(model, crowd_ml::core::config::ServerConfig::new(), tokens)
                .unwrap();
        let config = FleetConfig {
            devices,
            rounds: 1,
            dim: 12,
            classes: 3,
            auth_secret: 99,
            // The whole fleet is admitted at once: 2k truly concurrent
            // connections against the fixed reactor pool.
            max_open: devices,
            ..FleetConfig::default()
        };
        let report = FleetDriver::run(handle.addr(), config).unwrap();
        assert_eq!(report.failed_devices, 0, "{report:?}");
        assert_eq!(report.acked + report.rejected, devices as u64);
        assert_eq!(report.checkouts, devices as u64);
        let stats = handle.reactor_stats().unwrap();
        assert!(
            stats.accepted >= devices as u64,
            "expected ≥{devices} accepted connections, saw {}",
            stats.accepted
        );
        assert_eq!(
            handle.runtime_stats().get("checkins_applied"),
            devices as u64
        );

        // crowd-scope acceptance: the live server under fleet load answers a
        // wire scrape with per-stage latency histograms and pressure gauges.
        let scraper = DeviceClient::builder(handle.addr(), 0, AuthToken::derive(0, 99)).build();
        // Scrape twice: a scrape's own service time is recorded after its
        // snapshot was taken, so only the second scrape can observe the first.
        scraper.scrape_metrics().unwrap();
        let report = scraper.scrape_metrics().unwrap();
        let counter = |name: &str| {
            report
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("missing counter {name}"))
        };
        assert!(counter("conns_accepted") >= devices as u64);
        assert_eq!(counter("checkins_applied"), devices as u64);
        let hist = |name: &str| {
            report
                .histograms
                .iter()
                .find(|h| h.name == name)
                .unwrap_or_else(|| panic!("missing histogram {name}"))
        };
        let checkin = hist("checkin_latency_us");
        assert_eq!(checkin.count, devices as u64);
        assert!(checkin.p50 <= checkin.p99 && checkin.p99 <= checkin.max.max(checkin.p99));
        assert!(hist("req_checkout_us").count >= devices as u64);
        // The scrape itself is instrumented, so its own histogram is live.
        assert!(hist("req_metrics_us").count >= 1);
        // Pressure gauges are present (zero once the fleet drained).
        for gauge in ["queue_depth", "conns_parked", "inflight"] {
            assert!(
                report.gauges.iter().any(|(n, _)| n == gauge),
                "missing gauge {gauge}"
            );
        }
        handle.shutdown();
    });
}

#[test]
fn chaos_transport_faults_on_reactor_land_bitwise_on_reference() {
    under_watchdog(Duration::from_secs(120), || {
        // Transport transparency (the chaos suite's strongest invariant),
        // with the reactor serving: a faulty run must land bitwise on the
        // fault-free reference of the same seed.
        let mut reference = ChaosCluster::new(FaultPlan::fault_free(23));
        reference.server_kind = ServerKind::Reactor;
        let mut chaotic = ChaosCluster::new(FaultPlan::transport_only(23));
        chaotic.server_kind = ServerKind::Reactor;
        let a = reference.run().unwrap();
        let b = chaotic.run().unwrap();
        assert_eq!(a.params.as_slice(), b.params.as_slice());
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.ledger, b.ledger);
        assert_eq!(a.acked_checkins, b.acked_checkins);
    });
}

#[test]
fn chaos_crash_recovery_works_through_the_reactor() {
    under_watchdog(Duration::from_secs(120), || {
        // Scripted crash/restart cycles with the reactor fronting the
        // WAL-backed runtime: the run terminates and the ledger charges
        // exactly one ε per acknowledged checkin, never more.
        let dir = temp_dir("reactor-chaos-crash");
        let mut cluster = ChaosCluster::new(FaultPlan::full(3, 24));
        cluster.server_kind = ServerKind::Reactor;
        cluster.data_dir = Some(dir.clone());
        let report = cluster.run().unwrap();
        assert!(report.iterations > 0);
        for (device, eps) in &report.ledger {
            let expected =
                cluster.per_checkin_epsilon * report.acked_checkins[*device as usize] as f64;
            assert!(
                (eps - expected).abs() < 1e-9,
                "device {device}: charged {eps}, expected {expected}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    });
}
