//! Property-based tests (proptest) on the core invariants the paper's guarantees
//! rest on: the gradient sensitivity bound behind Theorem 1, the projection of
//! Eq. 3, the wire-codec round trip, partition coverage, and the counter
//! mechanisms of Theorem 2.

use crowd_ml::core::config::PrivacyConfig;
use crowd_ml::core::privacy::Sanitizer;
use crowd_ml::data::partition::{partition, PartitionStrategy};
use crowd_ml::data::{Dataset, Sample};
use crowd_ml::dp::{DiscreteLaplaceMechanism, Epsilon};
use crowd_ml::learning::model::{minibatch_statistics, Model};
use crowd_ml::learning::MulticlassLogistic;
use crowd_ml::linalg::ops::{normalize_l1, project_l2_ball};
use crowd_ml::linalg::Vector;
use crowd_ml::proto::auth::AuthToken;
use crowd_ml::proto::codec::{decode, encode};
use crowd_ml::proto::message::{
    BatchAck, BatchCheckinAck, BatchCheckinRequest, BusyReply, CheckinRequest, CheckoutResponse,
    ErrorCode, GradientPayload, Message, RoundParams,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Appendix A / Theorem 1: for L1-normalized features, two minibatches of size
    /// b differing in one sample have averaged gradients at most 4/b apart in L1.
    #[test]
    fn averaged_gradient_sensitivity_bound(
        seed in 0u64..1000,
        b in 1usize..12,
        labels in prop::collection::vec(0usize..5, 12),
        swap_label in 0usize..5,
    ) {
        let dim = 6;
        let classes = 5;
        let model = MulticlassLogistic::new(dim, classes).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let params = crowd_ml::linalg::random::normal_vector(&mut rng, model.param_dim());

        let make_sample = |rng: &mut StdRng, label: usize| {
            let mut x = crowd_ml::linalg::random::normal_vector(rng, dim);
            normalize_l1(&mut x);
            Sample::new(x, label)
        };
        let batch: Vec<Sample> = labels.iter().take(b).map(|&l| make_sample(&mut rng, l)).collect();
        prop_assume!(!batch.is_empty());
        let mut neighbour = batch.clone();
        neighbour[0] = make_sample(&mut rng, swap_label);

        let g1 = minibatch_statistics(&model, &params, &batch, 0.0, &[]).unwrap().gradient;
        let g2 = minibatch_statistics(&model, &params, &neighbour, 0.0, &[]).unwrap().gradient;
        let sensitivity = (&g1 - &g2).norm_l1();
        prop_assert!(sensitivity <= 4.0 / batch.len() as f64 + 1e-9,
            "sensitivity {} exceeds 4/b = {}", sensitivity, 4.0 / batch.len() as f64);
    }

    /// The projection of Eq. 3 never increases the norm, is idempotent, and leaves
    /// in-ball vectors untouched.
    #[test]
    fn projection_properties(values in prop::collection::vec(-1e3f64..1e3, 1..40), radius in 0.1f64..50.0) {
        let original = Vector::from_vec(values);
        let mut projected = original.clone();
        project_l2_ball(&mut projected, radius);
        prop_assert!(projected.norm_l2() <= radius + 1e-9);
        let mut twice = projected.clone();
        project_l2_ball(&mut twice, radius);
        prop_assert!(twice.distance(&projected).unwrap() < 1e-9);
        if original.norm_l2() <= radius {
            prop_assert_eq!(projected, original);
        }
    }

    /// Codec round trip: every well-formed checkin/checkout message survives
    /// encode → decode unchanged.
    #[test]
    fn codec_round_trip(
        device_id in any::<u64>(),
        iteration in any::<u64>(),
        gradient in prop::collection::vec(-1e6f64..1e6, 0..128),
        counts in prop::collection::vec(-1000i64..1000, 0..16),
        num_samples in 0u32..10_000,
        error_count in -1000i64..1000,
        stopped in any::<bool>(),
        round_id in any::<u64>(),
        select_fraction in 0.01f64..=1.0,
    ) {
        let checkin = Message::CheckinRequest(CheckinRequest {
            device_id,
            token: AuthToken::derive(device_id, 99),
            checkout_iteration: iteration,
            nonce: 0,
            round_id,
            gradient: GradientPayload::from_dense_auto(gradient.clone()),
            num_samples,
            error_count,
            label_counts: counts,
        });
        prop_assert_eq!(decode(&encode(&checkin)).unwrap(), checkin);

        // Alternate between free-running (no round) and round-annotated
        // checkouts so both wire shapes survive the trip.
        let round = round_id.is_multiple_of(2).then(|| RoundParams {
            round_id,
            seed: device_id,
            select_fraction,
            deadline_epochs: (iteration % 64) as u32 + 1,
            population: device_id % 100_000,
        });
        let checkout = Message::CheckoutResponse(CheckoutResponse {
            iteration,
            params: gradient,
            stopped,
            round,
        });
        prop_assert_eq!(decode(&encode(&checkout)).unwrap(), checkout);
    }

    /// Sparse ↔ dense payload equivalence: a gradient auto-encoded for the
    /// wire (sparse whenever its zeros make that smaller), shipped through
    /// encode → decode, and applied to a server produces parameters bitwise
    /// identical to the same gradient applied densely — the sparse transport
    /// is lossless to the last bit.
    #[test]
    fn sparse_roundtrip_applies_bitwise_identically_to_dense(
        seed in 0u64..1000,
        input_dim in 1usize..24,
        density_pct in 0u32..=100,
    ) {
        use crowd_ml::core::config::ServerConfig;
        use crowd_ml::core::device::CheckinPayload;
        use crowd_ml::core::server::Server;
        use crowd_ml::linalg::{GradientUpdate, SparseVector};
        use rand::Rng;

        let classes = 2;
        let dim = input_dim * classes;
        let mut rng = StdRng::seed_from_u64(seed);
        let dense: Vec<f64> = (0..dim)
            .map(|_| {
                if rng.gen_range(0u32..100) < density_pct {
                    rng.gen_range(-1.0..1.0)
                } else {
                    0.0
                }
            })
            .collect();

        // Ship the auto-selected encoding through the real codec.
        let request = CheckinRequest {
            device_id: 3,
            token: AuthToken::derive(3, 9),
            checkout_iteration: 0,
            nonce: 0,
            round_id: 0,
            gradient: GradientPayload::from_dense_auto(dense.clone()),
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1],
        };
        let went_sparse = matches!(request.gradient, GradientPayload::Sparse { .. });
        let decoded = match decode(&encode(&Message::CheckinRequest(request))).unwrap() {
            Message::CheckinRequest(r) => r,
            other => panic!("unexpected message {}", other.name()),
        };
        let received = match decoded.gradient {
            GradientPayload::Dense(values) => GradientUpdate::Dense(Vector::from_vec(values)),
            GradientPayload::Sparse { dim, indices, values } => GradientUpdate::Sparse(
                SparseVector::new(dim as usize, indices, values).unwrap(),
            ),
            // from_dense_auto never picks the lossy or round-only encodings.
            GradientPayload::Quantized { .. } => panic!("auto-selection produced Quantized"),
            GradientPayload::Masked { .. } => panic!("auto-selection produced Masked"),
        };
        prop_assert_eq!(received.to_dense().as_slice(), &dense[..]);

        // Apply the wire-decoded gradient and the dense original to twin
        // servers: the parameter trajectories must match bit for bit.
        let payload_with = |gradient: GradientUpdate| CheckinPayload {
            device_id: 3,
            checkout_iteration: 0,
            nonce: 0,
            gradient,
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1],
        };
        let model = MulticlassLogistic::new(input_dim, classes).unwrap();
        let mut via_wire = Server::new(model, ServerConfig::new()).unwrap();
        let model = MulticlassLogistic::new(input_dim, classes).unwrap();
        let mut via_dense = Server::new(model, ServerConfig::new()).unwrap();
        via_wire.checkin(&payload_with(received)).unwrap();
        via_dense
            .checkin(&payload_with(GradientUpdate::Dense(Vector::from_vec(dense))))
            .unwrap();
        let wire_bits: Vec<u64> = via_wire.params().iter().map(|v| v.to_bits()).collect();
        let dense_bits: Vec<u64> = via_dense.params().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(wire_bits, dense_bits,
            "sparse={} diverged from the dense path", went_sparse);
    }

    /// Batch-checkin and retry-after messages survive encode → decode unchanged
    /// for every well-formed combination of items, acks, and reject codes.
    #[test]
    fn batch_and_busy_round_trip(
        device_ids in prop::collection::vec(any::<u64>(), 0..6),
        iteration in any::<u64>(),
        gradient in prop::collection::vec(-1e6f64..1e6, 0..48),
        counts in prop::collection::vec(-1000i64..1000, 0..8),
        num_samples in 0u32..10_000,
        error_count in -1000i64..1000,
        reject_selector in 0u8..6,
        accepted in any::<bool>(),
        stopped in any::<bool>(),
        retry_after_ms in any::<u32>(),
    ) {
        let items: Vec<CheckinRequest> = device_ids
            .iter()
            .map(|&device_id| CheckinRequest {
                device_id,
                token: AuthToken::derive(device_id, 42),
                checkout_iteration: iteration,
                nonce: 0,
                round_id: 0,
                gradient: GradientPayload::from_dense_auto(gradient.clone()),
                num_samples,
                error_count,
                label_counts: counts.clone(),
            })
            .collect();
        let batch = Message::BatchCheckinRequest(BatchCheckinRequest { items });
        prop_assert_eq!(decode(&encode(&batch)).unwrap(), batch);

        // Cycle the reject field through "processed" and every error code.
        let reject = ErrorCode::from_u8(reject_selector);
        let acks: Vec<BatchAck> = (0..device_ids.len())
            .map(|_| BatchAck { accepted, iteration, stopped, deduped: accepted ^ stopped, reject })
            .collect();
        let batch_ack = Message::BatchCheckinAck(BatchCheckinAck { acks });
        prop_assert_eq!(decode(&encode(&batch_ack)).unwrap(), batch_ack);

        let busy = Message::Busy(BusyReply { retry_after_ms });
        prop_assert_eq!(decode(&encode(&busy)).unwrap(), busy);
    }

    /// Partitioning never loses or duplicates samples and preserves class counts,
    /// for every strategy.
    #[test]
    fn partition_preserves_samples(
        seed in 0u64..500,
        n in 20usize..150,
        devices in 1usize..12,
        strategy_idx in 0usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            samples.push(Sample::new(Vector::from_vec(vec![i as f64, (i % 7) as f64]), i % 4));
        }
        let data = Dataset::new(samples, 4).unwrap();
        let strategy = match strategy_idx {
            0 => PartitionStrategy::Iid,
            1 => PartitionStrategy::LabelShards { shards_per_device: 2 },
            _ => PartitionStrategy::Dirichlet { alpha: 0.5 },
        };
        let parts = partition(&data, devices, strategy, &mut rng).unwrap();
        prop_assert_eq!(parts.len(), devices);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, data.len());
        let mut combined = vec![0usize; 4];
        for p in &parts {
            for (acc, c) in combined.iter_mut().zip(p.class_counts()) {
                *acc += c;
            }
        }
        prop_assert_eq!(combined, data.class_counts());
    }

    /// Theorem 2 machinery: discrete Laplace noise is integer-valued and the
    /// non-private sanitizer is exactly the identity.
    #[test]
    fn sanitizer_and_counter_properties(
        count in 0i64..10_000,
        eps in 0.01f64..20.0,
        gradient in prop::collection::vec(-5.0f64..5.0, 1..32),
        errors in 0usize..50,
    ) {
        let mechanism = DiscreteLaplaceMechanism::new(Epsilon::finite(eps).unwrap());
        let mut rng = StdRng::seed_from_u64(count as u64);
        let perturbed = mechanism.perturb_count(&mut rng, count);
        // Integer output by construction; difference is finite and symmetric noise
        // can take either sign, so only sanity-check the magnitude is bounded by
        // something enormous (no overflow).
        prop_assert!((perturbed - count).abs() < 1_000_000);

        let g = Vector::from_vec(gradient);
        let sanitizer = Sanitizer::new(&PrivacyConfig::non_private(), 5).unwrap();
        let out = sanitizer.sanitize(&mut rng, &g, errors, &[errors as u64, 3]);
        prop_assert_eq!(out.gradient, g);
        prop_assert_eq!(out.error_count, errors as i64);
        prop_assert_eq!(out.label_counts, vec![errors as i64, 3]);
    }
}

proptest! {
    // Each case spins up two full aggregation runtimes (worker threads and
    // all), so this sweep runs fewer cases than the pure-math properties.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Masked round finalization is shard-count independent: the same cohort
    /// submissions with the same dropout subset land on bitwise-identical
    /// parameters whatever the runtime's shard layout, because the pending
    /// round buffer is folded in ascending device order outside the shard
    /// path. Together with `crates/rounds/tests/mask_cancellation.rs` (masked
    /// sum == unmasked sum) this closes the loop over cohorts, dropouts, and
    /// shard counts.
    #[test]
    fn masked_round_finalization_is_shard_count_independent(
        seed in 0u64..10_000,
        population in 2u64..10,
        shard_a in 1usize..8,
        shard_b in 1usize..8,
        drop_bits in any::<u32>(),
    ) {
        use crowd_ml::agg::AggRuntime;
        use crowd_ml::core::config::{AggSettings, RoundSettings, ServerConfig};
        use crowd_ml::core::server::{PendingSubmission, Server};

        let dim = 4usize;
        let classes = 3usize;
        let param_dim = dim * classes;
        let gradient = |device: u64| -> Vec<f64> {
            let mut rng = StdRng::seed_from_u64(seed ^ device.wrapping_mul(0x9E37_79B9));
            crowd_ml::linalg::random::normal_vector(&mut rng, param_dim).as_slice().to_vec()
        };

        let run = |shards: usize| {
            let config = ServerConfig::new()
                .with_agg(AggSettings {
                    shard_count: shards,
                    queue_bound: 64,
                    epoch_size: 1,
                    worker_threads: 2,
                    retry_after_ms: 1,
                    flush_idle_ms: 1,
                })
                .with_rounds(
                    RoundSettings::new(population)
                        .with_select_fraction(1.0)
                        .with_deadline_epochs(1_000_000)
                        .with_seed(seed),
                );
            let model = MulticlassLogistic::new(dim, classes).unwrap();
            let runtime = AggRuntime::new(Server::new(model, config).unwrap()).unwrap();
            let info = runtime.round_info().expect("rounds are enabled");
            let members =
                crowd_ml::rounds::cohort(info.seed, info.population, info.select_fraction);
            // At least one survivor so the round finalizes with an epoch.
            let survivors: Vec<u64> = members
                .iter()
                .copied()
                .enumerate()
                .filter(|&(i, _)| i == 0 || drop_bits & (1 << (i % 32)) != 0)
                .map(|(_, d)| d)
                .collect();
            for &d in &survivors {
                let mask_words =
                    crowd_ml::rounds::net_mask(info.seed, d, &members, param_dim);
                let words = crowd_ml::rounds::mask(&gradient(d), &mask_words);
                runtime
                    .submit_round(info.round_id, PendingSubmission {
                        device_id: d,
                        nonce: info.round_id + 1,
                        checkout_iteration: 0,
                        words,
                        num_samples: 2 * classes as u32,
                        error_count: 1,
                        label_counts: vec![2; classes],
                    })
                    .unwrap();
            }
            // Dropped members never submit; settle finalizes the partial
            // cohort with mask compensation (a full cohort finalized inline).
            runtime.settle_rounds();
            let bits: Vec<u64> = runtime.params().iter().map(|v| v.to_bits()).collect();
            let iteration = runtime.iteration();
            runtime.shutdown();
            (bits, iteration)
        };

        let (bits_a, iter_a) = run(shard_a);
        let (bits_b, iter_b) = run(shard_b);
        prop_assert_eq!(iter_a, 1, "the finalized round applies exactly one epoch");
        prop_assert_eq!(iter_a, iter_b);
        prop_assert_eq!(bits_a, bits_b);
    }
}
