//! Integration test of the TCP deployment: the networked cluster must learn the
//! same kind of model as the in-process simulation, with authentication enforced.
//!
//! Sandbox-friendliness: every server in these tests binds `127.0.0.1:0`
//! (ephemeral ports, no fixed-port collisions between parallel test runs), and
//! each test body runs under [`with_timeout`] so a wedged socket can never hang
//! CI — the watchdog fails the test instead.

use crowd_ml::core::config::{DeviceConfig, PrivacyConfig, ServerConfig};
use crowd_ml::data::partition::{partition, PartitionStrategy};
use crowd_ml::data::synthetic::GaussianMixtureSpec;
use crowd_ml::learning::metrics::error_rate;
use crowd_ml::learning::MulticlassLogistic;
use crowd_ml::net::{DeviceClient, LocalCluster, NetError, NetServer};
use crowd_ml::proto::auth::{AuthToken, TokenRegistry};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Runs `body` on a worker thread and fails the test if it has not finished
/// within `limit`. The worker is detached on timeout (std threads cannot be
/// killed), which is fine: the test process is about to exit anyway.
fn with_timeout(limit: Duration, body: fn()) {
    use std::sync::mpsc::RecvTimeoutError;
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(limit) {
        Ok(()) => {
            let _ = worker.join();
        }
        // The sender was dropped without sending: the body panicked. Re-raise
        // the original panic so the real assertion failure is reported.
        Err(RecvTimeoutError::Disconnected) => {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
        Err(RecvTimeoutError::Timeout) => {
            panic!("test exceeded its {limit:?} watchdog timeout")
        }
    }
}

#[test]
fn tcp_cluster_learns_with_privacy() {
    with_timeout(
        Duration::from_secs(120),
        tcp_cluster_learns_with_privacy_body,
    );
}

fn tcp_cluster_learns_with_privacy_body() {
    let dim = 10;
    let classes = 3;
    let mut rng = StdRng::seed_from_u64(5);
    let (train, test) = GaussianMixtureSpec::new(dim, classes)
        .with_train_size(900)
        .with_test_size(300)
        .with_mean_scale(2.5)
        .with_noise_std(0.6)
        .generate(&mut rng)
        .unwrap();
    let parts = partition(&train, 6, PartitionStrategy::Iid, &mut rng).unwrap();

    let cluster = LocalCluster::new(ServerConfig::new().with_rate_constant(2.0))
        .with_device(DeviceConfig::new(10))
        .with_privacy(PrivacyConfig::with_total_epsilon(20.0))
        .with_seed(9);
    let report = cluster.run(dim, classes, &parts).expect("cluster run");

    assert_eq!(report.total_samples, 900);
    assert_eq!(report.server_iterations, 90);
    let model = MulticlassLogistic::new(dim, classes).unwrap();
    let err = error_rate(&model, &report.params, &test).unwrap();
    assert!(err < 0.3, "networked private training error {err}");
}

#[test]
fn unauthenticated_devices_are_rejected() {
    with_timeout(
        Duration::from_secs(60),
        unauthenticated_devices_are_rejected_body,
    );
}

fn unauthenticated_devices_are_rejected_body() {
    let model = MulticlassLogistic::new(4, 2).unwrap();
    let tokens = TokenRegistry::with_derived_tokens(2, 1234);
    let handle = NetServer::start(model, ServerConfig::new(), tokens).expect("server start");

    // Correct token works.
    let good = DeviceClient::builder(handle.addr(), 1, AuthToken::derive(1, 1234)).build();
    assert!(good.checkout().is_ok());

    // Wrong secret and unknown device id are both rejected with a server error.
    let wrong_secret = DeviceClient::builder(handle.addr(), 1, AuthToken::derive(1, 9999)).build();
    assert!(matches!(
        wrong_secret.checkout(),
        Err(NetError::ServerError { .. })
    ));
    let unknown_device =
        DeviceClient::builder(handle.addr(), 7, AuthToken::derive(7, 1234)).build();
    assert!(matches!(
        unknown_device.checkout(),
        Err(NetError::ServerError { .. })
    ));

    handle.shutdown();
}
