//! Integration test of the TCP deployment: the networked cluster must learn the
//! same kind of model as the in-process simulation, with authentication enforced.

use crowd_ml::core::config::{DeviceConfig, PrivacyConfig, ServerConfig};
use crowd_ml::data::partition::{partition, PartitionStrategy};
use crowd_ml::data::synthetic::GaussianMixtureSpec;
use crowd_ml::learning::metrics::error_rate;
use crowd_ml::learning::MulticlassLogistic;
use crowd_ml::net::{DeviceClient, LocalCluster, NetError, NetServer};
use crowd_ml::proto::auth::{AuthToken, TokenRegistry};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn tcp_cluster_learns_with_privacy() {
    let dim = 10;
    let classes = 3;
    let mut rng = StdRng::seed_from_u64(5);
    let (train, test) = GaussianMixtureSpec::new(dim, classes)
        .with_train_size(900)
        .with_test_size(300)
        .with_mean_scale(2.5)
        .with_noise_std(0.6)
        .generate(&mut rng)
        .unwrap();
    let parts = partition(&train, 6, PartitionStrategy::Iid, &mut rng).unwrap();

    let cluster = LocalCluster::new(ServerConfig::new().with_rate_constant(2.0))
        .with_device(DeviceConfig::new(10))
        .with_privacy(PrivacyConfig::with_total_epsilon(20.0))
        .with_seed(9);
    let report = cluster.run(dim, classes, &parts).expect("cluster run");

    assert_eq!(report.total_samples, 900);
    assert_eq!(report.server_iterations, 90);
    let model = MulticlassLogistic::new(dim, classes).unwrap();
    let err = error_rate(&model, &report.params, &test).unwrap();
    assert!(err < 0.3, "networked private training error {err}");
}

#[test]
fn unauthenticated_devices_are_rejected() {
    let model = MulticlassLogistic::new(4, 2).unwrap();
    let tokens = TokenRegistry::with_derived_tokens(2, 1234);
    let handle = NetServer::start(model, ServerConfig::new(), tokens).expect("server start");

    // Correct token works.
    let good = DeviceClient::new(handle.addr(), 1, AuthToken::derive(1, 1234));
    assert!(good.checkout().is_ok());

    // Wrong secret and unknown device id are both rejected with a server error.
    let wrong_secret = DeviceClient::new(handle.addr(), 1, AuthToken::derive(1, 9999));
    assert!(matches!(
        wrong_secret.checkout(),
        Err(NetError::ServerError { .. })
    ));
    let unknown_device = DeviceClient::new(handle.addr(), 7, AuthToken::derive(7, 1234));
    assert!(matches!(
        unknown_device.checkout(),
        Err(NetError::ServerError { .. })
    ));

    handle.shutdown();
}
