//! # Crowd-ML
//!
//! A Rust reproduction of *"Crowd-ML: A Privacy-Preserving Learning Framework for a
//! Crowd of Smart Devices"* (Hamm et al., ICDCS 2015).
//!
//! This facade crate re-exports the public API of every crate in the workspace so
//! downstream users can depend on a single crate:
//!
//! * [`linalg`] — dense linear algebra, FFT, PCA.
//! * [`dp`] — differential-privacy mechanisms and budget accounting.
//! * [`data`] — datasets, synthetic generators, partitioners, preprocessing.
//! * [`learning`] — models, losses, SGD, schedules, metrics.
//! * [`sim`] — discrete-event simulation of asynchronous devices and delays.
//! * [`proto`] — wire protocol for device/server communication.
//! * [`net`] — TCP deployment of the protocol (threaded and reactor servers).
//! * [`reactor`] — dependency-free event-driven I/O core: poller-backed
//!   nonblocking server runtime with resumable frame state machines.
//! * [`core`] — the Crowd-ML framework itself: device/server routines, baselines,
//!   and experiment runners.
//! * [`agg`] — the sharded, batched gradient-aggregation runtime the TCP server
//!   serves from.
//! * [`rounds`] — the round-based cohort protocol (wire v6): seed-derived
//!   round/cohort/role derivation and the pairwise additive masking that
//!   cancels bitwise in the finalized cohort sum.
//! * [`store`] — durable server state: CRC-framed write-ahead log, atomic
//!   snapshots, and bitwise crash recovery.
//! * [`telemetry`] — crowd-scope observability: the typed metric registry,
//!   log₂ histograms, span rings, and the clock abstraction behind them.
//!
//! ## Quick start
//!
//! ```
//! use crowd_ml::core::config::{CrowdMlConfig, PrivacyConfig};
//! use crowd_ml::core::experiment::{CrowdMlExperiment, ExperimentConfig};
//! use crowd_ml::data::synthetic::GaussianMixtureSpec;
//!
//! // Generate a small synthetic task and learn it privately with 10 devices.
//! let spec = GaussianMixtureSpec::new(8, 4).with_train_size(400).with_test_size(100);
//! let config = ExperimentConfig::builder()
//!     .devices(10)
//!     .minibatch(5)
//!     .passes(1.0)
//!     .privacy(PrivacyConfig::with_total_epsilon(1.0))
//!     .seed(7)
//!     .build();
//! let outcome = CrowdMlExperiment::gaussian_mixture(spec, config).run().unwrap();
//! assert!(outcome.final_test_error() < 0.9);
//! ```
//!
//! ## Talking to a server: round sessions
//!
//! Against a round-running server (`ServerConfig::with_rounds`), the typed
//! round session is the default client surface: one checkout yields the model
//! parameters *and* the published round, the device derives its role locally,
//! and every checkin resolves to a [`net::CheckinOutcome`] matched by name.
//!
//! ```no_run
//! use crowd_ml::net::{CheckinOutcome, DeviceClient, Role};
//! use crowd_ml::proto::auth::AuthToken;
//!
//! # fn run(addr: std::net::SocketAddr, payload: crowd_ml::core::device::CheckinPayload)
//! # -> crowd_ml::net::Result<()> {
//! let client = DeviceClient::builder(addr, 7, AuthToken::derive(7, 0xFEED)).build();
//! let mut session = client.join_round()?;
//! loop {
//!     match session.role() {
//!         // Selected: submit one masked contribution to the cohort sum.
//!         Role::Selected => match session.submit(&payload)? {
//!             // The round closed mid-computation; rejoin and go again.
//!             CheckinOutcome::RoundOutdated { .. } => session = session.resync()?,
//!             outcome => {
//!                 assert!(outcome.applied());
//!                 break;
//!             }
//!         },
//!         // Unselected: free-run an ordinary checkin until the next round.
//!         Role::Unselected => {
//!             client.checkin(&payload)?;
//!             break;
//!         }
//!     }
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use crowd_agg as agg;
pub use crowd_core as core;
pub use crowd_data as data;
pub use crowd_dp as dp;
pub use crowd_learning as learning;
pub use crowd_linalg as linalg;
pub use crowd_net as net;
pub use crowd_proto as proto;
pub use crowd_reactor as reactor;
pub use crowd_rounds as rounds;
pub use crowd_sim as sim;
pub use crowd_store as store;
pub use crowd_telemetry as telemetry;
