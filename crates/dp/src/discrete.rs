//! The discrete Laplace (two-sided geometric) mechanism for integer counters
//! (Eqs. 11–12 and Theorem 2 of the paper).
//!
//! A device reports its misclassification count `n_e` and per-class label counts
//! `n_y^k` perturbed with integer noise `z ∈ {0, ±1, ±2, …}` drawn from
//! `P(z) ∝ exp(−(ε/2)·|z|)`. Changing a single sample changes each counter by at
//! most 1, so this is ε-differentially private per counter (equivalently, an
//! exponential mechanism with score `−|n̂ − n|`; see Appendix B). The noise has
//! zero mean and variance `2 e^{−ε/2} / (1 − e^{−ε/2})²` (Inusah & Kozubowski,
//! 2006), which Remark 2 of Appendix B uses to argue the server-side error
//! estimates remain consistent.

use crate::error::DpError;
use crate::{Epsilon, Result};
use rand::Rng;

/// The discrete Laplace mechanism with parameter `p = exp(−ε/2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscreteLaplaceMechanism {
    epsilon: Epsilon,
}

impl DiscreteLaplaceMechanism {
    /// Creates a mechanism at privacy level `epsilon` for counters whose
    /// per-sample sensitivity is 1 (the case in the paper).
    pub fn new(epsilon: Epsilon) -> Self {
        DiscreteLaplaceMechanism { epsilon }
    }

    /// The privacy level of the mechanism.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The geometric parameter `p = exp(−ε/2)`; zero in the non-private limit.
    pub fn p(&self) -> f64 {
        match self.epsilon {
            Epsilon::NonPrivate => 0.0,
            Epsilon::Finite(eps) => (-eps / 2.0).exp(),
        }
    }

    /// Variance of the added noise: `2p / (1 − p)²`.
    pub fn noise_variance(&self) -> f64 {
        let p = self.p();
        if p == 0.0 {
            0.0
        } else {
            2.0 * p / ((1.0 - p) * (1.0 - p))
        }
    }

    /// Samples one discrete Laplace variate.
    ///
    /// The two-sided geometric distribution is the difference of two independent
    /// geometric variables with success probability `1 − p`.
    pub fn sample_noise<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        let p = self.p();
        if p == 0.0 {
            return 0;
        }
        let g1 = sample_geometric(rng, p);
        let g2 = sample_geometric(rng, p);
        g1 - g2
    }

    /// Perturbs an integer counter.
    pub fn perturb_count<R: Rng + ?Sized>(&self, rng: &mut R, count: i64) -> i64 {
        count + self.sample_noise(rng)
    }

    /// Perturbs a slice of counters with independent noise (e.g. the `C` label
    /// counts `n_y^k`).
    pub fn perturb_counts<R: Rng + ?Sized>(&self, rng: &mut R, counts: &[i64]) -> Vec<i64> {
        counts.iter().map(|&c| self.perturb_count(rng, c)).collect()
    }
}

/// Samples from the geometric distribution on `{0, 1, 2, …}` with
/// `P(k) = (1 − p)·p^k` using inversion.
fn sample_geometric<R: Rng + ?Sized>(rng: &mut R, p: f64) -> i64 {
    debug_assert!((0.0..1.0).contains(&p));
    if p == 0.0 {
        return 0;
    }
    // Inversion: k = floor(ln(u) / ln(p)) for u uniform in (0, 1).
    let u: f64 = 1.0 - rng.gen::<f64>(); // in (0, 1]
    let k = (u.ln() / p.ln()).floor();
    // Guard against pathological floating point results.
    if k.is_finite() && k >= 0.0 {
        k as i64
    } else {
        0
    }
}

/// Validates a finite ε intended for counter perturbation. Provided for callers
/// that want an explicit error rather than the permissive `new`.
pub fn validated(epsilon: f64) -> Result<DiscreteLaplaceMechanism> {
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(DpError::InvalidEpsilon(epsilon));
    }
    Ok(DiscreteLaplaceMechanism::new(Epsilon::Finite(epsilon)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_linalg::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parameter_p_matches_definition() {
        let m = DiscreteLaplaceMechanism::new(Epsilon::finite(2.0).unwrap());
        assert!((m.p() - (-1.0_f64).exp()).abs() < 1e-15);
        assert_eq!(
            DiscreteLaplaceMechanism::new(Epsilon::non_private()).p(),
            0.0
        );
    }

    #[test]
    fn non_private_adds_no_noise() {
        let m = DiscreteLaplaceMechanism::new(Epsilon::non_private());
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(m.perturb_count(&mut rng, 42), 42);
        assert_eq!(m.perturb_counts(&mut rng, &[1, 2, 3]), vec![1, 2, 3]);
        assert_eq!(m.noise_variance(), 0.0);
    }

    #[test]
    fn noise_mean_is_zero_and_variance_matches_formula() {
        let m = DiscreteLaplaceMechanism::new(Epsilon::finite(1.0).unwrap());
        let mut rng = StdRng::seed_from_u64(13);
        let samples: Vec<f64> = (0..60_000)
            .map(|_| m.sample_noise(&mut rng) as f64)
            .collect();
        let mean = stats::mean(&samples);
        let var = stats::variance(&samples);
        assert!(mean.abs() < 0.05, "mean {mean}");
        let expected = m.noise_variance();
        assert!(
            (var - expected).abs() / expected < 0.1,
            "variance {var}, expected {expected}"
        );
    }

    #[test]
    fn stronger_privacy_means_more_noise() {
        let tight = DiscreteLaplaceMechanism::new(Epsilon::finite(0.1).unwrap());
        let loose = DiscreteLaplaceMechanism::new(Epsilon::finite(10.0).unwrap());
        assert!(tight.noise_variance() > loose.noise_variance());
    }

    #[test]
    fn perturbed_counts_can_be_negative() {
        // The paper notes (Appendix B, Remark 2) that perturbed counts may go
        // negative; the mechanism must not clamp them.
        let m = DiscreteLaplaceMechanism::new(Epsilon::finite(0.1).unwrap());
        let mut rng = StdRng::seed_from_u64(3);
        let perturbed: Vec<i64> = (0..2000).map(|_| m.perturb_count(&mut rng, 0)).collect();
        assert!(perturbed.iter().any(|&x| x < 0));
        assert!(perturbed.iter().any(|&x| x > 0));
    }

    #[test]
    fn geometric_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let p: f64 = 0.6;
        let n = 50_000;
        let mean = (0..n)
            .map(|_| sample_geometric(&mut rng, p) as f64)
            .sum::<f64>()
            / n as f64;
        // Geometric on {0,1,...} with P(k) = (1-p) p^k has mean p/(1-p) = 1.5.
        assert!((mean - 1.5).abs() < 0.05, "mean {mean}");
        assert_eq!(sample_geometric(&mut rng, 0.0), 0);
    }

    #[test]
    fn validated_constructor() {
        assert!(validated(0.5).is_ok());
        assert!(validated(0.0).is_err());
        assert!(validated(f64::INFINITY).is_err());
    }
}
