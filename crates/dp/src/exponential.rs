//! The exponential mechanism (McSherry & Talwar, 2007) over finite candidate sets.
//!
//! The centralized baseline of Appendix C flips labels through the exponential
//! mechanism with score `d(y, ŷ) = I[y = ŷ]` (Eq. 16): the true label keeps
//! probability proportional to `exp(ε_y/2)` while every other label gets
//! probability proportional to 1. The same primitive is exposed generically for
//! arbitrary score functions with bounded sensitivity.

use crate::error::DpError;
use crate::{Epsilon, Result};
use rand::Rng;

/// The exponential mechanism for selecting one of finitely many candidates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialMechanism {
    epsilon: Epsilon,
    /// Sensitivity of the score function (1 for the paper's label-flip score).
    score_sensitivity: f64,
}

impl ExponentialMechanism {
    /// Creates a mechanism at privacy level `epsilon` for a score function with
    /// the given sensitivity.
    pub fn new(epsilon: Epsilon, score_sensitivity: f64) -> Result<Self> {
        if !(score_sensitivity.is_finite() && score_sensitivity > 0.0) {
            return Err(DpError::InvalidSensitivity(score_sensitivity));
        }
        Ok(ExponentialMechanism {
            epsilon,
            score_sensitivity,
        })
    }

    /// The privacy level of the mechanism.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// Selects an index from `scores` with probability proportional to
    /// `exp(ε · score / (2 · sensitivity))`.
    ///
    /// In the non-private limit the highest-scoring candidate is returned
    /// deterministically (ties resolve to the smallest index).
    pub fn select<R: Rng + ?Sized>(&self, rng: &mut R, scores: &[f64]) -> Result<usize> {
        if scores.is_empty() {
            return Err(DpError::EmptyCandidateSet);
        }
        match self.epsilon {
            Epsilon::NonPrivate => Ok(argmax_index(scores)),
            Epsilon::Finite(eps) => {
                let beta = eps / (2.0 * self.score_sensitivity);
                // Normalize for numerical stability.
                let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let weights: Vec<f64> = scores.iter().map(|s| (beta * (s - max)).exp()).collect();
                Ok(sample_categorical(rng, &weights))
            }
        }
    }

    /// Perturbs a class label in `0..num_classes` with the paper's score
    /// `d(y, ŷ) = I[y = ŷ]` (Eq. 16): the true label has score 1, every other
    /// label score 0.
    pub fn perturb_label<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        label: usize,
        num_classes: usize,
    ) -> Result<usize> {
        if num_classes == 0 {
            return Err(DpError::EmptyCandidateSet);
        }
        if label >= num_classes {
            return Err(DpError::UnknownEntity(format!(
                "label {label} out of range for {num_classes} classes"
            )));
        }
        let scores: Vec<f64> = (0..num_classes)
            .map(|k| if k == label { 1.0 } else { 0.0 })
            .collect();
        self.select(rng, &scores)
    }

    /// Probability that [`perturb_label`](Self::perturb_label) keeps the true label,
    /// `e^{ε/2} / (e^{ε/2} + C − 1)` for `C` classes. Useful for analysis and tests.
    pub fn label_retention_probability(&self, num_classes: usize) -> f64 {
        if num_classes == 0 {
            return 0.0;
        }
        match self.epsilon {
            Epsilon::NonPrivate => 1.0,
            Epsilon::Finite(eps) => {
                let keep = (eps / (2.0 * self.score_sensitivity)).exp();
                keep / (keep + (num_classes as f64 - 1.0))
            }
        }
    }
}

fn argmax_index(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, v) in xs.iter().enumerate() {
        if *v > xs[best] {
            best = i;
        }
    }
    best
}

/// Samples an index proportionally to non-negative `weights`. Falls back to the
/// last index on floating-point underflow.
fn sample_categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return weights.len() - 1;
    }
    let mut u = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_sensitivity() {
        let eps = Epsilon::finite(1.0).unwrap();
        assert!(ExponentialMechanism::new(eps, 0.0).is_err());
        assert!(ExponentialMechanism::new(eps, 1.0).is_ok());
    }

    #[test]
    fn empty_candidates_rejected() {
        let m = ExponentialMechanism::new(Epsilon::finite(1.0).unwrap(), 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(m.select(&mut rng, &[]), Err(DpError::EmptyCandidateSet));
        assert!(m.perturb_label(&mut rng, 0, 0).is_err());
        assert!(m.perturb_label(&mut rng, 5, 3).is_err());
    }

    #[test]
    fn non_private_selects_argmax() {
        let m = ExponentialMechanism::new(Epsilon::non_private(), 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(m.select(&mut rng, &[0.1, 0.9, 0.3]).unwrap(), 1);
        assert_eq!(m.perturb_label(&mut rng, 2, 5).unwrap(), 2);
        assert_eq!(m.label_retention_probability(10), 1.0);
    }

    #[test]
    fn label_retention_matches_closed_form() {
        let eps = 2.0;
        let classes = 10;
        let m = ExponentialMechanism::new(Epsilon::finite(eps).unwrap(), 1.0).unwrap();
        let expected = (eps / 2.0_f64).exp() / ((eps / 2.0_f64).exp() + 9.0);
        assert!((m.label_retention_probability(classes) - expected).abs() < 1e-12);

        let mut rng = StdRng::seed_from_u64(21);
        let n = 40_000;
        let kept = (0..n)
            .filter(|_| m.perturb_label(&mut rng, 3, classes).unwrap() == 3)
            .count();
        let frac = kept as f64 / n as f64;
        assert!(
            (frac - expected).abs() < 0.02,
            "kept fraction {frac}, expected {expected}"
        );
    }

    #[test]
    fn high_epsilon_rarely_flips_low_epsilon_flips_often() {
        let mut rng = StdRng::seed_from_u64(9);
        let strict = ExponentialMechanism::new(Epsilon::finite(0.01).unwrap(), 1.0).unwrap();
        let loose = ExponentialMechanism::new(Epsilon::finite(20.0).unwrap(), 1.0).unwrap();
        let n = 5_000;
        let strict_kept = (0..n)
            .filter(|_| strict.perturb_label(&mut rng, 0, 4).unwrap() == 0)
            .count() as f64
            / n as f64;
        let loose_kept = (0..n)
            .filter(|_| loose.perturb_label(&mut rng, 0, 4).unwrap() == 0)
            .count() as f64
            / n as f64;
        assert!(strict_kept < 0.35, "strict kept {strict_kept}");
        assert!(loose_kept > 0.99, "loose kept {loose_kept}");
    }

    #[test]
    fn selection_respects_scores() {
        let m = ExponentialMechanism::new(Epsilon::finite(4.0).unwrap(), 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(33);
        let n = 20_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[m.select(&mut rng, &[0.0, 1.0, 2.0]).unwrap()] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
    }

    #[test]
    fn categorical_sampler_handles_degenerate_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_categorical(&mut rng, &[0.0, 0.0]), 1);
        assert_eq!(sample_categorical(&mut rng, &[1.0]), 0);
    }
}
