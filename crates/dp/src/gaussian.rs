//! The Gaussian mechanism for (ε, δ)-differential privacy.
//!
//! Footnote 1 of the paper notes that "(ε, δ)-differential privacy can be achieved
//! by adding Gaussian noise" as a variant of the gradient perturbation. This module
//! implements the classical calibration `σ ≥ √(2 ln(1.25/δ)) · S₂(f) / ε` for an
//! L2 sensitivity bound `S₂(f)` (Dwork & Roth, 2014), and is used by the
//! `ablation_mechanism` benchmark to compare Laplace and Gaussian gradient
//! perturbation.

use crate::error::DpError;
use crate::{Epsilon, Result};
use crowd_linalg::random::standard_normal;
use crowd_linalg::Vector;
use rand::Rng;

/// The Gaussian mechanism calibrated to an L2 sensitivity, ε, and δ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianMechanism {
    epsilon: Epsilon,
    delta: f64,
    l2_sensitivity: f64,
}

impl GaussianMechanism {
    /// Creates a mechanism with failure probability `delta` in `(0, 1)` and the
    /// given L2 sensitivity.
    pub fn new(epsilon: Epsilon, delta: f64, l2_sensitivity: f64) -> Result<Self> {
        if !(delta > 0.0 && delta < 1.0) {
            return Err(DpError::InvalidDelta(delta));
        }
        if !(l2_sensitivity.is_finite() && l2_sensitivity > 0.0) {
            return Err(DpError::InvalidSensitivity(l2_sensitivity));
        }
        Ok(GaussianMechanism {
            epsilon,
            delta,
            l2_sensitivity,
        })
    }

    /// The calibrated noise standard deviation; zero in the non-private limit.
    pub fn sigma(&self) -> f64 {
        match self.epsilon {
            Epsilon::NonPrivate => 0.0,
            Epsilon::Finite(eps) => {
                (2.0 * (1.25 / self.delta).ln()).sqrt() * self.l2_sensitivity / eps
            }
        }
    }

    /// The privacy level ε.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The failure probability δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Per-coordinate noise variance `σ²`.
    pub fn noise_variance(&self) -> f64 {
        let s = self.sigma();
        s * s
    }

    /// Adds calibrated Gaussian noise to a scalar.
    pub fn perturb_scalar<R: Rng + ?Sized>(&self, rng: &mut R, value: f64) -> f64 {
        let sigma = self.sigma();
        if sigma == 0.0 {
            value
        } else {
            value + sigma * standard_normal(rng)
        }
    }

    /// Returns a perturbed copy of `value` with i.i.d. Gaussian noise per coordinate.
    pub fn perturb_vector<R: Rng + ?Sized>(&self, rng: &mut R, value: &Vector) -> Vector {
        let sigma = self.sigma();
        if sigma == 0.0 {
            return value.clone();
        }
        Vector::from_vec(
            value
                .iter()
                .map(|&v| v + sigma * standard_normal(rng))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_linalg::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        let eps = Epsilon::finite(1.0).unwrap();
        assert!(GaussianMechanism::new(eps, 0.0, 1.0).is_err());
        assert!(GaussianMechanism::new(eps, 1.0, 1.0).is_err());
        assert!(GaussianMechanism::new(eps, 1e-5, 0.0).is_err());
        assert!(GaussianMechanism::new(eps, 1e-5, 1.0).is_ok());
    }

    #[test]
    fn sigma_matches_closed_form() {
        let m = GaussianMechanism::new(Epsilon::finite(2.0).unwrap(), 1e-5, 0.5).unwrap();
        let expected = (2.0 * (1.25 / 1e-5_f64).ln()).sqrt() * 0.5 / 2.0;
        assert!((m.sigma() - expected).abs() < 1e-12);
        assert!((m.noise_variance() - expected * expected).abs() < 1e-12);
    }

    #[test]
    fn non_private_is_identity() {
        let m = GaussianMechanism::new(Epsilon::non_private(), 1e-5, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let v = Vector::from_vec(vec![1.0, 2.0]);
        assert_eq!(m.perturb_vector(&mut rng, &v), v);
        assert_eq!(m.perturb_scalar(&mut rng, 3.0), 3.0);
        assert_eq!(m.sigma(), 0.0);
    }

    #[test]
    fn noise_variance_is_realized_empirically() {
        let m = GaussianMechanism::new(Epsilon::finite(1.0).unwrap(), 1e-3, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<f64> = (0..40_000)
            .map(|_| m.perturb_scalar(&mut rng, 0.0))
            .collect();
        let var = stats::variance(&samples);
        assert!((var - m.noise_variance()).abs() / m.noise_variance() < 0.1);
        assert!(stats::mean(&samples).abs() < 0.1);
    }

    #[test]
    fn stronger_privacy_increases_sigma() {
        let strict = GaussianMechanism::new(Epsilon::finite(0.1).unwrap(), 1e-5, 1.0).unwrap();
        let loose = GaussianMechanism::new(Epsilon::finite(10.0).unwrap(), 1e-5, 1.0).unwrap();
        assert!(strict.sigma() > loose.sigma());
    }
}
