//! Differential-privacy substrate for Crowd-ML.
//!
//! The paper protects every quantity that leaves a device with a *local*
//! ε-differential-privacy mechanism (§III-C):
//!
//! * averaged minibatch gradients `g̃` are perturbed with element-wise **Laplace**
//!   noise calibrated to the L1 sensitivity `4/b` of the multiclass-logistic
//!   gradient (Eq. 10, Theorem 1) — [`laplace`];
//! * the misclassification count `n_e` and per-class label counts `n_y^k` are
//!   perturbed with **discrete Laplace** (two-sided geometric) noise (Eqs. 11–12,
//!   Theorem 2) — [`discrete`];
//! * the centralized baseline perturbs features with Laplace noise (Eq. 15) and
//!   flips labels through the **exponential mechanism** (Eq. 16, Theorem 3) —
//!   [`exponential`];
//! * footnote 1 mentions the **Gaussian** ((ε, δ)) variant — [`gaussian`].
//!
//! [`sensitivity`] collects the closed-form sensitivity bounds the calibration
//! relies on, and [`accountant`] tracks per-device budget consumption under basic
//! composition so a deployment can enforce a total ε.

#![forbid(unsafe_code)]

pub mod accountant;
pub mod discrete;
pub mod error;
pub mod exponential;
pub mod gaussian;
pub mod laplace;
pub mod sensitivity;

pub use accountant::{BudgetAccountant, PrivacyBudget};
pub use discrete::DiscreteLaplaceMechanism;
pub use error::DpError;
pub use exponential::ExponentialMechanism;
pub use gaussian::GaussianMechanism;
pub use laplace::LaplaceMechanism;

/// Result alias for fallible privacy operations.
pub type Result<T> = std::result::Result<T, DpError>;

/// Transport selection rule for quantized gradient uploads: does the DP
/// noise floor dominate the quantization error?
///
/// A Laplace mechanism with scale λ adds per-coordinate noise of standard
/// deviation `λ·√2`; unbiased stochastic rounding with step `s` adds noise of
/// standard deviation at most `s/2`. Requiring `2·s ≤ λ` keeps the
/// quantization std at most `λ/4 ≈ 18%` of the mechanism's — statistically
/// invisible next to the noise the privacy budget already forces — so the
/// client can ship 16-bit fixed point instead of 64-bit floats. Returns
/// `false` for λ = 0 (non-private runs quantize nothing: the gradient's full
/// precision is meaningful) and for step 0 (an all-zero gradient gains
/// nothing from quantization).
pub fn noise_dominates_quantization(laplace_scale: f64, quant_step: f64) -> bool {
    laplace_scale > 0.0 && quant_step > 0.0 && 2.0 * quant_step <= laplace_scale
}

/// A privacy level ε. The paper writes privacy strength as ε (smaller is more
/// private) and frequently reports its inverse ε⁻¹ in the experiments.
///
/// `Epsilon::finite` requires a strictly positive value; [`Epsilon::non_private`]
/// models the ε → ∞ (no noise) configuration used in the non-private experiments
/// (`ε⁻¹ = 0` in Figs. 3–4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Epsilon {
    /// A finite, strictly positive privacy parameter.
    Finite(f64),
    /// The non-private limit ε → ∞: mechanisms add no noise.
    NonPrivate,
}

impl Epsilon {
    /// Constructs a finite ε, validating positivity.
    pub fn finite(value: f64) -> Result<Self> {
        if !(value.is_finite() && value > 0.0) {
            return Err(DpError::InvalidEpsilon(value));
        }
        Ok(Epsilon::Finite(value))
    }

    /// Constructs the non-private (ε → ∞) level.
    pub fn non_private() -> Self {
        Epsilon::NonPrivate
    }

    /// Constructs an ε from its inverse as reported in the paper's figures
    /// (`ε⁻¹ = 0` means non-private).
    pub fn from_inverse(inverse: f64) -> Result<Self> {
        if inverse < 0.0 || !inverse.is_finite() {
            return Err(DpError::InvalidEpsilon(inverse));
        }
        if inverse == 0.0 {
            Ok(Epsilon::NonPrivate)
        } else {
            Epsilon::finite(1.0 / inverse)
        }
    }

    /// The numeric ε value; `f64::INFINITY` for the non-private level.
    pub fn value(&self) -> f64 {
        match self {
            Epsilon::Finite(v) => *v,
            Epsilon::NonPrivate => f64::INFINITY,
        }
    }

    /// `true` when the level is finite (i.e. noise will actually be added).
    pub fn is_private(&self) -> bool {
        matches!(self, Epsilon::Finite(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_epsilon_validation() {
        assert!(Epsilon::finite(0.5).is_ok());
        assert!(Epsilon::finite(0.0).is_err());
        assert!(Epsilon::finite(-1.0).is_err());
        assert!(Epsilon::finite(f64::NAN).is_err());
        assert!(Epsilon::finite(f64::INFINITY).is_err());
    }

    #[test]
    fn from_inverse_matches_paper_convention() {
        assert_eq!(Epsilon::from_inverse(0.0).unwrap(), Epsilon::NonPrivate);
        assert_eq!(Epsilon::from_inverse(0.1).unwrap().value(), 10.0);
        assert!(Epsilon::from_inverse(-0.1).is_err());
    }

    #[test]
    fn quantization_rule_needs_noise_and_a_step() {
        // Noise scale comfortably above the step → quantize.
        assert!(noise_dominates_quantization(0.4, 0.1));
        // Boundary 2·s = λ counts as dominated.
        assert!(noise_dominates_quantization(0.2, 0.1));
        // Step too coarse for the noise floor.
        assert!(!noise_dominates_quantization(0.1, 0.1));
        // Non-private (λ = 0) and all-zero (s = 0) never quantize.
        assert!(!noise_dominates_quantization(0.0, 0.1));
        assert!(!noise_dominates_quantization(0.4, 0.0));
    }

    #[test]
    fn value_and_privacy_flags() {
        assert_eq!(Epsilon::non_private().value(), f64::INFINITY);
        assert!(!Epsilon::non_private().is_private());
        assert!(Epsilon::finite(2.0).unwrap().is_private());
    }
}
