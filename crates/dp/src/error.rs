//! Error type for the differential-privacy crate.

use std::fmt;

/// Errors produced by privacy-mechanism construction or budget accounting.
#[derive(Debug, Clone, PartialEq)]
pub enum DpError {
    /// The privacy parameter ε was non-positive, NaN, or otherwise unusable.
    InvalidEpsilon(f64),
    /// The failure probability δ of an (ε, δ) mechanism was outside `(0, 1)`.
    InvalidDelta(f64),
    /// A sensitivity bound was non-positive or non-finite.
    InvalidSensitivity(f64),
    /// An exponential-mechanism invocation had no candidates to choose from.
    EmptyCandidateSet,
    /// A budget accountant refused an operation that would exceed the total budget.
    BudgetExhausted {
        /// Budget already spent.
        spent: f64,
        /// Cost of the requested operation.
        requested: f64,
        /// Total available budget.
        total: f64,
    },
    /// An unknown entity (e.g. device id) was referenced in the accountant.
    UnknownEntity(String),
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::InvalidEpsilon(v) => write!(f, "invalid privacy parameter epsilon = {v}"),
            DpError::InvalidDelta(v) => write!(f, "invalid failure probability delta = {v}"),
            DpError::InvalidSensitivity(v) => write!(f, "invalid sensitivity bound {v}"),
            DpError::EmptyCandidateSet => {
                write!(f, "exponential mechanism needs a non-empty candidate set")
            }
            DpError::BudgetExhausted {
                spent,
                requested,
                total,
            } => write!(
                f,
                "privacy budget exhausted: spent {spent}, requested {requested}, total {total}"
            ),
            DpError::UnknownEntity(name) => {
                write!(f, "unknown entity `{name}` in budget accountant")
            }
        }
    }
}

impl std::error::Error for DpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DpError::InvalidEpsilon(-1.0).to_string().contains("-1"));
        assert!(DpError::InvalidDelta(2.0).to_string().contains("delta"));
        assert!(DpError::InvalidSensitivity(0.0)
            .to_string()
            .contains("sensitivity"));
        assert!(DpError::EmptyCandidateSet.to_string().contains("candidate"));
        let b = DpError::BudgetExhausted {
            spent: 0.9,
            requested: 0.2,
            total: 1.0,
        };
        assert!(b.to_string().contains("exhausted"));
        assert!(DpError::UnknownEntity("dev-3".into())
            .to_string()
            .contains("dev-3"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err<E: std::error::Error>(_: &E) {}
        takes_err(&DpError::EmptyCandidateSet);
    }
}
