//! The Laplace mechanism for real-valued vectors (Eq. 9–10 of the paper).
//!
//! A vector-valued function `f` with L1 sensitivity `S(f)` is made ε-differentially
//! private by adding i.i.d. Laplace noise with density `P(z) ∝ exp(−ε‖z‖₁ / S(f))`,
//! i.e. per-coordinate scale `S(f)/ε` (Dwork et al., 2006; Proposition 1 of [3] in
//! the paper). Crowd-ML applies this to the averaged minibatch gradient, whose
//! sensitivity for multiclass logistic regression is `4/b` (Appendix A), and the
//! centralized baseline applies it to raw features with sensitivity 2 (Appendix C).

use crate::error::DpError;
use crate::{Epsilon, Result};
use crowd_linalg::Vector;
use rand::Rng;

/// Samples one Laplace(0, `scale`) variate by inverse-CDF.
pub fn sample_laplace<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> f64 {
    debug_assert!(scale > 0.0, "Laplace scale must be positive");
    // u uniform in (-0.5, 0.5]; inverse CDF of the Laplace distribution.
    let u: f64 = rng.gen::<f64>() - 0.5;
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// The Laplace mechanism calibrated to a given L1 sensitivity and privacy level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplaceMechanism {
    epsilon: Epsilon,
    sensitivity: f64,
}

impl LaplaceMechanism {
    /// Creates a mechanism for a function with the given L1 `sensitivity` at privacy
    /// level `epsilon`.
    pub fn new(epsilon: Epsilon, sensitivity: f64) -> Result<Self> {
        if !(sensitivity.is_finite() && sensitivity > 0.0) {
            return Err(DpError::InvalidSensitivity(sensitivity));
        }
        Ok(LaplaceMechanism {
            epsilon,
            sensitivity,
        })
    }

    /// The per-coordinate noise scale `S(f)/ε`; zero in the non-private limit.
    pub fn scale(&self) -> f64 {
        match self.epsilon {
            Epsilon::NonPrivate => 0.0,
            Epsilon::Finite(eps) => self.sensitivity / eps,
        }
    }

    /// The privacy level this mechanism provides.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The sensitivity bound the mechanism was calibrated to.
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// Variance of each noise coordinate, `2·scale²` (used in Eq. 13's noise
    /// budget `32 D / (b ε_g)²` — with scale `4/(b ε_g)` this is `32/(b ε_g)²`
    /// per coordinate).
    pub fn noise_variance(&self) -> f64 {
        let s = self.scale();
        2.0 * s * s
    }

    /// Adds calibrated noise to a scalar.
    pub fn perturb_scalar<R: Rng + ?Sized>(&self, rng: &mut R, value: f64) -> f64 {
        let scale = self.scale();
        if scale == 0.0 {
            value
        } else {
            value + sample_laplace(rng, scale)
        }
    }

    /// Returns a perturbed copy of `value` with i.i.d. noise on every coordinate.
    pub fn perturb_vector<R: Rng + ?Sized>(&self, rng: &mut R, value: &Vector) -> Vector {
        let scale = self.scale();
        if scale == 0.0 {
            return value.clone();
        }
        Vector::from_vec(
            value
                .iter()
                .map(|&v| v + sample_laplace(rng, scale))
                .collect(),
        )
    }

    /// Perturbs a vector in place.
    pub fn perturb_vector_in_place<R: Rng + ?Sized>(&self, rng: &mut R, value: &mut Vector) {
        let scale = self.scale();
        if scale == 0.0 {
            return;
        }
        value.map_in_place(|v| v + sample_laplace(rng, scale));
    }

    /// Draws a pure noise vector of the given dimension (useful for analysis and
    /// benchmarks).
    pub fn noise_vector<R: Rng + ?Sized>(&self, rng: &mut R, dim: usize) -> Vector {
        let scale = self.scale();
        if scale == 0.0 {
            return Vector::zeros(dim);
        }
        Vector::from_vec((0..dim).map(|_| sample_laplace(rng, scale)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_linalg::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_sensitivity() {
        let eps = Epsilon::finite(1.0).unwrap();
        assert!(LaplaceMechanism::new(eps, 0.0).is_err());
        assert!(LaplaceMechanism::new(eps, -1.0).is_err());
        assert!(LaplaceMechanism::new(eps, f64::NAN).is_err());
        assert!(LaplaceMechanism::new(eps, 2.0).is_ok());
    }

    #[test]
    fn scale_matches_definition() {
        let m = LaplaceMechanism::new(Epsilon::finite(0.5).unwrap(), 4.0).unwrap();
        assert_eq!(m.scale(), 8.0);
        assert_eq!(m.noise_variance(), 128.0);
        let np = LaplaceMechanism::new(Epsilon::non_private(), 4.0).unwrap();
        assert_eq!(np.scale(), 0.0);
        assert_eq!(np.noise_variance(), 0.0);
    }

    #[test]
    fn non_private_is_identity() {
        let m = LaplaceMechanism::new(Epsilon::non_private(), 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let v = Vector::from_vec(vec![1.0, -2.0, 3.0]);
        assert_eq!(m.perturb_vector(&mut rng, &v), v);
        assert_eq!(m.perturb_scalar(&mut rng, 7.0), 7.0);
        assert_eq!(m.noise_vector(&mut rng, 4).as_slice(), &[0.0; 4]);
    }

    #[test]
    fn noise_moments_match_laplace_distribution() {
        // Laplace(0, s) has mean 0 and variance 2 s².
        let m = LaplaceMechanism::new(Epsilon::finite(2.0).unwrap(), 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let samples: Vec<f64> = (0..50_000)
            .map(|_| m.perturb_scalar(&mut rng, 0.0))
            .collect();
        let mean = stats::mean(&samples);
        let var = stats::variance(&samples);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!(
            (var - m.noise_variance()).abs() / m.noise_variance() < 0.1,
            "var {var}"
        );
    }

    #[test]
    fn gradient_calibration_matches_paper() {
        // Eq. (10): scale 4/(b ε_g) per coordinate for minibatch size b.
        let b = 20.0;
        let eps_g = 10.0;
        let m = LaplaceMechanism::new(Epsilon::finite(eps_g).unwrap(), 4.0 / b).unwrap();
        assert!((m.scale() - 4.0 / (b * eps_g)).abs() < 1e-15);
        // Eq. (13): per-coordinate variance 32/(b ε_g)².
        assert!((m.noise_variance() - 32.0 / (b * eps_g).powi(2)).abs() < 1e-15);
    }

    #[test]
    fn perturb_vector_in_place_changes_values_when_private() {
        let m = LaplaceMechanism::new(Epsilon::finite(1.0).unwrap(), 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut v = Vector::zeros(32);
        m.perturb_vector_in_place(&mut rng, &mut v);
        assert!(v.norm_l1() > 0.0);
        assert!(v.is_finite());
    }

    #[test]
    fn sample_laplace_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(23);
        let n = 40_000;
        let positives = (0..n)
            .filter(|_| sample_laplace(&mut rng, 1.0) > 0.0)
            .count();
        let frac = positives as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "positive fraction {frac}");
    }
}
