//! Per-entity privacy-budget accounting.
//!
//! The paper splits a device's total budget as `ε = ε_g + ε_e + C·ε_y^k`
//! (Appendix B, Remark 1) and argues that, because the counter releases are not
//! needed for learning, `ε_e` and `ε_y` can be made negligibly small so that
//! `ε ≈ ε_g`. [`PrivacyBudget`] encodes that split; [`BudgetAccountant`] tracks
//! cumulative spend per device under basic (sequential) composition so a
//! deployment can refuse releases that would exceed a per-device ceiling.

use crate::error::DpError;
use crate::{Epsilon, Result};
use std::collections::BTreeMap;

/// The per-checkin privacy budget split across the three kinds of release.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyBudget {
    /// Budget for the averaged-gradient release (ε_g, Eq. 10).
    pub gradient: Epsilon,
    /// Budget for the misclassification-count release (ε_e, Eq. 11).
    pub error_count: Epsilon,
    /// Budget for each per-class label-count release (ε_y^k, Eq. 12).
    pub label_count: Epsilon,
}

impl PrivacyBudget {
    /// A fully non-private budget (all mechanisms add no noise).
    pub fn non_private() -> Self {
        PrivacyBudget {
            gradient: Epsilon::NonPrivate,
            error_count: Epsilon::NonPrivate,
            label_count: Epsilon::NonPrivate,
        }
    }

    /// Splits a total ε following the paper's guidance: almost everything goes to
    /// the gradient, and a small `monitor_fraction` (of the total) is divided
    /// between the error counter and the `num_classes` label counters.
    pub fn split_total(total: Epsilon, num_classes: usize, monitor_fraction: f64) -> Result<Self> {
        let monitor_fraction = monitor_fraction.clamp(0.0, 0.5);
        match total {
            Epsilon::NonPrivate => Ok(Self::non_private()),
            Epsilon::Finite(eps) => {
                if eps <= 0.0 || !eps.is_finite() {
                    return Err(DpError::InvalidEpsilon(eps));
                }
                let monitor = eps * monitor_fraction;
                let gradient = eps - monitor;
                // Error counter and the C label counters share the monitor budget.
                let per_counter = monitor / (1.0 + num_classes.max(1) as f64);
                let eps_or_non_private = |v: f64| {
                    if v > 0.0 {
                        Epsilon::Finite(v)
                    } else {
                        // A zero monitoring budget means those counters are simply
                        // not protected by a finite ε; callers that set
                        // monitor_fraction = 0 should not release counters at all.
                        Epsilon::NonPrivate
                    }
                };
                Ok(PrivacyBudget {
                    gradient: Epsilon::Finite(gradient),
                    error_count: eps_or_non_private(per_counter),
                    label_count: eps_or_non_private(per_counter),
                })
            }
        }
    }

    /// Total ε consumed by one checkin that releases the gradient, the error count,
    /// and `num_classes` label counts: `ε_g + ε_e + C·ε_y`.
    pub fn total_per_checkin(&self, num_classes: usize) -> f64 {
        let finite = |e: Epsilon| match e {
            Epsilon::Finite(v) => v,
            Epsilon::NonPrivate => 0.0,
        };
        finite(self.gradient)
            + finite(self.error_count)
            + num_classes as f64 * finite(self.label_count)
    }

    /// `true` when every component is non-private (no noise anywhere).
    pub fn is_non_private(&self) -> bool {
        !self.gradient.is_private()
            && !self.error_count.is_private()
            && !self.label_count.is_private()
    }
}

/// Tracks cumulative ε spend per entity (device) under basic composition.
#[derive(Debug, Clone)]
pub struct BudgetAccountant {
    ceiling: f64,
    // A BTreeMap so the ledger iterates in entity order: these entries reach
    // snapshots and acks, and their order must not vary run to run.
    spent: BTreeMap<String, f64>,
}

impl BudgetAccountant {
    /// Creates an accountant with a per-entity ceiling (use `f64::INFINITY` for
    /// unlimited tracking-only accounting).
    pub fn new(ceiling: f64) -> Self {
        BudgetAccountant {
            ceiling,
            spent: BTreeMap::new(),
        }
    }

    /// The configured per-entity ceiling.
    pub fn ceiling(&self) -> f64 {
        self.ceiling
    }

    /// Total ε spent so far by `entity` (zero if never seen).
    pub fn spent(&self, entity: &str) -> f64 {
        *self.spent.get(entity).unwrap_or(&0.0)
    }

    /// Remaining budget for `entity`.
    pub fn remaining(&self, entity: &str) -> f64 {
        (self.ceiling - self.spent(entity)).max(0.0)
    }

    /// Records a spend of `cost` for `entity`, failing if it would exceed the
    /// ceiling. A cost of zero (non-private release) always succeeds.
    pub fn charge(&mut self, entity: &str, cost: f64) -> Result<()> {
        if cost < 0.0 || !cost.is_finite() {
            return Err(DpError::InvalidEpsilon(cost));
        }
        let current = self.spent(entity);
        if current + cost > self.ceiling + 1e-12 {
            return Err(DpError::BudgetExhausted {
                spent: current,
                requested: cost,
                total: self.ceiling,
            });
        }
        *self.spent.entry(entity.to_string()).or_insert(0.0) += cost;
        Ok(())
    }

    /// Records a spend of `cost` for `entity` *unconditionally* and reports
    /// whether the entity has now reached (or exceeded) the ceiling.
    ///
    /// Unlike [`BudgetAccountant::charge`], this never refuses: it is meant for
    /// server-side ledgers, where the ε was already spent on the device by the
    /// time its checkin arrives — refusing to record would under-count the true
    /// spend. Callers use the returned flag to stop querying the entity.
    pub fn record(&mut self, entity: &str, cost: f64) -> Result<bool> {
        if cost < 0.0 || !cost.is_finite() {
            return Err(DpError::InvalidEpsilon(cost));
        }
        let spent = self.spent.entry(entity.to_string()).or_insert(0.0);
        *spent += cost;
        // Slack scaled to the ceiling: a tiny ceiling must not read as already
        // exhausted before anything was spent.
        let slack = 1e-12 * self.ceiling.abs().min(1.0);
        Ok(*spent >= self.ceiling - slack)
    }

    /// Rebuilds the ledger from persisted `(entity, spent)` pairs, replacing any
    /// prior entries for the same entities. Spends beyond the ceiling are kept
    /// as-is (they record history, not permission).
    pub fn restore_spent<I, S>(&mut self, entries: I) -> Result<()>
    where
        I: IntoIterator<Item = (S, f64)>,
        S: Into<String>,
    {
        for (entity, spent) in entries {
            if spent < 0.0 || !spent.is_finite() {
                return Err(DpError::InvalidEpsilon(spent));
            }
            self.spent.insert(entity.into(), spent);
        }
        Ok(())
    }

    /// Records one Crowd-ML checkin for `entity` under the given budget split.
    pub fn charge_checkin(
        &mut self,
        entity: &str,
        budget: &PrivacyBudget,
        num_classes: usize,
    ) -> Result<()> {
        self.charge(entity, budget.total_per_checkin(num_classes))
    }

    /// Number of entities with any recorded spend.
    pub fn num_entities(&self) -> usize {
        self.spent.len()
    }

    /// Iterator over `(entity, spent)` pairs in ascending entity order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.spent.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Resets the recorded spend for every entity (e.g. when a new collection
    /// epoch starts with a fresh budget).
    pub fn reset(&mut self) {
        self.spent.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_private_budget() {
        let b = PrivacyBudget::non_private();
        assert!(b.is_non_private());
        assert_eq!(b.total_per_checkin(10), 0.0);
    }

    #[test]
    fn split_total_allocates_most_to_gradient() {
        let total = Epsilon::finite(1.0).unwrap();
        let b = PrivacyBudget::split_total(total, 10, 0.01).unwrap();
        match b.gradient {
            Epsilon::Finite(g) => assert!((g - 0.99).abs() < 1e-12),
            _ => panic!("gradient budget should be finite"),
        }
        // Total per checkin never exceeds the requested total.
        assert!(b.total_per_checkin(10) <= 1.0 + 1e-9);
        assert!(!b.is_non_private());
    }

    #[test]
    fn split_total_non_private_passthrough_and_zero_monitor() {
        assert!(PrivacyBudget::split_total(Epsilon::NonPrivate, 3, 0.1)
            .unwrap()
            .is_non_private());
        let b = PrivacyBudget::split_total(Epsilon::finite(2.0).unwrap(), 3, 0.0).unwrap();
        assert!(b.gradient.is_private());
        assert!(!b.error_count.is_private());
    }

    #[test]
    fn accountant_tracks_and_enforces_ceiling() {
        let mut acc = BudgetAccountant::new(1.0);
        acc.charge("dev-1", 0.4).unwrap();
        acc.charge("dev-1", 0.4).unwrap();
        assert!((acc.spent("dev-1") - 0.8).abs() < 1e-12);
        assert!((acc.remaining("dev-1") - 0.2).abs() < 1e-12);
        let err = acc.charge("dev-1", 0.4).unwrap_err();
        assert!(matches!(err, DpError::BudgetExhausted { .. }));
        // Other devices are unaffected.
        acc.charge("dev-2", 0.9).unwrap();
        assert_eq!(acc.num_entities(), 2);
    }

    #[test]
    fn accountant_rejects_invalid_costs_and_resets() {
        let mut acc = BudgetAccountant::new(10.0);
        assert!(acc.charge("d", -1.0).is_err());
        assert!(acc.charge("d", f64::NAN).is_err());
        acc.charge("d", 1.0).unwrap();
        acc.reset();
        assert_eq!(acc.spent("d"), 0.0);
        assert_eq!(acc.num_entities(), 0);
    }

    #[test]
    fn charge_checkin_uses_budget_split() {
        let total = Epsilon::finite(0.5).unwrap();
        let budget = PrivacyBudget::split_total(total, 3, 0.1).unwrap();
        let mut acc = BudgetAccountant::new(5.0);
        acc.charge_checkin("dev", &budget, 3).unwrap();
        assert!((acc.spent("dev") - budget.total_per_checkin(3)).abs() < 1e-12);
        // Ten checkins fit within a ceiling of 5.0 for a per-checkin cost of 0.5.
        for _ in 0..9 {
            acc.charge_checkin("dev", &budget, 3).unwrap();
        }
        assert!(acc.charge_checkin("dev", &budget, 3).is_err());
    }

    #[test]
    fn record_counts_past_ceiling_and_flags_exhaustion() {
        let mut acc = BudgetAccountant::new(1.0);
        assert!(!acc.record("dev", 0.6).unwrap());
        // The recording that crosses the ceiling reports exhaustion but still
        // lands in the ledger — the spend already happened on the device.
        assert!(acc.record("dev", 0.6).unwrap());
        assert!((acc.spent("dev") - 1.2).abs() < 1e-12);
        assert_eq!(acc.remaining("dev"), 0.0);
        // Exactly at the ceiling counts as exhausted.
        let mut exact = BudgetAccountant::new(1.0);
        assert!(exact.record("d", 1.0).unwrap());
        assert!(acc.record("dev", f64::NAN).is_err());
        assert!(acc.record("dev", -0.1).is_err());
        // A ceiling smaller than the absolute slack must not read as
        // pre-exhausted before anything was spent.
        let mut tiny = BudgetAccountant::new(1e-13);
        assert!(!tiny.record("d", 0.0).unwrap());
        assert!(tiny.record("d", 1e-13).unwrap());
    }

    #[test]
    fn restore_spent_rebuilds_the_ledger() {
        let mut acc = BudgetAccountant::new(2.0);
        acc.charge("a", 0.5).unwrap();
        acc.restore_spent([("a".to_string(), 1.5), ("b".to_string(), 3.0)])
            .unwrap();
        assert_eq!(acc.spent("a"), 1.5);
        // Past-ceiling history is restored verbatim.
        assert_eq!(acc.spent("b"), 3.0);
        assert_eq!(acc.num_entities(), 2);
        assert!(acc
            .restore_spent([("c".to_string(), f64::INFINITY)])
            .is_err());
    }

    #[test]
    fn iter_reports_entities() {
        let mut acc = BudgetAccountant::new(f64::INFINITY);
        acc.charge("a", 1.0).unwrap();
        acc.charge("b", 2.0).unwrap();
        let mut entries: Vec<(String, f64)> = acc.iter().map(|(k, v)| (k.to_string(), v)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(entries[0], ("a".to_string(), 1.0));
        assert_eq!(entries[1], ("b".to_string(), 2.0));
    }
}
