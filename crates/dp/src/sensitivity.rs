//! Closed-form sensitivity bounds used to calibrate the mechanisms.
//!
//! Appendix A derives the L1 sensitivity of the *averaged* multiclass-logistic
//! gradient over a minibatch of size `b` as `4/b`, assuming features are
//! L1-normalized (`‖x‖₁ ≤ 1`). Appendix C notes the identity "release the feature
//! itself" has sensitivity 2 under the same normalization, and that counter
//! queries (error counts, label counts) have sensitivity 1. This module collects
//! those constants plus a generic gradient-clipping helper that enforces a chosen
//! L1 bound when a loss without a closed-form bound is used.

use crowd_linalg::Vector;

/// L1 sensitivity of the averaged multiclass-logistic gradient for minibatch size
/// `b` with `‖x‖₁ ≤ 1` (Appendix A): `S = 4/b`.
///
/// `b` is clamped to at least 1.
pub fn averaged_logistic_gradient(b: usize) -> f64 {
    4.0 / (b.max(1) as f64)
}

/// L1 sensitivity of releasing an L1-normalized feature vector directly
/// (Appendix C): replacing one sample swaps one vector for another, each with
/// `‖x‖₁ ≤ 1`, so the release changes by at most 2.
pub fn feature_release() -> f64 {
    2.0
}

/// Sensitivity of an integer counter that changes by at most one when a single
/// sample changes (error counts, label counts).
pub fn unit_counter() -> f64 {
    1.0
}

/// L1 sensitivity of the averaged hinge-loss (linear SVM) gradient under the same
/// normalization. A single-sample subgradient is bounded by `‖x‖₁ + ‖x‖₁ ≤ 2` per
/// class pair, giving the same `4/b` bound used for logistic regression.
pub fn averaged_hinge_gradient(b: usize) -> f64 {
    4.0 / (b.max(1) as f64)
}

/// Clips a gradient vector to a maximum L1 norm, returning the scaling factor that
/// was applied (1.0 when no clipping was necessary).
///
/// Clipping lets a deployment bound the sensitivity of losses without a closed-form
/// bound: after clipping to `max_l1`, the averaged gradient over a minibatch of
/// size `b` has sensitivity at most `2·max_l1/b`.
pub fn clip_l1(gradient: &mut Vector, max_l1: f64) -> f64 {
    debug_assert!(max_l1 > 0.0);
    let norm = gradient.norm_l1();
    if norm <= max_l1 || norm == 0.0 {
        return 1.0;
    }
    let scale = max_l1 / norm;
    gradient.scale(scale);
    scale
}

/// Sensitivity of an averaged, L1-clipped gradient: `2·max_l1/b`.
pub fn averaged_clipped_gradient(max_l1: f64, b: usize) -> f64 {
    2.0 * max_l1 / (b.max(1) as f64)
}

/// Clips a gradient to a maximum L2 norm (used by the Gaussian-mechanism ablation),
/// returning the applied scaling factor.
pub fn clip_l2(gradient: &mut Vector, max_l2: f64) -> f64 {
    debug_assert!(max_l2 > 0.0);
    let norm = gradient.norm_l2();
    if norm <= max_l2 || norm == 0.0 {
        return 1.0;
    }
    let scale = max_l2 / norm;
    gradient.scale(scale);
    scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logistic_sensitivity_matches_appendix_a() {
        assert_eq!(averaged_logistic_gradient(1), 4.0);
        assert_eq!(averaged_logistic_gradient(20), 0.2);
        assert_eq!(averaged_logistic_gradient(0), 4.0);
        assert_eq!(averaged_hinge_gradient(8), 0.5);
    }

    #[test]
    fn constant_sensitivities() {
        assert_eq!(feature_release(), 2.0);
        assert_eq!(unit_counter(), 1.0);
    }

    #[test]
    fn clip_l1_only_shrinks() {
        let mut g = Vector::from_vec(vec![2.0, -2.0]);
        let scale = clip_l1(&mut g, 1.0);
        assert!((g.norm_l1() - 1.0).abs() < 1e-12);
        assert!((scale - 0.25).abs() < 1e-12);

        let mut small = Vector::from_vec(vec![0.1, 0.1]);
        assert_eq!(clip_l1(&mut small, 1.0), 1.0);
        assert_eq!(small.as_slice(), &[0.1, 0.1]);

        let mut zero = Vector::zeros(3);
        assert_eq!(clip_l1(&mut zero, 1.0), 1.0);
    }

    #[test]
    fn clip_l2_only_shrinks() {
        let mut g = Vector::from_vec(vec![3.0, 4.0]);
        let scale = clip_l2(&mut g, 1.0);
        assert!((g.norm_l2() - 1.0).abs() < 1e-12);
        assert!((scale - 0.2).abs() < 1e-12);
        let mut ok = Vector::from_vec(vec![0.3, 0.4]);
        assert_eq!(clip_l2(&mut ok, 1.0), 1.0);
    }

    #[test]
    fn clipped_sensitivity_formula() {
        assert_eq!(averaged_clipped_gradient(1.0, 1), 2.0);
        assert_eq!(averaged_clipped_gradient(2.0, 4), 1.0);
    }
}
