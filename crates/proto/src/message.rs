//! Protocol message types mirroring the Crowd-ML workflow (Fig. 2).
//!
//! * A device that has filled its minibatch sends a [`CheckoutRequest`]; the server
//!   authenticates it and replies with a [`CheckoutResponse`] carrying the current
//!   parameters `w` and the server iteration at which they were read.
//! * After computing and sanitizing its statistics, the device sends a
//!   [`CheckinRequest`] carrying `(ĝ, n_s, n̂_e, n̂_y^k)`; the server replies with a
//!   [`CheckinAck`] that also tells the device whether the global stopping
//!   criterion has been met.
//! * [`ErrorReply`] reports authentication or protocol failures.

use crate::auth::AuthToken;

/// A checkout request (Device Routine 1 → Server Routine 1).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckoutRequest {
    /// Protocol version of the sender.
    pub version: u16,
    /// Device identifier.
    pub device_id: u64,
    /// Authentication token.
    pub token: AuthToken,
}

/// A checkout response carrying the current model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckoutResponse {
    /// The server iteration `t` at which the parameters were read (used to measure
    /// staleness at checkin time).
    pub iteration: u64,
    /// The flat parameter vector `w`.
    pub params: Vec<f64>,
    /// Whether the stopping criterion has already been met (devices should stop
    /// collecting when set).
    pub stopped: bool,
    /// The current round parameters when the server runs the round-based
    /// cohort protocol (wire v6); `None` on a free-running server.
    pub round: Option<RoundParams>,
}

/// Parameters of the server's current aggregation round (wire v6).
///
/// Published in every checkout. From `(seed, select_fraction, population)` a
/// device derives its role and — when selected — the pairwise masks it shares
/// with the rest of the cohort; no additional coordination messages exist. A
/// checkin tagged with a `round_id` older than the server's current round is
/// refused with [`ErrorCode::RoundOutdated`] and the device resyncs by
/// checking out again.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundParams {
    /// Monotonically increasing round counter (starts at 1; 0 on the wire
    /// means "free-run", so it never identifies a round).
    pub round_id: u64,
    /// Seed of this round's cohort selection and pair-mask derivation.
    pub seed: u64,
    /// Fraction of the population selected into the cohort, in `(0, 1]`.
    pub select_fraction: f64,
    /// Rounds expire after this many applied server epochs without cohort
    /// completion; survivors are finalized with dropout compensation.
    pub deadline_epochs: u32,
    /// Device-id population the selection draws from (`0..population`).
    pub population: u64,
}

/// A gradient as it crosses the wire: dense, sparse coordinates when the
/// vector is mostly *exact* zeros, or quantized fixed-point levels when the
/// sender's DP noise floor already dwarfs the quantization error.
///
/// The dense/sparse choice is made per message by measured density
/// ([`GradientPayload::from_dense_auto`]) — never by lossy thresholding — so
/// the server folds sparse and dense uploads into bitwise identical
/// aggregates. At 100k parameters, a 95%-zero gradient shrinks a checkin from
/// ~800 KB to ~60 KB.
///
/// The quantized encoding (wire v5) is different in kind: it is *lossy*, so a
/// device only selects it for DP-noised uploads where the rounding error is
/// provably below the privacy noise already injected (see
/// `crowd_dp::noise_dominates_quantization`). Each coordinate travels as an
/// `i16` level times a shared per-message scale: 2 bytes instead of 8, a ~4×
/// body reduction.
#[derive(Debug, Clone, PartialEq)]
pub enum GradientPayload {
    /// All coordinates, in order.
    Dense(Vec<f64>),
    /// Only the non-zero coordinates.
    Sparse {
        /// Logical dimension of the gradient vector.
        dim: u32,
        /// Strictly increasing coordinate indices, each `< dim`.
        indices: Vec<u32>,
        /// Coordinate values, aligned with `indices`.
        values: Vec<f64>,
    },
    /// Stochastically rounded fixed-point levels with a shared scale; the
    /// receiver reconstructs coordinate `i` as `levels[i] as f64 * scale`.
    Quantized {
        /// Per-message dequantization scale (finite, `>= 0`).
        scale: f64,
        /// One signed 16-bit level per coordinate, in order.
        levels: Vec<i16>,
    },
    /// A round checkin's masked gradient (wire v6): per coordinate, the
    /// IEEE-754 bit pattern plus the device's pairwise net mask, wrapping.
    /// Lossless — the aggregator recovers the exact original bits at round
    /// finalization — and never a raw gradient on the wire.
    Masked {
        /// One masked word per coordinate, in order.
        words: Vec<u64>,
    },
}

impl GradientPayload {
    /// Logical dimension of the carried gradient.
    pub fn dim(&self) -> usize {
        match self {
            GradientPayload::Dense(v) => v.len(),
            GradientPayload::Sparse { dim, .. } => *dim as usize,
            GradientPayload::Quantized { levels, .. } => levels.len(),
            GradientPayload::Masked { words } => words.len(),
        }
    }

    /// Number of explicitly stored coordinates.
    pub fn nnz(&self) -> usize {
        match self {
            GradientPayload::Dense(v) => v.len(),
            GradientPayload::Sparse { indices, .. } => indices.len(),
            GradientPayload::Quantized { levels, .. } => levels.len(),
            GradientPayload::Masked { words } => words.len(),
        }
    }

    /// Bytes of the encoded gradient field (excluding the message framing):
    /// `1 + 4 + 8·dim` dense, `1 + 8 + 12·nnz` sparse, `1 + 12 + 2·dim`
    /// quantized, `1 + 4 + 8·dim` masked.
    pub fn encoded_len(&self) -> usize {
        match self {
            GradientPayload::Dense(v) => 1 + 4 + 8 * v.len(),
            GradientPayload::Sparse { indices, .. } => 1 + 8 + 12 * indices.len(),
            GradientPayload::Quantized { levels, .. } => 1 + 4 + 8 + 2 * levels.len(),
            GradientPayload::Masked { words } => 1 + 4 + 8 * words.len(),
        }
    }

    /// Wraps a dense gradient, switching to the sparse encoding when the
    /// measured count of exact zeros makes it strictly smaller on the wire.
    pub fn from_dense_auto(dense: Vec<f64>) -> Self {
        let nnz = dense.iter().filter(|v| v.to_bits() != 0).count();
        // Sparse body (8 + 12·nnz) vs dense body (4 + 8·dim).
        if 12 * nnz + 4 < 8 * dense.len() {
            let mut indices = Vec::with_capacity(nnz);
            let mut values = Vec::with_capacity(nnz);
            for (i, &v) in dense.iter().enumerate() {
                if v.to_bits() != 0 {
                    indices.push(i as u32);
                    values.push(v);
                }
            }
            GradientPayload::Sparse {
                dim: dense.len() as u32,
                indices,
                values,
            }
        } else {
            GradientPayload::Dense(dense)
        }
    }
}

/// A checkin request carrying the sanitized device statistics (Device Routine 2/3
/// → Server Routine 2).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckinRequest {
    /// Device identifier.
    pub device_id: u64,
    /// Authentication token.
    pub token: AuthToken,
    /// Server iteration at which the device checked out the parameters it used.
    pub checkout_iteration: u64,
    /// Duplicate-detection nonce, unique per checkin *per device* (0 = no
    /// dedup requested). A retried or duplicated checkin carries the same
    /// nonce as the original, so the server can recognize it as the same
    /// logical upload and replay the original acknowledgement instead of
    /// applying — and ε-charging — the gradient twice.
    pub nonce: u64,
    /// The round this checkin contributes to (wire v6), or 0 for an ordinary
    /// free-run checkin. Round checkins carry a [`GradientPayload::Masked`]
    /// gradient and are held until the round finalizes; a stale `round_id`
    /// is refused with [`ErrorCode::RoundOutdated`].
    pub round_id: u64,
    /// The sanitized averaged gradient `ĝ`, dense or sparse.
    pub gradient: GradientPayload,
    /// The (unperturbed) number of samples `n_s` in the minibatch.
    pub num_samples: u32,
    /// The sanitized misclassification count `n̂_e` (may be negative after
    /// perturbation).
    pub error_count: i64,
    /// The sanitized per-class label counts `n̂_y^k` (may be negative).
    pub label_counts: Vec<i64>,
}

/// Acknowledgement of a checkin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckinAck {
    /// Whether the gradient was applied.
    pub accepted: bool,
    /// The server iteration after applying this checkin.
    pub iteration: u64,
    /// Whether the stopping criterion has been met.
    pub stopped: bool,
    /// `true` when this acknowledgement is a dedup replay of a previously
    /// applied checkin (the retry was recognized; nothing was applied or
    /// ε-charged again).
    pub deduped: bool,
}

/// A batch of checkins sent in one frame.
///
/// Co-located devices (or a gateway fronting several of them) amortize framing
/// and connection overhead by packing multiple [`CheckinRequest`]s — possibly
/// from different devices, each carrying its own token — into one message. The
/// server authenticates and ingests each item independently and replies with a
/// positionally matching [`BatchCheckinAck`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchCheckinRequest {
    /// The individual checkins, each self-authenticating.
    pub items: Vec<CheckinRequest>,
}

/// Per-item result inside a [`BatchCheckinAck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAck {
    /// Whether the item's gradient was applied.
    pub accepted: bool,
    /// The server iteration after the item's epoch.
    pub iteration: u64,
    /// Whether the stopping criterion has been met.
    pub stopped: bool,
    /// `true` when the item's ack is a dedup replay (see
    /// [`CheckinAck::deduped`]).
    pub deduped: bool,
    /// Why the item was refused (`None` when it was processed normally; a
    /// refused item also has `accepted == false`).
    pub reject: Option<ErrorCode>,
}

/// Positional acknowledgements for a [`BatchCheckinRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchCheckinAck {
    /// One entry per request item, in order.
    pub acks: Vec<BatchAck>,
}

/// Server → device: the ingest queue is full; retry after a short backoff
/// instead of blocking a handler thread (backpressure, not failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusyReply {
    /// Suggested client backoff in milliseconds (0 = client's choice).
    pub retry_after_ms: u32,
}

/// Operator → server: scrape the server's crowd-scope metric registry
/// (wire v4). Authenticated like a checkout: metrics expose operational
/// detail, so anonymous peers get an error, not a dump.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRequest {
    /// Protocol version of the sender.
    pub version: u16,
    /// Identity the scrape authenticates as (any registered device).
    pub device_id: u64,
    /// Authentication token.
    pub token: AuthToken,
}

/// One histogram in a [`MetricsReport`]: counts plus extracted percentiles
/// (the full bucket vector stays server-side; percentiles are what the
/// paper's scalability claims cite).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramReport {
    /// Metric name (unit suffix included, e.g. `req_checkin_us`).
    pub name: String,
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
    /// Median (log₂-bucket upper bound).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

/// Server → operator: the metric registry snapshot, sorted by name within
/// each section so identical registries encode byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Counter `(name, value)` pairs, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge `(name, value)` pairs, ascending by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, ascending by name.
    pub histograms: Vec<HistogramReport>,
}

/// An error reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorReply {
    /// Machine-readable error code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub detail: String,
    /// For [`ErrorCode::RoundOutdated`]: the server's *current* round id, so
    /// the stale device can resync without an extra checkout round-trip.
    /// 0 for every other code.
    pub round_id: u64,
}

/// Machine-readable protocol error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The device could not be authenticated.
    Unauthorized,
    /// The message was malformed or had an unsupported version.
    BadRequest,
    /// The server is shutting down or the task has ended.
    TaskEnded,
    /// Any other server-side failure.
    Internal,
    /// The server's ingest queue is full; the request should be retried after
    /// a short backoff (backpressure, not failure).
    Busy,
    /// The device has spent its entire privacy budget; the server refuses to
    /// serve it further checkouts or accept its checkins. Terminal for the
    /// device (not retryable): it should stop participating in the task.
    BudgetExhausted,
    /// The checkin's `round_id` no longer names the server's current round
    /// (the round finalized or expired while the device was computing).
    /// Non-fatal and *not* blindly retryable: the device refetches the round
    /// parameters (the reply's `round_id` carries the current round),
    /// re-derives its role, and resubmits against the new round.
    RoundOutdated,
}

impl ErrorCode {
    /// Stable numeric encoding of the code.
    pub fn as_u8(self) -> u8 {
        match self {
            ErrorCode::Unauthorized => 1,
            ErrorCode::BadRequest => 2,
            ErrorCode::TaskEnded => 3,
            ErrorCode::Internal => 4,
            ErrorCode::Busy => 5,
            ErrorCode::BudgetExhausted => 6,
            ErrorCode::RoundOutdated => 7,
        }
    }

    /// Decodes a numeric code.
    pub fn from_u8(value: u8) -> Option<Self> {
        match value {
            1 => Some(ErrorCode::Unauthorized),
            2 => Some(ErrorCode::BadRequest),
            3 => Some(ErrorCode::TaskEnded),
            4 => Some(ErrorCode::Internal),
            5 => Some(ErrorCode::Busy),
            6 => Some(ErrorCode::BudgetExhausted),
            7 => Some(ErrorCode::RoundOutdated),
            _ => None,
        }
    }

    /// `true` when a client should transparently retry after a backoff.
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorCode::Busy)
    }
}

/// The protocol message envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Device → server: request current parameters.
    CheckoutRequest(CheckoutRequest),
    /// Server → device: current parameters.
    CheckoutResponse(CheckoutResponse),
    /// Device → server: sanitized minibatch statistics.
    CheckinRequest(CheckinRequest),
    /// Server → device: checkin acknowledgement.
    CheckinAck(CheckinAck),
    /// Server → device: error reply.
    Error(ErrorReply),
    /// Gateway → server: several checkins in one frame.
    BatchCheckinRequest(BatchCheckinRequest),
    /// Server → gateway: positional acknowledgements for a batch.
    BatchCheckinAck(BatchCheckinAck),
    /// Server → device: backpressure rejection with a retry hint.
    Busy(BusyReply),
    /// Operator → server: scrape the metric registry (wire v4).
    MetricsRequest(MetricsRequest),
    /// Server → operator: the metric registry snapshot (wire v4).
    MetricsReport(MetricsReport),
}

impl Message {
    /// The one-byte tag used on the wire.
    pub fn tag(&self) -> u8 {
        match self {
            Message::CheckoutRequest(_) => 1,
            Message::CheckoutResponse(_) => 2,
            Message::CheckinRequest(_) => 3,
            Message::CheckinAck(_) => 4,
            Message::Error(_) => 5,
            Message::BatchCheckinRequest(_) => 6,
            Message::BatchCheckinAck(_) => 7,
            Message::Busy(_) => 8,
            Message::MetricsRequest(_) => 9,
            Message::MetricsReport(_) => 10,
        }
    }

    /// Short human-readable name for logging.
    pub fn name(&self) -> &'static str {
        match self {
            Message::CheckoutRequest(_) => "checkout_request",
            Message::CheckoutResponse(_) => "checkout_response",
            Message::CheckinRequest(_) => "checkin_request",
            Message::CheckinAck(_) => "checkin_ack",
            Message::Error(_) => "error",
            Message::BatchCheckinRequest(_) => "batch_checkin_request",
            Message::BatchCheckinAck(_) => "batch_checkin_ack",
            Message::Busy(_) => "busy",
            Message::MetricsRequest(_) => "metrics_request",
            Message::MetricsReport(_) => "metrics_report",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_distinct() {
        let msgs = [
            Message::CheckoutRequest(CheckoutRequest {
                version: 1,
                device_id: 0,
                token: AuthToken::derive(0, 0),
            }),
            Message::CheckoutResponse(CheckoutResponse {
                iteration: 0,
                params: vec![],
                stopped: false,
                round: None,
            }),
            Message::CheckinRequest(CheckinRequest {
                device_id: 0,
                token: AuthToken::derive(0, 0),
                checkout_iteration: 0,
                nonce: 100,
                round_id: 0,
                gradient: GradientPayload::Dense(vec![]),
                num_samples: 0,
                error_count: 0,
                label_counts: vec![],
            }),
            Message::CheckinAck(CheckinAck {
                accepted: true,
                iteration: 0,
                stopped: false,
                deduped: false,
            }),
            Message::Error(ErrorReply {
                code: ErrorCode::Internal,
                detail: String::new(),
                round_id: 0,
            }),
            Message::BatchCheckinRequest(BatchCheckinRequest { items: vec![] }),
            Message::BatchCheckinAck(BatchCheckinAck { acks: vec![] }),
            Message::Busy(BusyReply { retry_after_ms: 2 }),
            Message::MetricsRequest(MetricsRequest {
                version: 1,
                device_id: 0,
                token: AuthToken::derive(0, 0),
            }),
            Message::MetricsReport(MetricsReport {
                counters: vec![],
                gauges: vec![],
                histograms: vec![],
            }),
        ];
        let mut tags: Vec<u8> = msgs.iter().map(|m| m.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 10);
        assert_eq!(msgs[0].name(), "checkout_request");
        assert_eq!(msgs[4].name(), "error");
        assert_eq!(msgs[5].name(), "batch_checkin_request");
        assert_eq!(msgs[6].name(), "batch_checkin_ack");
        assert_eq!(msgs[7].name(), "busy");
        assert_eq!(msgs[8].name(), "metrics_request");
        assert_eq!(msgs[9].name(), "metrics_report");
    }

    #[test]
    fn gradient_payload_auto_selection_tracks_wire_size() {
        // 95% zeros: the sparse body (8 + 12·50 = 608) beats 8·1000.
        let mut g = vec![0.0; 1000];
        for i in (0..1000).step_by(20) {
            g[i] = 0.5;
        }
        let sparse = GradientPayload::from_dense_auto(g.clone());
        assert!(matches!(sparse, GradientPayload::Sparse { .. }));
        assert_eq!(sparse.dim(), 1000);
        assert_eq!(sparse.nnz(), 50);
        assert!(sparse.encoded_len() < GradientPayload::Dense(g).encoded_len());
        // A dense gradient stays dense — and exact zeros only: a tiny value is
        // not a zero.
        let dense = GradientPayload::from_dense_auto(vec![1e-300; 100]);
        assert!(matches!(dense, GradientPayload::Dense(_)));
        // Negative zero has a non-zero bit pattern and is preserved.
        let mut nz = vec![0.0; 100];
        nz[3] = -0.0;
        let payload = GradientPayload::from_dense_auto(nz);
        assert_eq!(payload.nnz(), 1);
    }

    #[test]
    fn quantized_payload_is_at_least_twice_as_small_as_dense() {
        let dim = 5000;
        let quantized = GradientPayload::Quantized {
            scale: 1.0 / 32767.0,
            levels: vec![17; dim],
        };
        assert_eq!(quantized.dim(), dim);
        assert_eq!(quantized.nnz(), dim);
        assert_eq!(quantized.encoded_len(), 1 + 4 + 8 + 2 * dim);
        let dense = GradientPayload::Dense(vec![0.1; dim]);
        assert!(
            quantized.encoded_len() * 2 < dense.encoded_len(),
            "quantized {} B vs dense {} B",
            quantized.encoded_len(),
            dense.encoded_len()
        );
    }

    #[test]
    fn error_code_round_trip() {
        for code in [
            ErrorCode::Unauthorized,
            ErrorCode::BadRequest,
            ErrorCode::TaskEnded,
            ErrorCode::Internal,
            ErrorCode::Busy,
            ErrorCode::BudgetExhausted,
            ErrorCode::RoundOutdated,
        ] {
            assert_eq!(ErrorCode::from_u8(code.as_u8()), Some(code));
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(99), None);
        assert!(ErrorCode::Busy.is_retryable());
        assert!(!ErrorCode::BadRequest.is_retryable());
        assert!(!ErrorCode::BudgetExhausted.is_retryable());
        // RoundOutdated is non-fatal but requires a resync, not a blind
        // retry of the same (stale) payload.
        assert!(!ErrorCode::RoundOutdated.is_retryable());
    }
}
