//! Deterministic binary encoding/decoding of protocol messages.
//!
//! Layout conventions: all integers little-endian; `f64` as IEEE-754 bit patterns;
//! vectors prefixed by a `u32` element count; strings UTF-8 with a `u32` byte
//! length; booleans a single byte. The message itself is `[tag: u8][body]`; the
//! framing layer (`crate::frame`) adds the outer length prefix.

use crate::auth::{AuthToken, TOKEN_LEN};
use crate::error::ProtoError;
use crate::message::{
    BatchAck, BatchCheckinAck, BatchCheckinRequest, BusyReply, CheckinAck, CheckinRequest,
    CheckoutRequest, CheckoutResponse, ErrorCode, ErrorReply, GradientPayload, HistogramReport,
    Message, MetricsReport, MetricsRequest, RoundParams,
};
use crate::Result;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum number of elements accepted in any decoded vector (gradients, label
/// counts). Prevents a malicious length prefix from triggering a huge allocation.
pub const MAX_VEC_LEN: usize = 16 * 1024 * 1024;

/// Maximum number of checkins accepted in one batch frame. Each item embeds a
/// gradient, so the cap keeps a single frame's decode cost bounded.
pub const MAX_BATCH_ITEMS: usize = 4096;

/// Wire tag for a dense gradient encoding inside a checkin.
const GRADIENT_DENSE: u8 = 0;
/// Wire tag for a sparse (indices + values) gradient encoding.
const GRADIENT_SPARSE: u8 = 1;
/// Wire tag for a quantized (shared scale + `i16` levels) gradient encoding
/// (wire v5).
const GRADIENT_QUANTIZED: u8 = 2;
/// Wire tag for a masked (round-cohort `u64` words) gradient encoding
/// (wire v6).
const GRADIENT_MASKED: u8 = 3;

/// Encodes a message into a standalone byte buffer (without the frame length
/// prefix).
pub fn encode(message: &Message) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    encode_into(message, &mut buf);
    buf.freeze()
}

/// Encodes a message into a caller-provided buffer (without the frame length
/// prefix), appending to whatever it already holds. Reusing one buffer across
/// messages keeps the steady-state encode path allocation-free.
pub fn encode_into<B: BufMut>(message: &Message, buf: &mut B) {
    buf.put_u8(message.tag());
    match message {
        Message::CheckoutRequest(m) => {
            buf.put_u16_le(m.version);
            buf.put_u64_le(m.device_id);
            buf.put_slice(m.token.as_bytes());
        }
        Message::CheckoutResponse(m) => {
            buf.put_u64_le(m.iteration);
            put_bool(buf, m.stopped);
            put_f64_vec(buf, &m.params);
            match &m.round {
                None => buf.put_u8(0),
                Some(r) => {
                    buf.put_u8(1);
                    buf.put_u64_le(r.round_id);
                    buf.put_u64_le(r.seed);
                    buf.put_f64_le(r.select_fraction);
                    buf.put_u32_le(r.deadline_epochs);
                    buf.put_u64_le(r.population);
                }
            }
        }
        Message::CheckinRequest(m) => {
            put_checkin(buf, m);
        }
        Message::CheckinAck(m) => {
            put_bool(buf, m.accepted);
            buf.put_u64_le(m.iteration);
            put_bool(buf, m.stopped);
            put_bool(buf, m.deduped);
        }
        Message::Error(m) => {
            buf.put_u8(m.code.as_u8());
            put_string(buf, &m.detail);
            buf.put_u64_le(m.round_id);
        }
        Message::BatchCheckinRequest(m) => {
            buf.put_u32_le(m.items.len() as u32);
            for item in &m.items {
                put_checkin(buf, item);
            }
        }
        Message::BatchCheckinAck(m) => {
            buf.put_u32_le(m.acks.len() as u32);
            for ack in &m.acks {
                put_bool(buf, ack.accepted);
                buf.put_u64_le(ack.iteration);
                put_bool(buf, ack.stopped);
                put_bool(buf, ack.deduped);
                // 0 = processed normally, otherwise the refusing error code.
                buf.put_u8(ack.reject.map_or(0, ErrorCode::as_u8));
            }
        }
        Message::Busy(m) => {
            buf.put_u32_le(m.retry_after_ms);
        }
        Message::MetricsRequest(m) => {
            buf.put_u16_le(m.version);
            buf.put_u64_le(m.device_id);
            buf.put_slice(m.token.as_bytes());
        }
        Message::MetricsReport(m) => {
            buf.put_u32_le(m.counters.len() as u32);
            for (name, value) in &m.counters {
                put_string(buf, name);
                buf.put_u64_le(*value);
            }
            buf.put_u32_le(m.gauges.len() as u32);
            for (name, value) in &m.gauges {
                put_string(buf, name);
                buf.put_i64_le(*value);
            }
            buf.put_u32_le(m.histograms.len() as u32);
            for h in &m.histograms {
                put_string(buf, &h.name);
                buf.put_u64_le(h.count);
                buf.put_u64_le(h.sum);
                buf.put_u64_le(h.max);
                buf.put_u64_le(h.p50);
                buf.put_u64_le(h.p90);
                buf.put_u64_le(h.p99);
                buf.put_u64_le(h.p999);
            }
        }
    }
}

/// Decodes a message from a byte buffer produced by [`encode`].
pub fn decode(mut buf: &[u8]) -> Result<Message> {
    let tag = get_u8(&mut buf, "message tag")?;
    let message = match tag {
        1 => {
            let version = get_u16(&mut buf, "version")?;
            let device_id = get_u64(&mut buf, "device_id")?;
            let token = get_token(&mut buf)?;
            Message::CheckoutRequest(CheckoutRequest {
                version,
                device_id,
                token,
            })
        }
        2 => {
            let iteration = get_u64(&mut buf, "iteration")?;
            let stopped = get_bool(&mut buf, "stopped")?;
            let params = get_f64_vec(&mut buf, "params")?;
            let round = match get_u8(&mut buf, "round presence")? {
                0 => None,
                1 => {
                    let round_id = get_u64(&mut buf, "round_id")?;
                    let seed = get_u64(&mut buf, "round seed")?;
                    ensure(buf, 8, "select_fraction")?;
                    let select_fraction = buf.get_f64_le();
                    if !(select_fraction.is_finite()
                        && select_fraction > 0.0
                        && select_fraction <= 1.0)
                    {
                        return Err(ProtoError::InvalidField {
                            field: "select_fraction",
                            reason: format!("{select_fraction} outside (0, 1]"),
                        });
                    }
                    let deadline_epochs = get_u32(&mut buf, "deadline_epochs")?;
                    let population = get_u64(&mut buf, "round population")?;
                    Some(RoundParams {
                        round_id,
                        seed,
                        select_fraction,
                        deadline_epochs,
                        population,
                    })
                }
                other => {
                    return Err(ProtoError::InvalidField {
                        field: "round presence",
                        reason: format!("expected 0 or 1, got {other}"),
                    })
                }
            };
            Message::CheckoutResponse(CheckoutResponse {
                iteration,
                params,
                stopped,
                round,
            })
        }
        3 => Message::CheckinRequest(get_checkin(&mut buf)?),
        4 => {
            let accepted = get_bool(&mut buf, "accepted")?;
            let iteration = get_u64(&mut buf, "iteration")?;
            let stopped = get_bool(&mut buf, "stopped")?;
            let deduped = get_bool(&mut buf, "deduped")?;
            Message::CheckinAck(CheckinAck {
                accepted,
                iteration,
                stopped,
                deduped,
            })
        }
        5 => {
            let raw_code = get_u8(&mut buf, "error code")?;
            let code = ErrorCode::from_u8(raw_code).ok_or(ProtoError::InvalidField {
                field: "error_code",
                reason: format!("unknown code {raw_code}"),
            })?;
            let detail = get_string(&mut buf, "detail")?;
            let round_id = get_u64(&mut buf, "error round_id")?;
            Message::Error(ErrorReply {
                code,
                detail,
                round_id,
            })
        }
        6 => {
            let count = get_batch_len(&mut buf, "batch items")?;
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(get_checkin(&mut buf)?);
            }
            Message::BatchCheckinRequest(BatchCheckinRequest { items })
        }
        7 => {
            let count = get_batch_len(&mut buf, "batch acks")?;
            let mut acks = Vec::with_capacity(count);
            for _ in 0..count {
                let accepted = get_bool(&mut buf, "accepted")?;
                let iteration = get_u64(&mut buf, "iteration")?;
                let stopped = get_bool(&mut buf, "stopped")?;
                let deduped = get_bool(&mut buf, "deduped")?;
                let raw_reject = get_u8(&mut buf, "reject code")?;
                let reject = if raw_reject == 0 {
                    None
                } else {
                    Some(
                        ErrorCode::from_u8(raw_reject).ok_or(ProtoError::InvalidField {
                            field: "reject_code",
                            reason: format!("unknown code {raw_reject}"),
                        })?,
                    )
                };
                acks.push(BatchAck {
                    accepted,
                    iteration,
                    stopped,
                    deduped,
                    reject,
                });
            }
            Message::BatchCheckinAck(BatchCheckinAck { acks })
        }
        8 => {
            let retry_after_ms = get_u32(&mut buf, "retry_after_ms")?;
            Message::Busy(BusyReply { retry_after_ms })
        }
        9 => {
            let version = get_u16(&mut buf, "version")?;
            let device_id = get_u64(&mut buf, "device_id")?;
            let token = get_token(&mut buf)?;
            Message::MetricsRequest(MetricsRequest {
                version,
                device_id,
                token,
            })
        }
        10 => {
            let count = get_batch_len(&mut buf, "metric counters")?;
            let mut counters = Vec::with_capacity(count);
            for _ in 0..count {
                let name = get_string(&mut buf, "counter name")?;
                let value = get_u64(&mut buf, "counter value")?;
                counters.push((name, value));
            }
            let count = get_batch_len(&mut buf, "metric gauges")?;
            let mut gauges = Vec::with_capacity(count);
            for _ in 0..count {
                let name = get_string(&mut buf, "gauge name")?;
                let value = get_i64(&mut buf, "gauge value")?;
                gauges.push((name, value));
            }
            let count = get_batch_len(&mut buf, "metric histograms")?;
            let mut histograms = Vec::with_capacity(count);
            for _ in 0..count {
                let name = get_string(&mut buf, "histogram name")?;
                ensure(buf, 7 * 8, "histogram stats")?;
                histograms.push(HistogramReport {
                    name,
                    count: buf.get_u64_le(),
                    sum: buf.get_u64_le(),
                    max: buf.get_u64_le(),
                    p50: buf.get_u64_le(),
                    p90: buf.get_u64_le(),
                    p99: buf.get_u64_le(),
                    p999: buf.get_u64_le(),
                });
            }
            Message::MetricsReport(MetricsReport {
                counters,
                gauges,
                histograms,
            })
        }
        other => return Err(ProtoError::UnknownMessageTag(other)),
    };
    if !buf.is_empty() {
        return Err(ProtoError::InvalidField {
            field: "message",
            reason: format!("{} trailing bytes after decoding", buf.len()),
        });
    }
    Ok(message)
}

fn put_checkin<B: BufMut>(buf: &mut B, m: &CheckinRequest) {
    buf.put_u64_le(m.device_id);
    buf.put_slice(m.token.as_bytes());
    buf.put_u64_le(m.checkout_iteration);
    buf.put_u64_le(m.nonce);
    buf.put_u64_le(m.round_id);
    buf.put_u32_le(m.num_samples);
    buf.put_i64_le(m.error_count);
    put_gradient(buf, &m.gradient);
    put_i64_vec(buf, &m.label_counts);
}

fn put_gradient<B: BufMut>(buf: &mut B, gradient: &GradientPayload) {
    match gradient {
        GradientPayload::Dense(values) => {
            buf.put_u8(GRADIENT_DENSE);
            put_f64_vec(buf, values);
        }
        GradientPayload::Sparse {
            dim,
            indices,
            values,
        } => {
            buf.put_u8(GRADIENT_SPARSE);
            buf.put_u32_le(*dim);
            buf.put_u32_le(indices.len() as u32);
            for &i in indices {
                buf.put_u32_le(i);
            }
            buf.put_f64_slice_le(values);
        }
        GradientPayload::Quantized { scale, levels } => {
            buf.put_u8(GRADIENT_QUANTIZED);
            buf.put_u32_le(levels.len() as u32);
            buf.put_f64_le(*scale);
            buf.put_i16_slice_le(levels);
        }
        GradientPayload::Masked { words } => {
            buf.put_u8(GRADIENT_MASKED);
            buf.put_u32_le(words.len() as u32);
            for &w in words {
                buf.put_u64_le(w);
            }
        }
    }
}

fn get_gradient(buf: &mut &[u8]) -> Result<GradientPayload> {
    match get_u8(buf, "gradient encoding")? {
        GRADIENT_DENSE => Ok(GradientPayload::Dense(get_f64_vec(buf, "gradient")?)),
        GRADIENT_SPARSE => {
            let dim = get_u32(buf, "gradient dim")? as usize;
            if dim > MAX_VEC_LEN {
                return Err(ProtoError::InvalidField {
                    field: "gradient dim",
                    reason: format!("declared dimension {dim} exceeds maximum {MAX_VEC_LEN}"),
                });
            }
            let nnz = get_u32(buf, "gradient nnz")? as usize;
            if nnz > dim {
                return Err(ProtoError::InvalidField {
                    field: "gradient nnz",
                    reason: format!("{nnz} stored coordinates exceed dimension {dim}"),
                });
            }
            ensure(buf, nnz * 4, "gradient indices")?;
            let mut indices = Vec::with_capacity(nnz);
            let mut prev: Option<u32> = None;
            for _ in 0..nnz {
                let i = buf.get_u32_le();
                if i as usize >= dim || prev.is_some_and(|p| i <= p) {
                    return Err(ProtoError::InvalidField {
                        field: "gradient indices",
                        reason: format!("index {i} out of order or out of range for {dim}"),
                    });
                }
                prev = Some(i);
                indices.push(i);
            }
            ensure(buf, nnz * 8, "gradient values")?;
            let values = (0..nnz).map(|_| buf.get_f64_le()).collect();
            Ok(GradientPayload::Sparse {
                dim: dim as u32,
                indices,
                values,
            })
        }
        GRADIENT_QUANTIZED => {
            let dim = get_vec_len(buf, "quantized gradient")?;
            ensure(buf, 8, "quantized scale")?;
            let scale = buf.get_f64_le();
            // The scale multiplies every reconstructed coordinate; a NaN,
            // infinite, or negative scale would poison the whole aggregate.
            if !scale.is_finite() || scale < 0.0 {
                return Err(ProtoError::InvalidField {
                    field: "quantized scale",
                    reason: format!("scale {scale} is not finite and non-negative"),
                });
            }
            ensure(buf, dim * 2, "quantized levels")?;
            let levels = (0..dim).map(|_| buf.get_i16_le()).collect();
            Ok(GradientPayload::Quantized { scale, levels })
        }
        GRADIENT_MASKED => {
            let words = get_u64_vec(buf, "masked gradient")?;
            Ok(GradientPayload::Masked { words })
        }
        other => Err(ProtoError::InvalidField {
            field: "gradient encoding",
            reason: format!("unknown encoding {other}"),
        }),
    }
}

fn get_checkin(buf: &mut &[u8]) -> Result<CheckinRequest> {
    let device_id = get_u64(buf, "device_id")?;
    let token = get_token(buf)?;
    let checkout_iteration = get_u64(buf, "checkout_iteration")?;
    let nonce = get_u64(buf, "nonce")?;
    let round_id = get_u64(buf, "round_id")?;
    let num_samples = get_u32(buf, "num_samples")?;
    let error_count = get_i64(buf, "error_count")?;
    let gradient = get_gradient(buf)?;
    let label_counts = get_i64_vec(buf, "label_counts")?;
    Ok(CheckinRequest {
        device_id,
        token,
        checkout_iteration,
        nonce,
        round_id,
        gradient,
        num_samples,
        error_count,
        label_counts,
    })
}

fn get_batch_len(buf: &mut &[u8], context: &'static str) -> Result<usize> {
    let len = get_u32(buf, context)? as usize;
    if len > MAX_BATCH_ITEMS {
        return Err(ProtoError::InvalidField {
            field: context,
            reason: format!("declared batch size {len} exceeds maximum {MAX_BATCH_ITEMS}"),
        });
    }
    Ok(len)
}

fn put_bool<B: BufMut>(buf: &mut B, value: bool) {
    buf.put_u8(u8::from(value));
}

fn put_f64_vec<B: BufMut>(buf: &mut B, values: &[f64]) {
    buf.put_u32_le(values.len() as u32);
    buf.put_f64_slice_le(values);
}

fn put_i64_vec<B: BufMut>(buf: &mut B, values: &[i64]) {
    buf.put_u32_le(values.len() as u32);
    for &v in values {
        buf.put_i64_le(v);
    }
}

fn put_string<B: BufMut>(buf: &mut B, value: &str) {
    buf.put_u32_le(value.len() as u32);
    buf.put_slice(value.as_bytes());
}

fn ensure(buf: &[u8], needed: usize, context: &'static str) -> Result<()> {
    if buf.remaining() < needed {
        Err(ProtoError::Truncated { context })
    } else {
        Ok(())
    }
}

fn get_u8(buf: &mut &[u8], context: &'static str) -> Result<u8> {
    ensure(buf, 1, context)?;
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut &[u8], context: &'static str) -> Result<u16> {
    ensure(buf, 2, context)?;
    Ok(buf.get_u16_le())
}

fn get_u32(buf: &mut &[u8], context: &'static str) -> Result<u32> {
    ensure(buf, 4, context)?;
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8], context: &'static str) -> Result<u64> {
    ensure(buf, 8, context)?;
    Ok(buf.get_u64_le())
}

fn get_i64(buf: &mut &[u8], context: &'static str) -> Result<i64> {
    ensure(buf, 8, context)?;
    Ok(buf.get_i64_le())
}

fn get_bool(buf: &mut &[u8], context: &'static str) -> Result<bool> {
    Ok(get_u8(buf, context)? != 0)
}

fn get_token(buf: &mut &[u8]) -> Result<AuthToken> {
    ensure(buf, TOKEN_LEN, "auth token")?;
    let mut raw = [0u8; TOKEN_LEN];
    buf.copy_to_slice(&mut raw);
    Ok(AuthToken::from_bytes(raw))
}

fn get_vec_len(buf: &mut &[u8], context: &'static str) -> Result<usize> {
    let len = get_u32(buf, context)? as usize;
    if len > MAX_VEC_LEN {
        return Err(ProtoError::InvalidField {
            field: context,
            reason: format!("declared length {len} exceeds maximum {MAX_VEC_LEN}"),
        });
    }
    Ok(len)
}

fn get_f64_vec(buf: &mut &[u8], context: &'static str) -> Result<Vec<f64>> {
    let len = get_vec_len(buf, context)?;
    ensure(buf, len * 8, context)?;
    Ok((0..len).map(|_| buf.get_f64_le()).collect())
}

fn get_i64_vec(buf: &mut &[u8], context: &'static str) -> Result<Vec<i64>> {
    let len = get_vec_len(buf, context)?;
    ensure(buf, len * 8, context)?;
    Ok((0..len).map(|_| buf.get_i64_le()).collect())
}

fn get_u64_vec(buf: &mut &[u8], context: &'static str) -> Result<Vec<u64>> {
    let len = get_vec_len(buf, context)?;
    ensure(buf, len * 8, context)?;
    Ok((0..len).map(|_| buf.get_u64_le()).collect())
}

fn get_string(buf: &mut &[u8], context: &'static str) -> Result<String> {
    let len = get_vec_len(buf, context)?;
    ensure(buf, len, context)?;
    // Validate in place and copy once, straight from the frame slice — no
    // intermediate Vec<u8>.
    let s = std::str::from_utf8(&buf[..len]).map_err(|e| ProtoError::InvalidField {
        field: context,
        reason: format!("invalid UTF-8: {e}"),
    })?;
    let owned = s.to_owned();
    buf.advance(len);
    Ok(owned)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::CheckoutRequest(CheckoutRequest {
                version: 1,
                device_id: 42,
                token: AuthToken::derive(42, 7),
            }),
            Message::CheckoutResponse(CheckoutResponse {
                iteration: 1234,
                params: vec![0.5, -1.25, 3.75, f64::MIN_POSITIVE],
                stopped: true,
                round: None,
            }),
            Message::CheckoutResponse(CheckoutResponse {
                iteration: 77,
                params: vec![1.0, 2.0],
                stopped: false,
                round: Some(RoundParams {
                    round_id: 3,
                    seed: 0xDEAD_BEEF,
                    select_fraction: 0.5,
                    deadline_epochs: 12,
                    population: 64,
                }),
            }),
            Message::CheckinRequest(CheckinRequest {
                device_id: 9,
                token: AuthToken::derive(9, 7),
                checkout_iteration: 55,
                nonce: 155,
                round_id: 0,
                gradient: GradientPayload::Dense(vec![1e-9, -2.5, 0.0]),
                num_samples: 20,
                error_count: -3,
                label_counts: vec![5, -1, 0, 16],
            }),
            Message::CheckinRequest(CheckinRequest {
                device_id: 10,
                token: AuthToken::derive(10, 7),
                checkout_iteration: 56,
                nonce: 156,
                round_id: 0,
                gradient: GradientPayload::Sparse {
                    dim: 100,
                    indices: vec![0, 7, 99],
                    values: vec![0.5, -1.25, 1e-12],
                },
                num_samples: 4,
                error_count: 0,
                label_counts: vec![2, 2],
            }),
            Message::CheckinRequest(CheckinRequest {
                device_id: 11,
                token: AuthToken::derive(11, 7),
                checkout_iteration: 57,
                nonce: 157,
                round_id: 0,
                gradient: GradientPayload::Quantized {
                    scale: 3.5e-5,
                    levels: vec![0, -1, 32767, -32768, 12],
                },
                num_samples: 8,
                error_count: 2,
                label_counts: vec![4, 4],
            }),
            Message::CheckinRequest(CheckinRequest {
                device_id: 12,
                token: AuthToken::derive(12, 7),
                checkout_iteration: 58,
                nonce: 158,
                round_id: 3,
                gradient: GradientPayload::Masked {
                    words: vec![0, u64::MAX, 0x0102_0304_0506_0708],
                },
                num_samples: 16,
                error_count: 1,
                label_counts: vec![8, 8],
            }),
            Message::CheckinAck(CheckinAck {
                accepted: true,
                iteration: 56,
                stopped: false,
                deduped: true,
            }),
            Message::Error(ErrorReply {
                code: ErrorCode::Unauthorized,
                detail: "bad token".into(),
                round_id: 0,
            }),
            Message::Error(ErrorReply {
                code: ErrorCode::RoundOutdated,
                detail: "round 3 closed".into(),
                round_id: 4,
            }),
            Message::BatchCheckinRequest(BatchCheckinRequest {
                items: vec![
                    CheckinRequest {
                        device_id: 1,
                        token: AuthToken::derive(1, 7),
                        checkout_iteration: 3,
                        nonce: 103,
                        round_id: 0,
                        gradient: GradientPayload::Dense(vec![0.25, -0.5]),
                        num_samples: 4,
                        error_count: 1,
                        label_counts: vec![2, 2],
                    },
                    CheckinRequest {
                        device_id: 2,
                        token: AuthToken::derive(2, 7),
                        checkout_iteration: 3,
                        nonce: 103,
                        round_id: 0,
                        gradient: GradientPayload::Sparse {
                            dim: 8,
                            indices: vec![3],
                            values: vec![2.0],
                        },
                        num_samples: 1,
                        error_count: -1,
                        label_counts: vec![],
                    },
                ],
            }),
            Message::BatchCheckinAck(BatchCheckinAck {
                acks: vec![
                    BatchAck {
                        accepted: true,
                        iteration: 4,
                        stopped: false,
                        deduped: false,
                        reject: None,
                    },
                    BatchAck {
                        accepted: false,
                        iteration: 4,
                        stopped: true,
                        deduped: true,
                        reject: Some(ErrorCode::Unauthorized),
                    },
                ],
            }),
            Message::Busy(BusyReply { retry_after_ms: 25 }),
            Message::MetricsRequest(MetricsRequest {
                version: 4,
                device_id: 3,
                token: AuthToken::derive(3, 7),
            }),
            Message::MetricsReport(MetricsReport {
                counters: vec![("checkins_applied".into(), 64), ("dedup_replays".into(), 2)],
                gauges: vec![("queue_depth".into(), -1), ("conns_active".into(), 7)],
                histograms: vec![HistogramReport {
                    name: "req_checkin_us".into(),
                    count: 64,
                    sum: 1024,
                    max: 200,
                    p50: 15,
                    p90: 31,
                    p99: 255,
                    p999: 255,
                }],
            }),
        ]
    }

    #[test]
    fn round_trip_all_message_types() {
        for msg in sample_messages() {
            let encoded = encode(&msg);
            let decoded = decode(&encoded).unwrap();
            assert_eq!(decoded, msg, "round trip failed for {}", msg.name());
        }
    }

    #[test]
    fn empty_vectors_round_trip() {
        let msg = Message::CheckoutResponse(CheckoutResponse {
            iteration: 0,
            params: vec![],
            stopped: false,
            round: None,
        });
        assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            decode(&[0xFFu8]),
            Err(ProtoError::UnknownMessageTag(0xFF))
        ));
        assert!(matches!(decode(&[]), Err(ProtoError::Truncated { .. })));
    }

    #[test]
    fn truncated_buffers_rejected() {
        for msg in sample_messages() {
            let encoded = encode(&msg);
            // Every strict prefix must fail cleanly, never panic.
            for cut in 0..encoded.len() {
                assert!(
                    decode(&encoded[..cut]).is_err(),
                    "prefix of length {cut} of {} unexpectedly decoded",
                    msg.name()
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let msg = Message::CheckinAck(CheckinAck {
            accepted: false,
            iteration: 1,
            stopped: false,
            deduped: false,
        });
        let mut bytes = encode(&msg).to_vec();
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn oversized_vector_length_rejected() {
        // Craft a checkout response that declares a gigantic parameter vector.
        let mut buf = BytesMut::new();
        buf.put_u8(2);
        buf.put_u64_le(0);
        buf.put_u8(0);
        buf.put_u32_le(u32::MAX);
        assert!(matches!(
            decode(&buf),
            Err(ProtoError::InvalidField {
                field: "params",
                ..
            })
        ));
    }

    #[test]
    fn empty_batch_round_trips() {
        let req = Message::BatchCheckinRequest(BatchCheckinRequest { items: vec![] });
        assert_eq!(decode(&encode(&req)).unwrap(), req);
        let ack = Message::BatchCheckinAck(BatchCheckinAck { acks: vec![] });
        assert_eq!(decode(&encode(&ack)).unwrap(), ack);
    }

    #[test]
    fn oversized_batch_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(6);
        buf.put_u32_le((MAX_BATCH_ITEMS + 1) as u32);
        assert!(matches!(
            decode(&buf),
            Err(ProtoError::InvalidField {
                field: "batch items",
                ..
            })
        ));
    }

    #[test]
    fn invalid_batch_reject_code_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32_le(1);
        buf.put_u8(1); // accepted
        buf.put_u64_le(0); // iteration
        buf.put_u8(0); // stopped
        buf.put_u8(200); // unknown reject code
        assert!(decode(&buf).is_err());
    }

    #[test]
    fn invalid_error_code_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(5);
        buf.put_u8(200);
        buf.put_u32_le(0);
        assert!(decode(&buf).is_err());
    }

    fn checkin_with(gradient: GradientPayload) -> Message {
        Message::CheckinRequest(CheckinRequest {
            device_id: 1,
            token: AuthToken::derive(1, 7),
            checkout_iteration: 0,
            nonce: 0,
            round_id: 0,
            gradient,
            num_samples: 1,
            error_count: 0,
            label_counts: vec![1],
        })
    }

    /// Satellite guarantee: a 99%-zero gradient is smaller on the wire when
    /// encoded sparsely than densely.
    #[test]
    fn sparse_encoding_of_mostly_zero_gradient_is_smaller_on_the_wire() {
        let dim = 10_000;
        let mut dense = vec![0.0; dim];
        for i in (0..dim).step_by(100) {
            dense[i] = 0.1; // 1% non-zero
        }
        let dense_bytes = encode(&checkin_with(GradientPayload::Dense(dense.clone()))).len();
        let auto = GradientPayload::from_dense_auto(dense);
        assert!(matches!(auto, GradientPayload::Sparse { .. }));
        let sparse_bytes = encode(&checkin_with(auto)).len();
        assert!(
            sparse_bytes * 10 < dense_bytes,
            "sparse {sparse_bytes} B should be far below dense {dense_bytes} B"
        );
    }

    #[test]
    fn malformed_sparse_gradients_rejected() {
        let cases = [
            // Unknown encoding byte is exercised via a corrupted frame below;
            // these are structurally invalid sparse payloads.
            GradientPayload::Sparse {
                dim: 4,
                indices: vec![0, 4],
                values: vec![1.0, 2.0],
            }, // index out of range
            GradientPayload::Sparse {
                dim: 4,
                indices: vec![2, 1],
                values: vec![1.0, 2.0],
            }, // out of order
            GradientPayload::Sparse {
                dim: 4,
                indices: vec![2, 2],
                values: vec![1.0, 2.0],
            }, // duplicate
        ];
        for gradient in cases {
            let bytes = encode(&checkin_with(gradient));
            assert!(decode(&bytes).is_err(), "invalid sparse payload decoded");
        }
        // An unknown gradient-encoding byte is rejected.
        let mut bytes = encode(&checkin_with(GradientPayload::Dense(vec![]))).to_vec();
        // The encoding byte sits right after the fixed checkin header
        // (tag, device_id, token, checkout_iteration, nonce, round_id,
        // num_samples, error_count).
        let offset = 1 + 8 + TOKEN_LEN + 8 + 8 + 8 + 4 + 8;
        assert_eq!(bytes[offset], 0);
        bytes[offset] = 9;
        assert!(decode(&bytes).is_err());
    }

    /// Tentpole guarantee (wire v5): a quantized checkin body is at least 2×
    /// smaller than the dense encoding of the same gradient.
    #[test]
    fn quantized_encoding_is_at_least_twice_as_small_on_the_wire() {
        let dim = 5000;
        let dense_bytes = encode(&checkin_with(GradientPayload::Dense(vec![0.25; dim]))).len();
        let quantized_bytes = encode(&checkin_with(GradientPayload::Quantized {
            scale: 0.25 / 32767.0,
            levels: vec![32767; dim],
        }))
        .len();
        assert!(
            quantized_bytes * 2 < dense_bytes,
            "quantized {quantized_bytes} B should be under half of dense {dense_bytes} B"
        );
    }

    #[test]
    fn malformed_quantized_scale_rejected() {
        for bad_scale in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            let bytes = encode(&checkin_with(GradientPayload::Quantized {
                scale: bad_scale,
                levels: vec![1, 2, 3],
            }));
            assert!(
                decode(&bytes).is_err(),
                "scale {bad_scale} unexpectedly decoded"
            );
        }
        // A zero scale (all-zero gradient) is legitimate.
        let bytes = encode(&checkin_with(GradientPayload::Quantized {
            scale: 0.0,
            levels: vec![0, 0],
        }));
        assert!(decode(&bytes).is_ok());
    }

    #[test]
    fn oversized_quantized_dim_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(3); // checkin tag
        buf.put_u64_le(1);
        buf.put_slice(AuthToken::derive(1, 7).as_bytes());
        buf.put_u64_le(0); // checkout_iteration
        buf.put_u64_le(0); // nonce
        buf.put_u64_le(0); // round_id
        buf.put_u32_le(1);
        buf.put_i64_le(0);
        buf.put_u8(2); // quantized encoding
        buf.put_u32_le(u32::MAX); // dim beyond MAX_VEC_LEN
        assert!(matches!(
            decode(&buf),
            Err(ProtoError::InvalidField {
                field: "quantized gradient",
                ..
            })
        ));
    }

    #[test]
    fn oversized_sparse_nnz_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(3); // checkin tag
        buf.put_u64_le(1);
        buf.put_slice(AuthToken::derive(1, 7).as_bytes());
        buf.put_u64_le(0); // checkout_iteration
        buf.put_u64_le(0); // nonce
        buf.put_u64_le(0); // round_id
        buf.put_u32_le(1);
        buf.put_i64_le(0);
        buf.put_u8(1); // sparse encoding
        buf.put_u32_le(8); // dim
        buf.put_u32_le(9); // nnz > dim
        assert!(matches!(
            decode(&buf),
            Err(ProtoError::InvalidField {
                field: "gradient nnz",
                ..
            })
        ));
    }

    #[test]
    fn encode_into_reused_buffer_matches_encode() {
        let mut scratch = Vec::new();
        for msg in sample_messages() {
            scratch.clear();
            encode_into(&msg, &mut scratch);
            assert_eq!(&scratch[..], &encode(&msg)[..]);
        }
    }

    #[test]
    fn special_float_values_survive() {
        let msg = Message::CheckoutResponse(CheckoutResponse {
            iteration: 7,
            params: vec![f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0, 1e300],
            stopped: false,
            round: None,
        });
        let decoded = decode(&encode(&msg)).unwrap();
        if let Message::CheckoutResponse(r) = decoded {
            assert_eq!(r.params[0], f64::INFINITY);
            assert_eq!(r.params[1], f64::NEG_INFINITY);
            assert_eq!(r.params[4], 1e300);
        } else {
            panic!("wrong variant");
        }
    }
}
