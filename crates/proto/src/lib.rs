//! Wire protocol for Crowd-ML device/server communication.
//!
//! The paper's prototype exchanges checkouts and checkins over HTTPS with an
//! Apache/MySQL backend; the distributed-systems behaviour the evaluation cares
//! about lives entirely in the *messages* (what a device requests, what it
//! uploads) rather than the transport. This crate defines those messages and a
//! compact, hand-rolled binary encoding:
//!
//! * [`message::Message`] — checkout request/response, checkin request/ack, and an
//!   error variant, mirroring Device Routines 1–3 and Server Routines 1–2;
//! * [`codec`] — deterministic little-endian encoding/decoding built on `bytes`;
//! * [`frame`] — length-prefixed framing over any `Read`/`Write` stream, with a
//!   maximum-frame-size guard;
//! * [`auth`] — the device authentication tokens the server checks before
//!   accepting a checkout or checkin.

#![forbid(unsafe_code)]

pub mod auth;
pub mod codec;
pub mod error;
pub mod frame;
pub mod message;
pub mod pool;

pub use auth::AuthToken;
pub use error::ProtoError;
pub use message::Message;
pub use pool::{BufPool, OwnedPooledBuf};

/// Result alias for protocol operations.
pub type Result<T> = std::result::Result<T, ProtoError>;

/// Protocol version carried in every checkout request; bumped on incompatible
/// message changes.
///
/// Version 2 introduced the dense/sparse [`message::GradientPayload`] encoding
/// inside checkin requests; version 3 added the duplicate-detection nonce that
/// makes retried checkins idempotent; version 4 added the authenticated
/// [`message::MetricsRequest`]/[`message::MetricsReport`] admin scrape of the
/// server's crowd-scope metric registry; version 5 added the quantized
/// gradient encoding (`i16` levels times a shared scale) that DP-noised
/// uploads select when their noise floor dominates the quantization error;
/// version 6 added the round-based cohort protocol ([`message::RoundParams`]
/// in checkouts, per-checkin `round_id`, the masked gradient encoding, and
/// the `RoundOutdated` resync error).
pub const PROTOCOL_VERSION: u16 = 6;
