//! A small pool of reusable byte buffers for frame I/O.
//!
//! Every framed message used to allocate a fresh `Vec<u8>` for its payload on
//! the read side and a fresh `BytesMut` on the write side. Under sustained
//! checkin traffic that is two heap round-trips per message of up to
//! megabytes each. A [`BufPool`] keeps a shelf of previously used buffers;
//! [`BufPool::take`] hands one out (zero-filled to the requested length) and
//! the [`PooledBuf`] guard returns it on drop, so steady-state frame handling
//! touches the allocator only while a buffer grows to a new high-water mark.
//!
//! The pool is a plain mutex around a `Vec` — taking or returning a buffer is
//! a few nanoseconds, far below the cost of the socket read it serves, and the
//! shelf is bounded in both buffer count and per-buffer capacity, so an idle
//! server does not hold peak-burst memory forever: a buffer grown past
//! [`MAX_POOLED_BYTES`] (e.g. by one maximum-size frame from a hostile peer)
//! is dropped on return instead of being parked.

use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex, PoisonError};

/// Default bound on pooled buffers (per pool, not per connection).
const DEFAULT_MAX_BUFFERS: usize = 32;

/// Largest buffer capacity worth parking on the shelf (4 MiB ≈ a 500k-param
/// dense gradient). Rarer, larger frames fall back to plain allocation, so a
/// burst of maximum-size (16 MiB) frames cannot pin `max_buffers ×` that
/// amount of heap for the server's lifetime.
const MAX_POOLED_BYTES: usize = 4 * 1024 * 1024;

/// A bounded shelf of reusable byte buffers.
#[derive(Debug)]
pub struct BufPool {
    // audit:lock(proto.buf-pool, 80)
    shelf: Mutex<Vec<Vec<u8>>>,
    max_buffers: usize,
}

impl Default for BufPool {
    fn default() -> Self {
        BufPool::new(DEFAULT_MAX_BUFFERS)
    }
}

impl BufPool {
    /// Creates a pool retaining at most `max_buffers` idle buffers.
    pub fn new(max_buffers: usize) -> Self {
        BufPool {
            shelf: Mutex::new(Vec::new()),
            max_buffers,
        }
    }

    /// Takes a buffer of exactly `len` zero-filled bytes, reusing pooled
    /// storage when available.
    pub fn take(&self, len: usize) -> PooledBuf<'_> {
        let mut buf = self.pop();
        buf.clear();
        buf.resize(len, 0);
        PooledBuf { pool: self, buf }
    }

    /// Takes an empty buffer (length 0, capacity whatever the pooled storage
    /// had), for callers that append — e.g. encoding a message.
    pub fn take_empty(&self) -> PooledBuf<'_> {
        let mut buf = self.pop();
        buf.clear();
        PooledBuf { pool: self, buf }
    }

    fn pop(&self) -> Vec<u8> {
        // A poisoned shelf only means another thread panicked mid-push; the
        // Vec is still structurally sound, so keep serving buffers rather
        // than cascading the panic into every connection.
        self.shelf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    fn put(&self, buf: Vec<u8>) {
        if buf.capacity() > MAX_POOLED_BYTES {
            return;
        }
        let mut shelf = self.shelf.lock().unwrap_or_else(PoisonError::into_inner);
        if shelf.len() < self.max_buffers {
            shelf.push(buf);
        }
    }

    /// Like [`BufPool::take`], but the returned guard owns an [`Arc`] handle
    /// to the pool instead of borrowing it, so it can be stored in long-lived
    /// state (e.g. a reactor connection that accumulates a frame across many
    /// readiness events).
    pub fn take_owned(self: &Arc<Self>, len: usize) -> OwnedPooledBuf {
        let mut buf = self.pop();
        buf.clear();
        buf.resize(len, 0);
        OwnedPooledBuf {
            pool: Arc::clone(self),
            buf,
        }
    }

    /// Owned counterpart of [`BufPool::take_empty`].
    pub fn take_empty_owned(self: &Arc<Self>) -> OwnedPooledBuf {
        let mut buf = self.pop();
        buf.clear();
        OwnedPooledBuf {
            pool: Arc::clone(self),
            buf,
        }
    }

    /// Number of buffers currently idle on the shelf.
    pub fn idle_buffers(&self) -> usize {
        self.shelf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

/// A buffer checked out of a [`BufPool`]; returns to the pool on drop.
#[derive(Debug)]
pub struct PooledBuf<'a> {
    pool: &'a BufPool,
    buf: Vec<u8>,
}

impl Deref for PooledBuf<'_> {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl DerefMut for PooledBuf<'_> {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for PooledBuf<'_> {
    fn drop(&mut self) {
        self.pool.put(std::mem::take(&mut self.buf));
    }
}

/// A buffer checked out of an `Arc`-shared [`BufPool`]; returns to the pool
/// on drop. Unlike [`PooledBuf`] it carries no borrow of the pool, at the
/// cost of one reference-count bump per checkout.
#[derive(Debug)]
pub struct OwnedPooledBuf {
    pool: Arc<BufPool>,
    buf: Vec<u8>,
}

impl Deref for OwnedPooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl DerefMut for OwnedPooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Drop for OwnedPooledBuf {
    fn drop(&mut self) {
        self.pool.put(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_returned_and_reused() {
        let pool = BufPool::new(4);
        assert_eq!(pool.idle_buffers(), 0);
        {
            let buf = pool.take(16);
            assert_eq!(buf.len(), 16);
            assert!(buf.iter().all(|&b| b == 0));
        }
        assert_eq!(pool.idle_buffers(), 1);
        {
            let mut buf = pool.take(8);
            assert_eq!(buf.len(), 8);
            // The reused buffer arrives zeroed even after being dirtied.
            buf[0] = 0xFF;
        }
        let again = pool.take(8);
        assert!(again.iter().all(|&b| b == 0));
        drop(again);
        assert_eq!(pool.idle_buffers(), 1);
    }

    #[test]
    fn take_empty_supports_appending() {
        let pool = BufPool::default();
        {
            let mut buf = pool.take_empty();
            buf.extend_from_slice(b"hello");
            assert_eq!(&buf[..], b"hello");
        }
        let reused = pool.take_empty();
        assert!(reused.is_empty());
        assert!(reused.capacity() >= 5, "capacity is retained across reuse");
    }

    #[test]
    fn shelf_is_bounded() {
        let pool = BufPool::new(2);
        let a = pool.take(4);
        let b = pool.take(4);
        let c = pool.take(4);
        drop(a);
        drop(b);
        drop(c);
        assert_eq!(pool.idle_buffers(), 2);
    }

    #[test]
    fn oversized_buffers_are_dropped_not_pooled() {
        let pool = BufPool::new(4);
        {
            let _big = pool.take(MAX_POOLED_BYTES + 1);
        }
        // The over-limit buffer was dropped on return, not parked.
        assert_eq!(pool.idle_buffers(), 0);
        {
            let _ok = pool.take(MAX_POOLED_BYTES / 2);
        }
        assert_eq!(pool.idle_buffers(), 1);
    }

    /// A zero-capacity pool must degrade to plain allocation: every take
    /// works, nothing is ever parked, and drops never panic.
    #[test]
    fn zero_capacity_pool_degrades_to_plain_allocation() {
        let pool = BufPool::new(0);
        for len in [0usize, 1, 64, 4096] {
            let buf = pool.take(len);
            assert_eq!(buf.len(), len);
            assert!(buf.iter().all(|&b| b == 0));
            drop(buf);
            assert_eq!(pool.idle_buffers(), 0, "a 0-capacity shelf parked a buffer");
        }
        let mut appender = pool.take_empty();
        appender.extend_from_slice(b"still works");
        drop(appender);
        assert_eq!(pool.idle_buffers(), 0);
    }

    /// The capacity cap must hold under concurrent put-back: many threads
    /// returning buffers at once can never grow the shelf past `max_buffers`,
    /// and the pool stays usable afterwards.
    #[test]
    fn capacity_cap_holds_under_concurrent_put_back() {
        const CAP: usize = 2;
        const THREADS: usize = 8;
        const ROUNDS: usize = 200;
        let pool = std::sync::Arc::new(BufPool::new(CAP));
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(THREADS));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let pool = std::sync::Arc::clone(&pool);
            let barrier = std::sync::Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    // Hold a few buffers at once so drops race across threads.
                    let a = pool.take(16 + t);
                    let b = pool.take(32 + round % 7);
                    assert!(a.iter().all(|&x| x == 0));
                    drop(b);
                    drop(a);
                    // The cap is a hard invariant at every instant, not just
                    // at the end.
                    assert!(
                        pool.idle_buffers() <= CAP,
                        "shelf grew past its capacity under concurrent put-back"
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(pool.idle_buffers() <= CAP);
        // Still functional: reuse comes off the shelf, zeroed.
        let buf = pool.take(8);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn owned_buffers_return_to_the_pool_and_outlive_borrows() {
        let pool = std::sync::Arc::new(BufPool::new(4));
        let buf = pool.take_owned(16);
        assert_eq!(buf.len(), 16);
        assert!(buf.iter().all(|&b| b == 0));
        // The owned guard keeps the pool alive on its own.
        let mut appender = pool.take_empty_owned();
        appender.extend_from_slice(b"abc");
        drop(pool);
        drop(buf);
        drop(appender);
    }

    #[test]
    fn owned_buffers_are_reused_zeroed() {
        let pool = std::sync::Arc::new(BufPool::new(4));
        {
            let mut buf = pool.take_owned(8);
            buf[0] = 0xAA;
        }
        assert_eq!(pool.idle_buffers(), 1);
        let again = pool.take_owned(8);
        assert!(again.iter().all(|&b| b == 0));
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = std::sync::Arc::new(BufPool::default());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pool = std::sync::Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for len in [1usize, 100, 10_000] {
                    let buf = pool.take(len);
                    assert_eq!(buf.len(), len);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
