//! Device authentication tokens.
//!
//! Server Routines 1 and 2 both "authenticate device" before serving parameters or
//! accepting a checkin. The prototype in the paper relies on HTTPS session
//! authentication; here a device presents a 16-byte token issued at registration
//! time, and the server keeps a registry of issued tokens. Comparison is
//! constant-time to avoid timing side channels on the token value.

use crate::error::ProtoError;
use crate::Result;
use std::collections::HashMap;

/// Length of an authentication token in bytes.
pub const TOKEN_LEN: usize = 16;

/// A fixed-length device authentication token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AuthToken([u8; TOKEN_LEN]);

impl AuthToken {
    /// Creates a token from raw bytes.
    pub fn from_bytes(bytes: [u8; TOKEN_LEN]) -> Self {
        AuthToken(bytes)
    }

    /// Creates a token from a slice, validating the length.
    pub fn from_slice(bytes: &[u8]) -> Result<Self> {
        if bytes.len() != TOKEN_LEN {
            return Err(ProtoError::InvalidField {
                field: "auth_token",
                reason: format!("expected {TOKEN_LEN} bytes, got {}", bytes.len()),
            });
        }
        let mut buf = [0u8; TOKEN_LEN];
        buf.copy_from_slice(bytes);
        Ok(AuthToken(buf))
    }

    /// Derives a deterministic token from a device id and a server secret using a
    /// simple SplitMix64-based keyed construction. Deterministic issuance keeps
    /// tests and simulations reproducible; a production deployment would issue
    /// random tokens at registration.
    pub fn derive(device_id: u64, secret: u64) -> Self {
        let mut out = [0u8; TOKEN_LEN];
        let mut state = device_id ^ secret.rotate_left(17) ^ 0x9E37_79B9_7F4A_7C15;
        for chunk in out.chunks_mut(8) {
            state = splitmix64(state);
            chunk.copy_from_slice(&state.to_le_bytes()[..chunk.len()]);
        }
        AuthToken(out)
    }

    /// The raw token bytes.
    pub fn as_bytes(&self) -> &[u8; TOKEN_LEN] {
        &self.0
    }

    /// Constant-time equality check.
    pub fn constant_time_eq(&self, other: &AuthToken) -> bool {
        let mut diff = 0u8;
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Server-side registry of issued tokens.
#[derive(Debug, Clone, Default)]
pub struct TokenRegistry {
    tokens: HashMap<u64, AuthToken>,
}

impl TokenRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        TokenRegistry::default()
    }

    /// Creates a registry that pre-issues derived tokens for device ids
    /// `0..num_devices` using `secret`.
    pub fn with_derived_tokens(num_devices: u64, secret: u64) -> Self {
        let mut registry = TokenRegistry::new();
        for id in 0..num_devices {
            registry.register(id, AuthToken::derive(id, secret));
        }
        registry
    }

    /// Registers (or replaces) the token for a device.
    pub fn register(&mut self, device_id: u64, token: AuthToken) {
        self.tokens.insert(device_id, token);
    }

    /// Removes a device's token, returning whether it existed.
    pub fn revoke(&mut self, device_id: u64) -> bool {
        self.tokens.remove(&device_id).is_some()
    }

    /// Verifies a presented token for a device id.
    pub fn verify(&self, device_id: u64, presented: &AuthToken) -> bool {
        match self.tokens.get(&device_id) {
            Some(expected) => expected.constant_time_eq(presented),
            None => false,
        }
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// `true` when no tokens are registered.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_slice_validates_length() {
        assert!(AuthToken::from_slice(&[0u8; 16]).is_ok());
        assert!(AuthToken::from_slice(&[0u8; 15]).is_err());
        assert!(AuthToken::from_slice(&[0u8; 17]).is_err());
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let a = AuthToken::derive(1, 42);
        let b = AuthToken::derive(1, 42);
        let c = AuthToken::derive(2, 42);
        let d = AuthToken::derive(1, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert!(a.constant_time_eq(&b));
        assert!(!a.constant_time_eq(&c));
    }

    #[test]
    fn registry_verification() {
        let mut reg = TokenRegistry::new();
        assert!(reg.is_empty());
        let token = AuthToken::derive(7, 99);
        reg.register(7, token);
        assert_eq!(reg.len(), 1);
        assert!(reg.verify(7, &token));
        assert!(!reg.verify(7, &AuthToken::derive(7, 100)));
        assert!(!reg.verify(8, &token));
        assert!(reg.revoke(7));
        assert!(!reg.revoke(7));
        assert!(!reg.verify(7, &token));
    }

    #[test]
    fn derived_registry_covers_all_devices() {
        let reg = TokenRegistry::with_derived_tokens(10, 1234);
        assert_eq!(reg.len(), 10);
        for id in 0..10 {
            assert!(reg.verify(id, &AuthToken::derive(id, 1234)));
            assert!(!reg.verify(id, &AuthToken::derive(id, 4321)));
        }
        assert!(!reg.verify(10, &AuthToken::derive(10, 1234)));
    }

    #[test]
    fn round_trip_bytes() {
        let token = AuthToken::derive(3, 5);
        let rebuilt = AuthToken::from_slice(token.as_bytes()).unwrap();
        assert_eq!(token, rebuilt);
        let rebuilt2 = AuthToken::from_bytes(*token.as_bytes());
        assert_eq!(token, rebuilt2);
    }
}
