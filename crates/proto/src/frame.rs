//! Length-prefixed framing over arbitrary byte streams.
//!
//! Each frame is `[len: u32 little-endian][payload: len bytes]` where the payload
//! is an encoded [`crate::Message`]. The reader enforces a maximum frame size so a
//! corrupt or hostile peer cannot force an unbounded allocation.

use crate::codec::{decode, encode, encode_into};
use crate::error::ProtoError;
use crate::message::Message;
use crate::pool::BufPool;
use crate::Result;
use std::io::{Read, Write};

/// Default maximum frame size: large enough for a 1M-parameter gradient
/// (8 MiB of floats) plus headers.
pub const DEFAULT_MAX_FRAME: usize = 16 * 1024 * 1024;

/// Writes one framed message to `writer`.
pub fn write_message<W: Write>(writer: &mut W, message: &Message) -> Result<()> {
    let payload = encode(message);
    let len = payload.len() as u32;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(&payload)?;
    writer.flush()?;
    Ok(())
}

/// Writes one framed message, encoding into a pooled buffer instead of
/// allocating a fresh one per message.
pub fn write_message_pooled<W: Write>(
    writer: &mut W,
    message: &Message,
    pool: &BufPool,
) -> Result<()> {
    let mut payload = pool.take_empty();
    encode_into(message, &mut *payload);
    let len = payload.len() as u32;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(&payload)?;
    writer.flush()?;
    Ok(())
}

/// Reads one framed message, filling a pooled buffer instead of allocating a
/// payload-sized `Vec` per message. Enforces `max_frame` bytes.
pub fn read_message_pooled<R: Read>(
    reader: &mut R,
    pool: &BufPool,
    max_frame: usize,
) -> Result<Message> {
    let mut len_buf = [0u8; 4];
    reader.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(ProtoError::FrameTooLarge {
            declared: len,
            max: max_frame,
        });
    }
    let mut payload = pool.take(len);
    reader.read_exact(&mut payload)?;
    decode(&payload)
}

/// Reads one framed message from `reader`, enforcing `max_frame` bytes.
pub fn read_message_with_limit<R: Read>(reader: &mut R, max_frame: usize) -> Result<Message> {
    let mut len_buf = [0u8; 4];
    reader.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(ProtoError::FrameTooLarge {
            declared: len,
            max: max_frame,
        });
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    decode(&payload)
}

/// Reads one framed message with the default size limit.
pub fn read_message<R: Read>(reader: &mut R) -> Result<Message> {
    read_message_with_limit(reader, DEFAULT_MAX_FRAME)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthToken;
    use crate::message::{CheckinAck, CheckoutRequest, CheckoutResponse};
    use std::io::Cursor;

    #[test]
    fn write_then_read_round_trip() {
        let messages = vec![
            Message::CheckoutRequest(CheckoutRequest {
                version: 1,
                device_id: 3,
                token: AuthToken::derive(3, 9),
            }),
            Message::CheckoutResponse(CheckoutResponse {
                iteration: 10,
                params: vec![1.0; 500],
                stopped: false,
                round: None,
            }),
            Message::CheckinAck(CheckinAck {
                accepted: true,
                iteration: 11,
                stopped: true,
                deduped: false,
            }),
        ];
        let mut buf = Vec::new();
        for m in &messages {
            write_message(&mut buf, m).unwrap();
        }
        let mut cursor = Cursor::new(buf);
        for m in &messages {
            let read = read_message(&mut cursor).unwrap();
            assert_eq!(&read, m);
        }
        // Stream exhausted: the next read reports an I/O error.
        assert!(matches!(read_message(&mut cursor), Err(ProtoError::Io(_))));
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = Cursor::new(buf);
        match read_message_with_limit(&mut cursor, 1024) {
            Err(ProtoError::FrameTooLarge { declared, max }) => {
                assert_eq!(declared, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_payload_is_io_error() {
        let msg = Message::CheckinAck(CheckinAck {
            accepted: true,
            iteration: 2,
            stopped: false,
            deduped: false,
        });
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        buf.truncate(buf.len() - 1);
        let mut cursor = Cursor::new(buf);
        assert!(matches!(read_message(&mut cursor), Err(ProtoError::Io(_))));
    }

    #[test]
    fn corrupt_payload_is_decode_error() {
        let msg = Message::CheckinAck(CheckinAck {
            accepted: true,
            iteration: 2,
            stopped: false,
            deduped: false,
        });
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        // Corrupt the message tag inside the frame.
        buf[4] = 0xEE;
        let mut cursor = Cursor::new(buf);
        assert!(matches!(
            read_message(&mut cursor),
            Err(ProtoError::UnknownMessageTag(0xEE))
        ));
    }
}
