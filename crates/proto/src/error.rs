//! Error type for protocol encoding, decoding, and framing.

use std::fmt;

/// Errors produced while encoding, decoding, or framing protocol messages.
#[derive(Debug)]
pub enum ProtoError {
    /// The buffer ended before a complete value could be decoded.
    Truncated {
        /// What was being decoded.
        context: &'static str,
    },
    /// An unknown message tag was encountered.
    UnknownMessageTag(u8),
    /// A declared length exceeded the configured maximum.
    FrameTooLarge {
        /// Declared frame length.
        declared: usize,
        /// Maximum allowed length.
        max: usize,
    },
    /// A field contained an invalid value (wrong version, bad token length, …).
    InvalidField {
        /// Field name.
        field: &'static str,
        /// Description of the problem.
        reason: String,
    },
    /// An underlying I/O error while reading or writing a frame.
    Io(std::io::Error),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated { context } => {
                write!(f, "truncated buffer while decoding {context}")
            }
            ProtoError::UnknownMessageTag(tag) => write!(f, "unknown message tag {tag:#04x}"),
            ProtoError::FrameTooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds maximum {max}")
            }
            ProtoError::InvalidField { field, reason } => {
                write!(f, "invalid field `{field}`: {reason}")
            }
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ProtoError::Truncated {
            context: "gradient"
        }
        .to_string()
        .contains("gradient"));
        assert!(ProtoError::UnknownMessageTag(0xFF)
            .to_string()
            .contains("0xff"));
        assert!(ProtoError::FrameTooLarge {
            declared: 100,
            max: 10
        }
        .to_string()
        .contains("100"));
        assert!(ProtoError::InvalidField {
            field: "version",
            reason: "too old".into()
        }
        .to_string()
        .contains("version"));
        let io: ProtoError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
        assert!(std::error::Error::source(&io).is_some());
    }
}
