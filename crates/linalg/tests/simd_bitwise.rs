//! `simd_matches_scalar_bitwise`: every vectorized kernel body must return
//! byte-for-byte what the scalar reference returns, on adversarial inputs.
//!
//! Inputs are raw `u64` bit patterns reinterpreted as `f64` (magnitudes from
//! subnormal to huge), with IEEE-754 edge cases spliced in: ±0.0, the
//! smallest subnormals, and quiet NaNs carrying a recognizable payload.
//!
//! Two comparison modes, because of one genuine platform subtlety: an
//! *invalid* operation (`inf·0`, `inf−inf`) manufactures the x86 default
//! QNaN (`0xFFF8…`), and when two NaNs with *different* payloads meet in an
//! add, the surviving payload follows hardware operand order — which Rust
//! deliberately leaves unspecified (it can differ between two scalar
//! compilations, let alone scalar vs SIMD). So:
//!
//! * **No infinities in the inputs** (the common case here): every NaN in
//!   flight carries the single per-case payload, propagation is fully
//!   determined, and the test demands *exact* bit equality — NaN payloads
//!   included.
//! * **Infinities allowed**: outputs must be bit-equal or both-NaN (any
//!   payload), since default QNaNs can now mix with the case payload.
//!
//! Alignment coverage: each case slices off a sampled 0..4-element prefix,
//! so the SIMD loops run at every 8-byte phase relative to 32-byte vector
//! alignment (`loadu`/`storeu` must not care).

#![cfg(target_arch = "x86_64")]

use crowd_linalg::kernels::{scalar, simd};
use proptest::prelude::*;

/// Special values spliced into the bit-pattern soup.
const SPECIALS: &[f64] = &[
    0.0,
    -0.0,
    f64::MIN_POSITIVE, // smallest normal
    -f64::MIN_POSITIVE,
    5e-324,   // smallest subnormal
    -5e-324,  // and its negation
    1.5e-310, // mid-range subnormal
    f64::INFINITY,
    f64::NEG_INFINITY,
    1.0,
    -1.0,
];

/// The one quiet-NaN payload a case is allowed to use (see module docs).
fn case_nan(which: u64) -> f64 {
    if which == 0 {
        f64::NAN
    } else {
        f64::from_bits(0x7ff8_0000_dead_beef)
    }
}

/// Collapses every NaN to the case payload. In strict mode, also strips
/// infinities *and* clamps magnitudes below 1e100: products and sums of such
/// values cannot overflow to ±inf, so no invalid operation can manufacture a
/// default QNaN mid-reduction and the single case payload survives exactly.
fn canon(v: f64, nan: f64, allow_inf: bool) -> f64 {
    if v.is_nan() {
        nan
    } else if !allow_inf && v.abs() > 1e100 {
        // Rescale into the safe band, keeping sign and mantissa texture.
        if v.is_infinite() {
            if v > 0.0 {
                1e100
            } else {
                -1e100
            }
        } else {
            v * 1e-210
        }
    } else {
        v
    }
}

/// Builds a value vector from raw bits, splicing in specials and NaNs.
fn build(
    bits: &[u64],
    picks: &[(usize, usize)],
    nans: &[usize],
    nan: f64,
    allow_inf: bool,
) -> Vec<f64> {
    let mut v: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
    if v.is_empty() {
        return v;
    }
    let n = v.len();
    for &(pos, which) in picks {
        v[pos % n] = SPECIALS[which % SPECIALS.len()];
    }
    for &pos in nans {
        v[pos % n] = f64::NAN;
    }
    for x in &mut v {
        *x = canon(*x, nan, allow_inf);
    }
    v
}

/// Bit equality, relaxed to NaN-equivalence when `strict` is off.
fn feq(a: f64, b: f64, strict: bool) -> bool {
    a.to_bits() == b.to_bits() || (!strict && a.is_nan() && b.is_nan())
}

fn assert_scalar_eq(a: f64, b: f64, strict: bool, what: &str) {
    assert!(
        feq(a, b, strict),
        "{what}: {a:?} ({:#x}) vs {b:?} ({:#x})",
        a.to_bits(),
        b.to_bits()
    );
}

fn assert_slices_eq(a: &[f64], b: &[f64], strict: bool, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            feq(*x, *y, strict),
            "{what}: coordinate {i} differs: {x:?} vs {y:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn simd_matches_scalar_bitwise(
        bits_a in prop::collection::vec(any::<u64>(), 0..259),
        bits_b in prop::collection::vec(any::<u64>(), 0..259),
        picks_a in prop::collection::vec((0usize..1024, 0usize..1024), 0..6),
        picks_b in prop::collection::vec((0usize..1024, 0usize..1024), 0..6),
        nans_a in prop::collection::vec(0usize..1024, 0..3),
        nans_b in prop::collection::vec(0usize..1024, 0..3),
        nan_which in 0u64..2,
        allow_inf in any::<bool>(),
        offset in 0usize..4,
        alpha_bits in any::<u64>(),
    ) {
        let nan = case_nan(nan_which);
        let a_full = build(&bits_a, &picks_a, &nans_a, nan, allow_inf);
        let b_full = build(&bits_b, &picks_b, &nans_b, nan, allow_inf);
        // Trim to a common length and a sampled alignment phase.
        let n = a_full.len().min(b_full.len());
        let start = offset.min(n);
        let a = &a_full[start..n];
        let b = &b_full[start..n];
        let alpha = canon(f64::from_bits(alpha_bits), nan, allow_inf);
        let strict = !allow_inf;

        // Reductions: exact combine-order reproduction.
        assert_scalar_eq(simd::dot_avx2(a, b), scalar::dot(a, b), strict, "dot_avx2");
        assert_scalar_eq(simd::dot_sse2(a, b), scalar::dot(a, b), strict, "dot_sse2");
        assert_scalar_eq(simd::sum_sq_avx2(a), scalar::sum_sq(a), strict, "sum_sq_avx2");
        assert_scalar_eq(simd::sum_sq_sse2(a), scalar::sum_sq(a), strict, "sum_sq_sse2");

        // Element-wise kernels: per-lane purity ⇒ bitwise identity.
        let mut y_ref = a.to_vec();
        let mut y_avx = a.to_vec();
        let mut y_sse = a.to_vec();
        scalar::axpy(alpha, b, &mut y_ref);
        simd::axpy_avx2(alpha, b, &mut y_avx);
        simd::axpy_sse2(alpha, b, &mut y_sse);
        assert_slices_eq(&y_avx, &y_ref, strict, "axpy_avx2");
        assert_slices_eq(&y_sse, &y_ref, strict, "axpy_sse2");

        let mut y_ref = a.to_vec();
        let mut y_avx = a.to_vec();
        let mut y_sse = a.to_vec();
        scalar::add_assign(&mut y_ref, b);
        simd::add_assign_avx2(&mut y_avx, b);
        simd::add_assign_sse2(&mut y_sse, b);
        assert_slices_eq(&y_avx, &y_ref, strict, "add_assign_avx2");
        assert_slices_eq(&y_sse, &y_ref, strict, "add_assign_sse2");

        let mut y_ref = a.to_vec();
        let mut y_avx = a.to_vec();
        let mut y_sse = a.to_vec();
        scalar::scale(alpha, &mut y_ref);
        simd::scale_avx2(alpha, &mut y_avx);
        simd::scale_sse2(alpha, &mut y_sse);
        assert_slices_eq(&y_avx, &y_ref, strict, "scale_avx2");
        assert_slices_eq(&y_sse, &y_ref, strict, "scale_sse2");
    }

    #[test]
    fn scatter_add_matches_scalar_bitwise(
        dim in 1usize..200,
        entries in prop::collection::vec((0usize..1024, any::<u64>()), 0..64),
        base_bits in prop::collection::vec(any::<u64>(), 1..200),
        nan_which in 0u64..2,
    ) {
        // Each slot receives at most one add (indices deduped like a
        // SparseVector), so no two NaN payloads ever meet in one add and the
        // comparison can stay strict even with infinities present.
        let nan = case_nan(nan_which);
        let mut idx: Vec<u32> = entries.iter().map(|&(i, _)| (i % dim) as u32).collect();
        idx.sort_unstable();
        idx.dedup();
        let vals: Vec<f64> = entries
            .iter()
            .take(idx.len())
            .map(|&(_, b)| canon(f64::from_bits(b), nan, true))
            .collect();
        let idx = &idx[..vals.len()];
        let base: Vec<f64> = (0..dim)
            .map(|i| canon(f64::from_bits(base_bits[i % base_bits.len()]), nan, true))
            .collect();
        let mut out_ref = base.clone();
        let mut out_simd = base;
        scalar::scatter_add(idx, &vals, &mut out_ref);
        prop_assert!(simd::scatter_add(idx, &vals, &mut out_simd), "indices were in range");
        assert_slices_eq(&out_simd, &out_ref, true, "scatter_add");
        // Out-of-range input is refused untouched.
        let mut short = vec![7.0];
        prop_assert!(!simd::scatter_add(&[1], &[3.0], &mut short));
        prop_assert_eq!(short[0], 7.0);
    }
}

/// The dispatcher must agree with the scalar reference no matter which level
/// detection picked (AVX2, SSE2, or `CROWD_SIMD=0` scalar).
#[test]
fn dispatched_kernels_match_scalar_bitwise() {
    let a: Vec<f64> = (0..1027).map(|i| ((i as f64) * 0.37).sin() * 1e3).collect();
    let b: Vec<f64> = (0..1027)
        .map(|i| ((i as f64) * 0.19).cos() * 1e-3)
        .collect();
    assert_eq!(
        crowd_linalg::kernels::dot(&a, &b).to_bits(),
        scalar::dot(&a, &b).to_bits()
    );
    assert_eq!(
        crowd_linalg::kernels::sum_sq(&a).to_bits(),
        scalar::sum_sq(&a).to_bits()
    );
    let mut y1 = b.clone();
    let mut y2 = b.clone();
    crowd_linalg::kernels::axpy(0.37, &a, &mut y1);
    scalar::axpy(0.37, &a, &mut y2);
    assert_slices_eq(&y1, &y2, true, "axpy dispatch");
}
