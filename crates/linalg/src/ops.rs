//! Free-standing numerical operations used across the learning stack.
//!
//! The projection [`project_l2_ball`] implements `Π_W` from Eq. (3) of the paper;
//! [`softmax`] / [`log_sum_exp`] implement the multiclass-logistic posterior of
//! Table I in a numerically stable way; the normalization helpers implement the
//! `‖x‖₁ ≤ 1` preprocessing the privacy analysis (Appendix A) relies on.

use crate::vector::Vector;

/// Numerically stable log-sum-exp: `log Σ_i exp(x_i)`.
///
/// Returns negative infinity for an empty slice.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NEG_INFINITY;
    }
    let max = xs.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
    if !max.is_finite() {
        return max;
    }
    let sum: f64 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Numerically stable softmax returning a probability vector.
///
/// An empty input yields an empty output.
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let max = xs.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
    let exps: Vec<f64> = xs.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// In-place softmax over a mutable slice.
pub fn softmax_in_place(xs: &mut [f64]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in xs.iter_mut() {
        *x /= sum;
    }
}

/// Index of the largest element; ties resolve to the smallest index.
///
/// Returns `None` for an empty slice.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    if xs.is_empty() {
        return None;
    }
    let mut best = 0usize;
    for (i, v) in xs.iter().enumerate() {
        if *v > xs[best] {
            best = i;
        }
    }
    Some(best)
}

/// Logistic sigmoid `1 / (1 + e^{-x})`, stable for large `|x|`.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Projects `w` onto the L2 ball of radius `radius`: `Π_W(w) = min(1, R/‖w‖)·w`.
///
/// This is the projection used in the server update (Eq. 3). A non-positive radius
/// projects onto the origin.
pub fn project_l2_ball(w: &mut Vector, radius: f64) {
    if radius <= 0.0 {
        w.set_zero();
        return;
    }
    let norm = w.norm_l2();
    if norm > radius {
        w.scale(radius / norm);
    }
}

/// Normalizes `x` to unit L1 norm in place (`‖x‖₁ = 1`); leaves the zero vector
/// untouched.
///
/// The privacy sensitivity analysis of Appendix A assumes `‖x‖₁ ≤ 1`, which this
/// preprocessing step guarantees.
pub fn normalize_l1(x: &mut Vector) {
    let norm = x.norm_l1();
    if norm > 0.0 {
        x.scale(1.0 / norm);
    }
}

/// Normalizes `x` to unit L2 norm in place; leaves the zero vector untouched.
pub fn normalize_l2(x: &mut Vector) {
    let norm = x.norm_l2();
    if norm > 0.0 {
        x.scale(1.0 / norm);
    }
}

/// Clamps every element of `x` into `[lo, hi]` in place.
pub fn clamp(x: &mut Vector, lo: f64, hi: f64) {
    debug_assert!(lo <= hi, "clamp bounds must be ordered");
    x.map_in_place(|v| v.clamp(lo, hi));
}

/// Linear interpolation `a + t (b - a)`.
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + t * (b - a)
}

/// Returns `true` when `a` and `b` differ by at most `tol` (absolute).
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Returns `true` when two slices are element-wise equal within `tol`.
pub fn approx_eq_slice(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| approx_eq(*x, *y, tol))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_matches_naive() {
        let xs = [0.1_f64, 0.2, 0.3];
        let naive = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!(approx_eq(log_sum_exp(&xs), naive, 1e-12));
    }

    #[test]
    fn log_sum_exp_stable_for_large_inputs() {
        let xs = [1000.0, 1000.0];
        let lse = log_sum_exp(&xs);
        assert!(approx_eq(lse, 1000.0 + 2.0_f64.ln(), 1e-9));
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!(approx_eq(p.iter().sum::<f64>(), 1.0, 1e-12));
        assert!(p[2] > p[1] && p[1] > p[0]);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_in_place_matches_softmax() {
        let xs = [0.5, -1.0, 2.0, 0.0];
        let expected = softmax(&xs);
        let mut ys = xs;
        softmax_in_place(&mut ys);
        assert!(approx_eq_slice(&ys, &expected, 1e-12));
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let p = softmax(&[1e4, 0.0]);
        assert!(p[0] > 0.999999);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn argmax_ties_and_empty() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn sigmoid_symmetry_and_saturation() {
        assert!(approx_eq(sigmoid(0.0), 0.5, 1e-12));
        assert!(approx_eq(sigmoid(3.0) + sigmoid(-3.0), 1.0, 1e-12));
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
    }

    #[test]
    fn projection_shrinks_only_outside_ball() {
        let mut w = Vector::from_vec(vec![3.0, 4.0]);
        project_l2_ball(&mut w, 10.0);
        assert_eq!(w.as_slice(), &[3.0, 4.0]);
        project_l2_ball(&mut w, 1.0);
        assert!(approx_eq(w.norm_l2(), 1.0, 1e-12));
        project_l2_ball(&mut w, 0.0);
        assert_eq!(w.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn normalization() {
        let mut x = Vector::from_vec(vec![2.0, -2.0]);
        normalize_l1(&mut x);
        assert!(approx_eq(x.norm_l1(), 1.0, 1e-12));
        let mut y = Vector::from_vec(vec![3.0, 4.0]);
        normalize_l2(&mut y);
        assert!(approx_eq(y.norm_l2(), 1.0, 1e-12));
        let mut z = Vector::zeros(3);
        normalize_l1(&mut z);
        assert_eq!(z.as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn clamp_and_lerp() {
        let mut x = Vector::from_vec(vec![-2.0, 0.5, 3.0]);
        clamp(&mut x, -1.0, 1.0);
        assert_eq!(x.as_slice(), &[-1.0, 0.5, 1.0]);
        assert_eq!(lerp(0.0, 10.0, 0.25), 2.5);
    }

    #[test]
    fn approx_helpers() {
        assert!(approx_eq(1.0, 1.0 + 1e-13, 1e-12));
        assert!(!approx_eq(1.0, 1.1, 1e-3));
        assert!(approx_eq_slice(&[1.0, 2.0], &[1.0, 2.0], 0.0));
        assert!(!approx_eq_slice(&[1.0], &[1.0, 2.0], 1.0));
    }
}
