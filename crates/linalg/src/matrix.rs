//! Row-major dense matrix type and BLAS-2/3 style operations.

use crate::error::LinalgError;
use crate::vector::Vector;
use crate::Result;

/// An owned, dense, row-major `f64` matrix.
///
/// The multiclass models in the workspace store their parameters as a `C × D`
/// matrix (one row of weights per class), so most of the hot operations here are
/// row-oriented: [`Matrix::row`], [`Matrix::row_mut`], [`Matrix::matvec`], and the
/// rank-1 update [`Matrix::add_outer`].
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// Errors if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::invalid(
                "from_row_major",
                format!(
                    "expected {} elements for a {rows}x{cols} matrix, got {}",
                    rows * cols,
                    data.len()
                ),
            ));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of equally sized rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::invalid(
                    "from_rows",
                    format!("row {i} has length {}, expected {cols}", r.len()),
                ));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of stored elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the matrix stores no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor (panics on out-of-range indices, like slice indexing).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        self.data[r * self.cols + c]
    }

    /// Element setter (panics on out-of-range indices).
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        self.data[r * self.cols + c] = value;
    }

    /// Immutable view of row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r` as a slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies row `r` into a new [`Vector`].
    pub fn row_vector(&self, r: usize) -> Vector {
        Vector::from_vec(self.row(r).to_vec())
    }

    /// Copies column `c` into a new [`Vector`].
    pub fn col_vector(&self, c: usize) -> Vector {
        assert!(c < self.cols, "column index out of range");
        Vector::from_vec((0..self.rows).map(|r| self.get(r, c)).collect())
    }

    /// Iterator over row slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks(self.cols.max(1)).take(self.rows)
    }

    /// Matrix-vector product `A·x`.
    pub fn matvec(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                left: (self.rows, self.cols),
                right: (x.len(), 1),
            });
        }
        let xs = x.as_slice();
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(xs.iter()) {
                acc += a * b;
            }
            out.push(acc);
        }
        Ok(Vector::from_vec(out))
    }

    /// Transposed matrix-vector product `Aᵀ·x`.
    pub fn matvec_transpose(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec_transpose",
                left: (self.cols, self.rows),
                right: (x.len(), 1),
            });
        }
        let xs = x.as_slice();
        let mut out = vec![0.0; self.cols];
        for (r, &scale) in xs.iter().enumerate() {
            let row = self.row(r);
            for (o, a) in out.iter_mut().zip(row.iter()) {
                *o += scale * a;
            }
        }
        Ok(Vector::from_vec(out))
    }

    /// Matrix-matrix product `A·B`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, b) in orow.iter_mut().zip(brow.iter()) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// In-place scaling `A *= alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Returns a scaled copy.
    pub fn scaled(&self, alpha: f64) -> Matrix {
        let mut out = self.clone();
        out.scale(alpha);
        out
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "matrix_axpy",
                left: self.shape(),
                right: other.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Rank-1 update `self += alpha * u·vᵀ` where `u` has `rows` elements and `v`
    /// has `cols` elements.
    pub fn add_outer(&mut self, alpha: f64, u: &Vector, v: &Vector) -> Result<()> {
        if u.len() != self.rows || v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "add_outer",
                left: self.shape(),
                right: (u.len(), v.len()),
            });
        }
        for r in 0..self.rows {
            let scale = alpha * u[r];
            if scale == 0.0 {
                continue;
            }
            let row = self.row_mut(r);
            for (o, b) in row.iter_mut().zip(v.as_slice().iter()) {
                *o += scale * b;
            }
        }
        Ok(())
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Entry-wise L1 norm `Σ|a_ij|`.
    pub fn norm_l1(&self) -> f64 {
        self.data.iter().map(|a| a.abs()).sum()
    }

    /// Fills the matrix with zeros without reallocating.
    pub fn set_zero(&mut self) {
        for a in &mut self.data {
            *a = 0.0;
        }
    }

    /// Returns `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }

    /// Flattens the matrix into a [`Vector`] in row-major order.
    pub fn flatten(&self) -> Vector {
        Vector::from_vec(self.data.clone())
    }

    /// Rebuilds a matrix of the given shape from a flattened row-major vector.
    pub fn from_flat(rows: usize, cols: usize, flat: &Vector) -> Result<Self> {
        Matrix::from_row_major(rows, cols, flat.as_slice().to_vec())
    }

    /// Applies `f` to every entry in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(f64) -> f64) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Column means as a [`Vector`] of length `cols`.
    pub fn column_means(&self) -> Vector {
        let mut means = vec![0.0; self.cols];
        if self.rows == 0 {
            return Vector::from_vec(means);
        }
        for r in 0..self.rows {
            for (m, a) in means.iter_mut().zip(self.row(r).iter()) {
                *m += a;
            }
        }
        let n = self.rows as f64;
        for m in &mut means {
            *m /= n;
        }
        Vector::from_vec(means)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert!(Matrix::from_row_major(2, 2, vec![1.0]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn identity_matvec() {
        let eye = Matrix::identity(3);
        let x = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        assert_eq!(eye.matvec(&x).unwrap(), x);
    }

    #[test]
    fn matvec_and_transpose() {
        let m = sample();
        let x = Vector::from_vec(vec![1.0, 0.0, -1.0]);
        let y = m.matvec(&x).unwrap();
        assert_eq!(y.as_slice(), &[-2.0, -2.0]);
        let z = m
            .matvec_transpose(&Vector::from_vec(vec![1.0, 1.0]))
            .unwrap();
        assert_eq!(z.as_slice(), &[5.0, 7.0, 9.0]);
        assert!(m.matvec(&Vector::zeros(2)).is_err());
        assert!(m.matvec_transpose(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn matmul_matches_manual() {
        let a = sample();
        let b = a.transpose();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.get(0, 0), 14.0);
        assert_eq!(c.get(0, 1), 32.0);
        assert_eq!(c.get(1, 1), 77.0);
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn outer_update() {
        let mut m = Matrix::zeros(2, 3);
        let u = Vector::from_vec(vec![1.0, 2.0]);
        let v = Vector::from_vec(vec![1.0, 0.0, -1.0]);
        m.add_outer(2.0, &u, &v).unwrap();
        assert_eq!(m.row(0), &[2.0, 0.0, -2.0]);
        assert_eq!(m.row(1), &[4.0, 0.0, -4.0]);
        assert!(m.add_outer(1.0, &v, &u).is_err());
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 1.0);
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(0, 1), 2.0);
        a.scale(0.5);
        assert_eq!(a.get(0, 0), 1.5);
        assert!(a.axpy(1.0, &Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn norms_and_flatten() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0]]).unwrap();
        assert_eq!(m.norm_frobenius(), 5.0);
        assert_eq!(m.norm_l1(), 7.0);
        let flat = m.flatten();
        assert_eq!(flat.len(), 4);
        let rebuilt = Matrix::from_flat(2, 2, &flat).unwrap();
        assert_eq!(rebuilt, m);
    }

    #[test]
    fn column_means() {
        let m = sample();
        let means = m.column_means();
        assert_eq!(means.as_slice(), &[2.5, 3.5, 4.5]);
        assert_eq!(Matrix::zeros(0, 2).column_means().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn row_and_col_vectors() {
        let m = sample();
        assert_eq!(m.row_vector(1).as_slice(), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col_vector(2).as_slice(), &[3.0, 6.0]);
        let rows: Vec<&[f64]> = m.row_iter().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn map_and_finiteness() {
        let mut m = Matrix::filled(2, 2, -1.0);
        m.map_in_place(f64::abs);
        assert_eq!(m.get(1, 1), 1.0);
        assert!(m.is_finite());
        m.set(0, 0, f64::INFINITY);
        assert!(!m.is_finite());
        m.set_zero();
        assert!(m.is_finite());
    }
}
