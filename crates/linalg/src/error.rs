//! Error type shared by all fallible linear-algebra operations.

use std::fmt;

/// Errors produced by dimension mismatches or invalid numerical arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    DimensionMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand, e.g. `(rows, cols)` or `(len, 1)`.
        left: (usize, usize),
        /// Shape of the right/second operand.
        right: (usize, usize),
    },
    /// An argument was outside its valid domain (e.g. a non-power-of-two FFT length).
    InvalidArgument {
        /// Operation that rejected the argument.
        op: &'static str,
        /// Description of the violated requirement.
        reason: String,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NotConverged {
        /// Operation that did not converge.
        op: &'static str,
        /// Number of iterations attempted.
        iterations: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, left, right } => write!(
                f,
                "dimension mismatch in `{op}`: left operand is {}x{}, right operand is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::InvalidArgument { op, reason } => {
                write!(f, "invalid argument to `{op}`: {reason}")
            }
            LinalgError::NotConverged { op, iterations } => {
                write!(f, "`{op}` did not converge after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

impl LinalgError {
    /// Helper for constructing an [`LinalgError::InvalidArgument`].
    pub fn invalid(op: &'static str, reason: impl Into<String>) -> Self {
        LinalgError::InvalidArgument {
            op,
            reason: reason.into(),
        }
    }

    /// Helper for constructing a [`LinalgError::DimensionMismatch`] from vector lengths.
    pub fn vector_mismatch(op: &'static str, left: usize, right: usize) -> Self {
        LinalgError::DimensionMismatch {
            op,
            left: (left, 1),
            right: (right, 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let err = LinalgError::DimensionMismatch {
            op: "matvec",
            left: (3, 4),
            right: (5, 1),
        };
        let msg = err.to_string();
        assert!(msg.contains("matvec"));
        assert!(msg.contains("3x4"));
        assert!(msg.contains("5x1"));
    }

    #[test]
    fn display_invalid_argument() {
        let err = LinalgError::invalid("fft", "length must be a power of two");
        assert!(err.to_string().contains("power of two"));
    }

    #[test]
    fn display_not_converged() {
        let err = LinalgError::NotConverged {
            op: "power_iteration",
            iterations: 100,
        };
        assert!(err.to_string().contains("100"));
    }

    #[test]
    fn vector_mismatch_helper_shapes() {
        let err = LinalgError::vector_mismatch("dot", 2, 7);
        match err {
            LinalgError::DimensionMismatch { left, right, .. } => {
                assert_eq!(left, (2, 1));
                assert_eq!(right, (7, 1));
            }
            _ => panic!("expected dimension mismatch"),
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&LinalgError::invalid("x", "y"));
    }
}
