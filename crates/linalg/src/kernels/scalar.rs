//! Portable scalar kernel bodies — the reference the SIMD paths must match.
//!
//! These are the original four-lane unrolls, kept byte-for-byte as the
//! dispatch fallback for non-x86_64 targets and for `CROWD_SIMD=0`. They are
//! also exported for the `simd_matches_scalar_bitwise` proptests and the
//! scalar-vs-SIMD benches, which compare against them directly regardless of
//! the process-wide dispatch level.

/// Dot product `a · b` over equal-length slices, four-lane unrolled.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        s0 += xa[0] * xb[0];
        s1 += xa[1] * xb[1];
        s2 += xa[2] * xb[2];
        s3 += xa[3] * xb[3];
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    ((s0 + s1) + (s2 + s3)) + tail
}

/// Sum of squares `Σ aᵢ²`, four-lane unrolled.
#[inline]
pub fn sum_sq(a: &[f64]) -> f64 {
    let mut chunks = a.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for c in &mut chunks {
        s0 += c[0] * c[0];
        s1 += c[1] * c[1];
        s2 += c[2] * c[2];
        s3 += c[3] * c[3];
    }
    let mut tail = 0.0;
    for x in chunks.remainder() {
        tail += x * x;
    }
    ((s0 + s1) + (s2 + s3)) + tail
}

/// Sum of absolute values `Σ |aᵢ|`, four-lane unrolled.
#[inline]
pub fn sum_abs(a: &[f64]) -> f64 {
    let mut chunks = a.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for c in &mut chunks {
        s0 += c[0].abs();
        s1 += c[1].abs();
        s2 += c[2].abs();
        s3 += c[3].abs();
    }
    let mut tail = 0.0;
    for x in chunks.remainder() {
        tail += x.abs();
    }
    ((s0 + s1) + (s2 + s3)) + tail
}

/// In-place `y += alpha * x`, unrolled. Bitwise identical to the naive loop.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    let mut cy = y.chunks_exact_mut(4);
    let mut cx = x.chunks_exact(4);
    for (ya, xa) in (&mut cy).zip(&mut cx) {
        ya[0] += alpha * xa[0];
        ya[1] += alpha * xa[1];
        ya[2] += alpha * xa[2];
        ya[3] += alpha * xa[3];
    }
    for (yv, xv) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yv += alpha * xv;
    }
}

/// In-place `y += x`, unrolled. Bitwise identical to the naive loop.
#[inline]
pub fn add_assign(y: &mut [f64], x: &[f64]) {
    let mut cy = y.chunks_exact_mut(4);
    let mut cx = x.chunks_exact(4);
    for (ya, xa) in (&mut cy).zip(&mut cx) {
        ya[0] += xa[0];
        ya[1] += xa[1];
        ya[2] += xa[2];
        ya[3] += xa[3];
    }
    for (yv, xv) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yv += xv;
    }
}

/// In-place `y *= alpha`, unrolled. Bitwise identical to the naive loop.
#[inline]
pub fn scale(alpha: f64, y: &mut [f64]) {
    let mut cy = y.chunks_exact_mut(4);
    for ya in &mut cy {
        ya[0] *= alpha;
        ya[1] *= alpha;
        ya[2] *= alpha;
        ya[3] *= alpha;
    }
    for yv in cy.into_remainder() {
        *yv *= alpha;
    }
}

/// Bounds-checked scatter-add `out[indices[k]] += values[k]` in index order.
#[inline]
pub fn scatter_add(indices: &[u32], values: &[f64], out: &mut [f64]) {
    for (&i, &v) in indices.iter().zip(values) {
        out[i as usize] += v;
    }
}
