//! Unrolled BLAS-1 kernels with a *fixed* summation order.
//!
//! Every reduction here accumulates into four independent lanes over
//! stride-4 chunks and combines them as `((s0 + s1) + (s2 + s3)) + tail`.
//! The order never depends on alignment, thread count, or call site, so the
//! results are bitwise reproducible run to run — which is what the durable
//! store's recovery proptests and the sharded-aggregation determinism tests
//! rely on. The four lanes break the sequential add dependency chain, letting
//! the CPU retire ~4 FLOPs per cycle instead of stalling on one accumulator.
//!
//! The element-wise kernels (`axpy`, `add_assign`, `scale`) are bitwise
//! identical to their naive loops (each element is independent); only the
//! reductions (`dot`, `sum_sq`) differ from a left-to-right fold — by design,
//! and identically on every run.
//!
//! # SIMD dispatch
//!
//! On x86_64 the hot kernels route through explicit SSE2/AVX2 bodies in
//! [`simd`] chosen once per process by runtime feature detection. The vector
//! lanes of a 4-wide accumulator *are* the four scalar lanes `s0..s3`, and
//! the horizontal combine extracts them and reapplies the exact
//! `((s0 + s1) + (s2 + s3)) + tail` order — no FMA, no reassociation — so
//! every SIMD kernel is bitwise identical to its [`scalar`] twin (proptested
//! in `tests/simd_bitwise.rs`, including ±0.0, subnormals, and NaN
//! payloads). Setting `CROWD_SIMD=0` forces the scalar bodies; any other
//! value (or unset) uses the best detected level. Non-x86_64 targets always
//! take the scalar path.

use std::sync::OnceLock;

pub mod scalar;
#[cfg(target_arch = "x86_64")]
pub mod simd;

/// Which kernel bodies the process dispatches to. Decided once, at first use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable four-lane scalar unrolls (always available).
    Scalar,
    /// 128-bit SSE2 (x86_64 baseline): two 2-lane accumulators.
    #[cfg(target_arch = "x86_64")]
    Sse2,
    /// 256-bit AVX2: one 4-lane accumulator, detected at runtime.
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

static LEVEL: OnceLock<SimdLevel> = OnceLock::new();

fn detect() -> SimdLevel {
    if std::env::var_os("CROWD_SIMD").is_some_and(|v| v == "0") {
        return SimdLevel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            // SSE2 is part of the x86_64 baseline — always present.
            SimdLevel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    SimdLevel::Scalar
}

/// The dispatch level in effect for this process (cached after first call).
#[inline]
pub fn simd_level() -> SimdLevel {
    *LEVEL.get_or_init(detect)
}

/// Dot product `a · b` over equal-length slices, four-lane unrolled.
///
/// Callers are responsible for the length check; mismatched tails are ignored
/// in release builds.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "kernel dot length mismatch");
    #[cfg(target_arch = "x86_64")]
    match simd_level() {
        SimdLevel::Avx2 => return simd::dot_avx2(a, b),
        SimdLevel::Sse2 => return simd::dot_sse2(a, b),
        SimdLevel::Scalar => {}
    }
    scalar::dot(a, b)
}

/// Sum of squares `Σ aᵢ²`, four-lane unrolled (the L2 norm is its sqrt).
#[inline]
pub fn sum_sq(a: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    match simd_level() {
        SimdLevel::Avx2 => return simd::sum_sq_avx2(a),
        SimdLevel::Sse2 => return simd::sum_sq_sse2(a),
        SimdLevel::Scalar => {}
    }
    scalar::sum_sq(a)
}

/// Sum of absolute values `Σ |aᵢ|`, four-lane unrolled.
#[inline]
pub fn sum_abs(a: &[f64]) -> f64 {
    scalar::sum_abs(a)
}

/// In-place `y += alpha * x`, unrolled. Bitwise identical to the naive loop.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "kernel axpy length mismatch");
    #[cfg(target_arch = "x86_64")]
    match simd_level() {
        SimdLevel::Avx2 => return simd::axpy_avx2(alpha, x, y),
        SimdLevel::Sse2 => return simd::axpy_sse2(alpha, x, y),
        SimdLevel::Scalar => {}
    }
    scalar::axpy(alpha, x, y)
}

/// In-place `y += x`, unrolled. Bitwise identical to the naive loop.
#[inline]
pub fn add_assign(y: &mut [f64], x: &[f64]) {
    debug_assert_eq!(x.len(), y.len(), "kernel add length mismatch");
    #[cfg(target_arch = "x86_64")]
    match simd_level() {
        SimdLevel::Avx2 => return simd::add_assign_avx2(y, x),
        SimdLevel::Sse2 => return simd::add_assign_sse2(y, x),
        SimdLevel::Scalar => {}
    }
    scalar::add_assign(y, x)
}

/// In-place `y *= alpha`, unrolled. Bitwise identical to the naive loop.
#[inline]
pub fn scale(alpha: f64, y: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    match simd_level() {
        SimdLevel::Avx2 => return simd::scale_avx2(alpha, y),
        SimdLevel::Sse2 => return simd::scale_sse2(alpha, y),
        SimdLevel::Scalar => {}
    }
    scalar::scale(alpha, y)
}

/// Sparse scatter-add `out[indices[k]] += values[k]` in index order.
///
/// Bitwise identical to the naive loop in every mode: the adds happen one
/// element at a time, in index order. Indices are bounds-checked against
/// `out.len()` up front (`SparseVector` already guarantees this invariant);
/// with SIMD dispatch active the body is then a 4-way unrolled unchecked
/// loop, which matters because a scatter defeats the autovectorizer's
/// bounds-check elimination. Out-of-range entries take the checked scalar
/// loop, which panics in debug builds exactly like the old inline loop did.
#[inline]
pub fn scatter_add(indices: &[u32], values: &[f64], out: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if simd_level() != SimdLevel::Scalar && simd::scatter_add(indices, values, out) {
        return;
    }
    scalar::scatter_add(indices, values, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..n).map(f).collect()
    }

    #[test]
    fn dot_matches_reference_within_rounding() {
        for n in [0usize, 1, 3, 4, 7, 8, 100, 1001] {
            let a = seq(n, |i| (i as f64 * 0.37).sin());
            let b = seq(n, |i| (i as f64 * 0.11).cos());
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let got = dot(&a, &b);
            assert!(
                (got - naive).abs() <= 1e-12 * naive.abs().max(1.0),
                "n={n}: {got} vs {naive}"
            );
        }
    }

    #[test]
    fn dot_is_deterministic_across_calls() {
        let a = seq(1001, |i| (i as f64 * 0.73).sin() * 1e3);
        let b = seq(1001, |i| (i as f64 * 0.19).cos() * 1e-3);
        let first = dot(&a, &b);
        for _ in 0..10 {
            assert_eq!(first.to_bits(), dot(&a, &b).to_bits());
        }
    }

    #[test]
    fn sums_match_reference() {
        for n in [0usize, 2, 4, 9, 257] {
            let a = seq(n, |i| i as f64 - 3.5);
            let sq: f64 = a.iter().map(|x| x * x).sum();
            let ab: f64 = a.iter().map(|x| x.abs()).sum();
            assert!((sum_sq(&a) - sq).abs() <= 1e-12 * sq.max(1.0));
            assert!((sum_abs(&a) - ab).abs() <= 1e-12 * ab.max(1.0));
        }
    }

    #[test]
    fn axpy_and_add_are_bitwise_naive() {
        for n in [0usize, 1, 5, 64, 103] {
            let x = seq(n, |i| (i as f64 * 0.3).sin());
            let mut y = seq(n, |i| (i as f64 * 0.7).cos());
            let mut naive = y.clone();
            axpy(0.37, &x, &mut y);
            for (nv, xv) in naive.iter_mut().zip(&x) {
                *nv += 0.37 * xv;
            }
            assert_eq!(y, naive, "axpy n={n}");
            add_assign(&mut y, &x);
            for (nv, xv) in naive.iter_mut().zip(&x) {
                *nv += xv;
            }
            assert_eq!(y, naive, "add n={n}");
            scale(1.7, &mut y);
            for nv in naive.iter_mut() {
                *nv *= 1.7;
            }
            assert_eq!(y, naive, "scale n={n}");
        }
    }

    #[test]
    fn scatter_add_matches_naive_bitwise() {
        let idx = [1u32, 3, 4, 9, 10, 11, 12, 15];
        let vals = [0.5, -1.5, 2.0, -0.0, 3.25, 1e-300, -7.0, 0.125];
        let mut out = seq(16, |i| i as f64 * 0.1);
        let mut naive = out.clone();
        scatter_add(&idx, &vals, &mut out);
        for (&i, &v) in idx.iter().zip(&vals) {
            naive[i as usize] += v;
        }
        for (a, b) in out.iter().zip(&naive) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
