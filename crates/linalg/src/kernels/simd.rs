//! Explicit x86_64 SIMD kernel bodies — the ONE module allowed `unsafe`.
//!
//! The workspace bans `unsafe` (`#![deny(unsafe_code)]` per crate, enforced
//! by crowd-audit's `unsafe-confinement` rule); this module carries the
//! audited exception, mirroring how `vendor/polling` contains its FFI. Keep
//! the blast radius small: nothing here parses input, holds locks, or
//! allocates — each function is a straight-line vector loop over caller-
//! validated slices.
//!
//! # Determinism argument
//!
//! Every kernel must be *bitwise identical* to its scalar twin in
//! [`super::scalar`]. Three rules make that true by construction:
//!
//! 1. **Lane identity.** The scalar reductions keep four independent
//!    accumulators over stride-4 chunks: `s0 += a[4i]*b[4i]`, …,
//!    `s3 += a[4i+3]*b[4i+3]`. A 4-wide vector accumulator updated with
//!    `acc = add(acc, mul(va, vb))` performs *exactly those 4 scalar
//!    operations* per step — lane j of `acc` sees the same operands in the
//!    same order as `sj`. The SSE2 bodies use two 2-wide accumulators for
//!    lanes (0,1) and (2,3) with the same property.
//! 2. **No FMA, no reassociation.** Multiply and add stay separate
//!    instructions (`_mm256_mul_pd` then `_mm256_add_pd`), each rounding to
//!    f64 like the scalar code. `_mm256_fmadd_pd` would skip the
//!    intermediate rounding and change low bits — never use it here.
//! 3. **Scalar horizontal combine.** The final reduction extracts the lanes
//!    and computes `((s0 + s1) + (s2 + s3)) + tail` in plain f64 arithmetic,
//!    byte-for-byte the scalar combine. No `hadd`, whose pairing differs.
//!
//! Element-wise kernels (`axpy`, `add_assign`, `scale`) are per-element pure
//! (lane j reads/writes only element j), so vectorizing them cannot reorder
//! any floating-point operation. IEEE-754 edge cases (±0.0, subnormals, NaN
//! payload propagation) are covered by the `simd_matches_scalar_bitwise`
//! proptests in `tests/simd_bitwise.rs`.
//!
//! Loads/stores are unaligned (`loadu`/`storeu`): `Vec<f64>` gives no 32-byte
//! guarantee, and alignment affects only latency, never values.
#![allow(unsafe_code)] // audit:allow(unsafe-confinement, sole audited SIMD module)

use core::arch::x86_64::*;

/// Dot product with AVX2: one 4-lane accumulator ≡ scalar lanes `s0..s3`.
#[inline]
pub fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
    // SAFETY: `dot_avx2_impl` requires AVX2, guaranteed by the dispatcher's
    // runtime detection; slices are read within `min(len)` bounds only.
    unsafe { dot_avx2_impl(a, b) }
}

#[target_feature(enable = "avx2")]
unsafe fn dot_avx2_impl(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let chunks = n / 4;
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut acc = _mm256_setzero_pd();
    for i in 0..chunks {
        let va = _mm256_loadu_pd(pa.add(4 * i));
        let vb = _mm256_loadu_pd(pb.add(4 * i));
        // mul then add — NOT fmadd — to round exactly like the scalar body.
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut tail = 0.0f64;
    for i in 4 * chunks..n {
        tail += *pa.add(i) * *pb.add(i);
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
}

/// Dot product with SSE2: two 2-lane accumulators for lanes (0,1) and (2,3).
#[inline]
pub fn dot_sse2(a: &[f64], b: &[f64]) -> f64 {
    // SAFETY: SSE2 is unconditionally part of the x86_64 baseline; slices
    // are read within `min(len)` bounds only.
    unsafe { dot_sse2_impl(a, b) }
}

#[target_feature(enable = "sse2")]
unsafe fn dot_sse2_impl(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let chunks = n / 4;
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut acc01 = _mm_setzero_pd();
    let mut acc23 = _mm_setzero_pd();
    for i in 0..chunks {
        let a01 = _mm_loadu_pd(pa.add(4 * i));
        let b01 = _mm_loadu_pd(pb.add(4 * i));
        let a23 = _mm_loadu_pd(pa.add(4 * i + 2));
        let b23 = _mm_loadu_pd(pb.add(4 * i + 2));
        acc01 = _mm_add_pd(acc01, _mm_mul_pd(a01, b01));
        acc23 = _mm_add_pd(acc23, _mm_mul_pd(a23, b23));
    }
    let mut l01 = [0.0f64; 2];
    let mut l23 = [0.0f64; 2];
    _mm_storeu_pd(l01.as_mut_ptr(), acc01);
    _mm_storeu_pd(l23.as_mut_ptr(), acc23);
    let mut tail = 0.0f64;
    for i in 4 * chunks..n {
        tail += *pa.add(i) * *pb.add(i);
    }
    ((l01[0] + l01[1]) + (l23[0] + l23[1])) + tail
}

/// Sum of squares with AVX2; same lane discipline as [`dot_avx2`].
#[inline]
pub fn sum_sq_avx2(a: &[f64]) -> f64 {
    // SAFETY: AVX2 guaranteed by dispatcher; in-bounds reads only.
    unsafe { sum_sq_avx2_impl(a) }
}

#[target_feature(enable = "avx2")]
unsafe fn sum_sq_avx2_impl(a: &[f64]) -> f64 {
    let n = a.len();
    let chunks = n / 4;
    let pa = a.as_ptr();
    let mut acc = _mm256_setzero_pd();
    for i in 0..chunks {
        let va = _mm256_loadu_pd(pa.add(4 * i));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, va));
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut tail = 0.0f64;
    for i in 4 * chunks..n {
        let x = *pa.add(i);
        tail += x * x;
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
}

/// Sum of squares with SSE2; same lane discipline as [`dot_sse2`].
#[inline]
pub fn sum_sq_sse2(a: &[f64]) -> f64 {
    // SAFETY: SSE2 is baseline on x86_64; in-bounds reads only.
    unsafe { sum_sq_sse2_impl(a) }
}

#[target_feature(enable = "sse2")]
unsafe fn sum_sq_sse2_impl(a: &[f64]) -> f64 {
    let n = a.len();
    let chunks = n / 4;
    let pa = a.as_ptr();
    let mut acc01 = _mm_setzero_pd();
    let mut acc23 = _mm_setzero_pd();
    for i in 0..chunks {
        let a01 = _mm_loadu_pd(pa.add(4 * i));
        let a23 = _mm_loadu_pd(pa.add(4 * i + 2));
        acc01 = _mm_add_pd(acc01, _mm_mul_pd(a01, a01));
        acc23 = _mm_add_pd(acc23, _mm_mul_pd(a23, a23));
    }
    let mut l01 = [0.0f64; 2];
    let mut l23 = [0.0f64; 2];
    _mm_storeu_pd(l01.as_mut_ptr(), acc01);
    _mm_storeu_pd(l23.as_mut_ptr(), acc23);
    let mut tail = 0.0f64;
    for i in 4 * chunks..n {
        let x = *pa.add(i);
        tail += x * x;
    }
    ((l01[0] + l01[1]) + (l23[0] + l23[1])) + tail
}

/// `y += alpha * x` with AVX2. Element-wise ⇒ bitwise equal to scalar.
#[inline]
pub fn axpy_avx2(alpha: f64, x: &[f64], y: &mut [f64]) {
    // SAFETY: AVX2 guaranteed by dispatcher; reads/writes stay within
    // `min(len)` bounds.
    unsafe { axpy_avx2_impl(alpha, x, y) }
}

#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2_impl(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len().min(y.len());
    let px = x.as_ptr();
    let py = y.as_mut_ptr();
    let va = _mm256_set1_pd(alpha);
    // Four independent vectors per iteration: element-wise ops have no
    // cross-element dependency, so the wider unroll only hides load/store
    // latency — the values are untouched.
    let blocks = n / 16;
    for i in 0..blocks {
        let k = 16 * i;
        let x0 = _mm256_loadu_pd(px.add(k));
        let x1 = _mm256_loadu_pd(px.add(k + 4));
        let x2 = _mm256_loadu_pd(px.add(k + 8));
        let x3 = _mm256_loadu_pd(px.add(k + 12));
        let y0 = _mm256_loadu_pd(py.add(k));
        let y1 = _mm256_loadu_pd(py.add(k + 4));
        let y2 = _mm256_loadu_pd(py.add(k + 8));
        let y3 = _mm256_loadu_pd(py.add(k + 12));
        _mm256_storeu_pd(py.add(k), _mm256_add_pd(y0, _mm256_mul_pd(va, x0)));
        _mm256_storeu_pd(py.add(k + 4), _mm256_add_pd(y1, _mm256_mul_pd(va, x1)));
        _mm256_storeu_pd(py.add(k + 8), _mm256_add_pd(y2, _mm256_mul_pd(va, x2)));
        _mm256_storeu_pd(py.add(k + 12), _mm256_add_pd(y3, _mm256_mul_pd(va, x3)));
    }
    let mut i = 16 * blocks;
    while i + 4 <= n {
        let vx = _mm256_loadu_pd(px.add(i));
        let vy = _mm256_loadu_pd(py.add(i));
        _mm256_storeu_pd(py.add(i), _mm256_add_pd(vy, _mm256_mul_pd(va, vx)));
        i += 4;
    }
    for i in i..n {
        *py.add(i) += alpha * *px.add(i);
    }
}

/// `y += alpha * x` with SSE2. Element-wise ⇒ bitwise equal to scalar.
#[inline]
pub fn axpy_sse2(alpha: f64, x: &[f64], y: &mut [f64]) {
    // SAFETY: SSE2 is baseline on x86_64; in-bounds access only.
    unsafe { axpy_sse2_impl(alpha, x, y) }
}

#[target_feature(enable = "sse2")]
unsafe fn axpy_sse2_impl(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len().min(y.len());
    let chunks = n / 2;
    let px = x.as_ptr();
    let py = y.as_mut_ptr();
    let va = _mm_set1_pd(alpha);
    for i in 0..chunks {
        let vx = _mm_loadu_pd(px.add(2 * i));
        let vy = _mm_loadu_pd(py.add(2 * i));
        _mm_storeu_pd(py.add(2 * i), _mm_add_pd(vy, _mm_mul_pd(va, vx)));
    }
    for i in 2 * chunks..n {
        *py.add(i) += alpha * *px.add(i);
    }
}

/// `y += x` with AVX2. Element-wise ⇒ bitwise equal to scalar.
#[inline]
pub fn add_assign_avx2(y: &mut [f64], x: &[f64]) {
    // SAFETY: AVX2 guaranteed by dispatcher; in-bounds access only.
    unsafe { add_assign_avx2_impl(y, x) }
}

#[target_feature(enable = "avx2")]
unsafe fn add_assign_avx2_impl(y: &mut [f64], x: &[f64]) {
    let n = x.len().min(y.len());
    let chunks = n / 4;
    let px = x.as_ptr();
    let py = y.as_mut_ptr();
    for i in 0..chunks {
        let vx = _mm256_loadu_pd(px.add(4 * i));
        let vy = _mm256_loadu_pd(py.add(4 * i));
        _mm256_storeu_pd(py.add(4 * i), _mm256_add_pd(vy, vx));
    }
    for i in 4 * chunks..n {
        *py.add(i) += *px.add(i);
    }
}

/// `y += x` with SSE2. Element-wise ⇒ bitwise equal to scalar.
#[inline]
pub fn add_assign_sse2(y: &mut [f64], x: &[f64]) {
    // SAFETY: SSE2 is baseline on x86_64; in-bounds access only.
    unsafe { add_assign_sse2_impl(y, x) }
}

#[target_feature(enable = "sse2")]
unsafe fn add_assign_sse2_impl(y: &mut [f64], x: &[f64]) {
    let n = x.len().min(y.len());
    let chunks = n / 2;
    let px = x.as_ptr();
    let py = y.as_mut_ptr();
    for i in 0..chunks {
        let vx = _mm_loadu_pd(px.add(2 * i));
        let vy = _mm_loadu_pd(py.add(2 * i));
        _mm_storeu_pd(py.add(2 * i), _mm_add_pd(vy, vx));
    }
    for i in 2 * chunks..n {
        *py.add(i) += *px.add(i);
    }
}

/// `y *= alpha` with AVX2. Element-wise ⇒ bitwise equal to scalar.
#[inline]
pub fn scale_avx2(alpha: f64, y: &mut [f64]) {
    // SAFETY: AVX2 guaranteed by dispatcher; in-bounds access only.
    unsafe { scale_avx2_impl(alpha, y) }
}

#[target_feature(enable = "avx2")]
unsafe fn scale_avx2_impl(alpha: f64, y: &mut [f64]) {
    let n = y.len();
    let chunks = n / 4;
    let py = y.as_mut_ptr();
    let va = _mm256_set1_pd(alpha);
    for i in 0..chunks {
        let vy = _mm256_loadu_pd(py.add(4 * i));
        _mm256_storeu_pd(py.add(4 * i), _mm256_mul_pd(vy, va));
    }
    for i in 4 * chunks..n {
        *py.add(i) *= alpha;
    }
}

/// `y *= alpha` with SSE2. Element-wise ⇒ bitwise equal to scalar.
#[inline]
pub fn scale_sse2(alpha: f64, y: &mut [f64]) {
    // SAFETY: SSE2 is baseline on x86_64; in-bounds access only.
    unsafe { scale_sse2_impl(alpha, y) }
}

#[target_feature(enable = "sse2")]
unsafe fn scale_sse2_impl(alpha: f64, y: &mut [f64]) {
    let n = y.len();
    let chunks = n / 2;
    let py = y.as_mut_ptr();
    let va = _mm_set1_pd(alpha);
    for i in 0..chunks {
        let vy = _mm_loadu_pd(py.add(2 * i));
        _mm_storeu_pd(py.add(2 * i), _mm_mul_pd(vy, va));
    }
    for i in 2 * chunks..n {
        *py.add(i) *= alpha;
    }
}

/// Sparse scatter-add via a 4-way unrolled unchecked loop.
///
/// Verifies every index up front (one branchy pass over `u32`s, far cheaper
/// than a bounds check per f64 add), then runs without per-element checks.
/// Returns `false` — having touched nothing — if any index is out of range,
/// so the dispatcher can fall back to the checked scalar loop and preserve
/// its debug-panic behavior. One scalar add per element, in index order —
/// bitwise identical to the checked loop.
#[inline]
pub fn scatter_add(indices: &[u32], values: &[f64], out: &mut [f64]) -> bool {
    let n = indices.len().min(values.len());
    if indices.iter().take(n).any(|&i| i as usize >= out.len()) {
        return false;
    }
    // SAFETY: every index used below was just verified to be in range for
    // `out`; reads of `indices`/`values` stay below `n ≤ len`.
    unsafe { scatter_add_unchecked(&indices[..n], &values[..n], out) };
    true
}

/// # Safety
///
/// Every `indices[k]` for `k < min(indices.len(), values.len())` must be in
/// range for `out` — [`scatter_add`] verifies exactly that before calling.
/// The unroll hides the load latency of the gathered `out` elements; a true
/// SIMD gather/scatter would not change the values, but `vgatherdpd` is slow
/// enough on real cores that it loses to this.
unsafe fn scatter_add_unchecked(indices: &[u32], values: &[f64], out: &mut [f64]) {
    let n = indices.len().min(values.len());
    let chunks = n / 4;
    let pi = indices.as_ptr();
    let pv = values.as_ptr();
    let po = out.as_mut_ptr();
    for c in 0..chunks {
        let k = 4 * c;
        let (i0, i1, i2, i3) = (
            *pi.add(k) as usize,
            *pi.add(k + 1) as usize,
            *pi.add(k + 2) as usize,
            *pi.add(k + 3) as usize,
        );
        // Sequential adds: duplicate indices must accumulate in order.
        *po.add(i0) += *pv.add(k);
        *po.add(i1) += *pv.add(k + 1);
        *po.add(i2) += *pv.add(k + 2);
        *po.add(i3) += *pv.add(k + 3);
    }
    for k in 4 * chunks..n {
        *po.add(*pi.add(k) as usize) += *pv.add(k);
    }
}
