//! Iterative radix-2 fast Fourier transform and spectral feature extraction.
//!
//! The activity-recognition workload of the paper (§V-B) computes a 64-bin FFT of
//! accelerometer magnitude windows as its feature vector. This module provides the
//! complex FFT used for that feature extraction plus the convenience function
//! [`magnitude_spectrum`] that maps a real window directly to the first
//! `n/2` magnitude bins.

use crate::error::LinalgError;
use crate::Result;

/// A minimal complex number type sufficient for the FFT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The additive identity.
    pub fn zero() -> Self {
        Complex { re: 0.0, im: 0.0 }
    }

    /// Magnitude (modulus).
    pub fn abs(self) -> f64 {
        (self.re * self.re + self.im * self.im).sqrt()
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, other: Complex) -> Complex {
        Complex {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, other: Complex) -> Complex {
        Complex {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, other: Complex) -> Complex {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }
}

fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// `invert = false` computes the forward transform; `invert = true` computes the
/// inverse transform (including the `1/n` scaling). The length must be a power of
/// two.
pub fn fft_in_place(data: &mut [Complex], invert: bool) -> Result<()> {
    let n = data.len();
    if n == 0 {
        return Ok(());
    }
    if !is_power_of_two(n) {
        return Err(LinalgError::invalid(
            "fft",
            format!("length {n} is not a power of two"),
        ));
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }

    // Butterfly stages.
    let mut len = 2;
    while len <= n {
        let angle = 2.0 * std::f64::consts::PI / len as f64 * if invert { 1.0 } else { -1.0 };
        let wlen = Complex::new(angle.cos(), angle.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }

    if invert {
        let scale = 1.0 / n as f64;
        for x in data.iter_mut() {
            x.re *= scale;
            x.im *= scale;
        }
    }
    Ok(())
}

/// Forward FFT of a real signal, returning the full complex spectrum.
///
/// The signal length must be a power of two.
pub fn fft_real(signal: &[f64]) -> Result<Vec<Complex>> {
    let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft_in_place(&mut data, false)?;
    Ok(data)
}

/// Magnitude spectrum of a real signal: the first `n/2` bins of `|FFT(x)|`,
/// normalized by the window length.
///
/// This is the feature extractor used for the activity-recognition task: a 128-sample
/// acceleration-magnitude window yields a 64-bin feature vector.
pub fn magnitude_spectrum(signal: &[f64]) -> Result<Vec<f64>> {
    let n = signal.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let spectrum = fft_real(signal)?;
    let scale = 1.0 / n as f64;
    Ok(spectrum[..n / 2].iter().map(|c| c.abs() * scale).collect())
}

/// Inverse FFT returning only the real parts (useful for round-trip testing and
/// synthetic signal construction).
pub fn ifft_real(spectrum: &[Complex]) -> Result<Vec<f64>> {
    let mut data = spectrum.to_vec();
    fft_in_place(&mut data, true)?;
    Ok(data.into_iter().map(|c| c.re).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::approx_eq;

    fn naive_dft(signal: &[f64]) -> Vec<Complex> {
        let n = signal.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::zero();
                for (t, &x) in signal.iter().enumerate() {
                    let angle = -2.0 * std::f64::consts::PI * k as f64 * t as f64 / n as f64;
                    acc = acc + Complex::new(x * angle.cos(), x * angle.sin());
                }
                acc
            })
            .collect()
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(fft_real(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn empty_and_singleton() {
        assert!(fft_real(&[]).unwrap().is_empty());
        let one = fft_real(&[5.0]).unwrap();
        assert!(approx_eq(one[0].re, 5.0, 1e-12));
    }

    #[test]
    fn matches_naive_dft() {
        let signal = [0.1, 0.9, -0.4, 0.3, 0.0, -1.2, 0.7, 0.5];
        let fast = fft_real(&signal).unwrap();
        let slow = naive_dft(&signal);
        for (a, b) in fast.iter().zip(slow.iter()) {
            assert!(approx_eq(a.re, b.re, 1e-9));
            assert!(approx_eq(a.im, b.im, 1e-9));
        }
    }

    #[test]
    fn forward_inverse_round_trip() {
        let signal = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let spectrum = fft_real(&signal).unwrap();
        let recovered = ifft_real(&spectrum).unwrap();
        for (a, b) in signal.iter().zip(recovered.iter()) {
            assert!(approx_eq(*a, *b, 1e-9));
        }
    }

    #[test]
    fn pure_tone_concentrates_energy() {
        // A pure cosine at bin 4 of a 64-sample window should place its energy in
        // exactly that bin of the magnitude spectrum.
        let n = 64;
        let signal: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * 4.0 * t as f64 / n as f64).cos())
            .collect();
        let mags = magnitude_spectrum(&signal).unwrap();
        assert_eq!(mags.len(), 32);
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 4);
        // Energy away from the tone should be negligible.
        assert!(mags[10] < 1e-9);
    }

    #[test]
    fn dc_signal_has_only_dc_component() {
        let signal = vec![2.0; 16];
        let mags = magnitude_spectrum(&signal).unwrap();
        assert!(approx_eq(mags[0], 2.0, 1e-9));
        assert!(mags[1..].iter().all(|&m| m < 1e-9));
    }

    #[test]
    fn linearity_of_transform() {
        let a = [1.0, 0.0, -1.0, 0.5, 0.25, -0.5, 0.75, 0.0];
        let b = [0.3, 0.6, 0.9, -0.3, -0.6, -0.9, 0.1, 0.2];
        let sum: Vec<f64> = a.iter().zip(b.iter()).map(|(x, y)| x + y).collect();
        let fa = fft_real(&a).unwrap();
        let fb = fft_real(&b).unwrap();
        let fsum = fft_real(&sum).unwrap();
        for i in 0..a.len() {
            assert!(approx_eq(fsum[i].re, fa[i].re + fb[i].re, 1e-9));
            assert!(approx_eq(fsum[i].im, fa[i].im + fb[i].im, 1e-9));
        }
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let prod = a * b;
        assert!(approx_eq(prod.re, 5.0, 1e-12));
        assert!(approx_eq(prod.im, 5.0, 1e-12));
        assert!(approx_eq(a.abs(), 5.0_f64.sqrt(), 1e-12));
        let diff = a - b;
        assert!(approx_eq(diff.re, -2.0, 1e-12));
        assert!(approx_eq(diff.im, 3.0, 1e-12));
    }
}
