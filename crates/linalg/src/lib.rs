//! Dense linear-algebra substrate for the Crowd-ML framework.
//!
//! The crate provides exactly the numerical machinery the paper's pipeline needs,
//! implemented from scratch so the workspace has no external linear-algebra
//! dependency:
//!
//! * [`Vector`] and [`Matrix`] — owned, row-major dense containers with the usual
//!   BLAS-1/2/3-style operations (`dot`, `axpy`, `matvec`, `matmul`, …).
//! * [`kernels`] — unrolled BLAS-1 reductions with a fixed summation order, so
//!   hot-path dot products and norms are fast *and* bitwise reproducible.
//! * [`sparse`] — [`SparseVector`] and the [`GradientUpdate`] carrier used to
//!   ship mostly-zero gradients in bandwidth proportional to their support.
//! * [`ops`] — free functions used throughout the learning stack: softmax,
//!   log-sum-exp, argmax, L1/L2 normalization, and the L2-ball projection
//!   `Π_W(w) = min(1, R/‖w‖)·w` from Eq. (3) of the paper.
//! * [`fft`] — an iterative radix-2 FFT and the 64-bin magnitude-spectrum feature
//!   extractor used by the activity-recognition workload (§V-B).
//! * [`pca`] — covariance-based principal component analysis via power iteration
//!   with deflation, used to reduce MNIST-like data to 50 dimensions and
//!   CIFAR-feature-like data to 100 dimensions (§V-C, Appendix D).
//! * [`stats`] — scalar summary statistics used by tests and the experiment
//!   harness.
//! * [`random`] — seeded random vector/matrix constructors (uniform, standard
//!   normal via Box–Muller).
//!
//! All floating-point storage is `f64`.
//!
//! `unsafe` is denied crate-wide with exactly one audited exception: the
//! explicit SIMD bodies in [`kernels::simd`] (see that module's determinism
//! argument). crowd-audit's `unsafe-confinement` rule enforces the
//! containment mechanically.

#![deny(unsafe_code)]

pub mod error;
pub mod fft;
pub mod kernels;
pub mod matrix;
pub mod ops;
pub mod pca;
pub mod quant;
pub mod random;
pub mod sparse;
pub mod stats;
pub mod vector;

pub use error::LinalgError;
pub use matrix::Matrix;
pub use pca::Pca;
pub use quant::QuantizedVector;
pub use sparse::{GradientUpdate, SparseVector};
pub use vector::Vector;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
