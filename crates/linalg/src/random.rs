//! Seeded random vector/matrix constructors.
//!
//! Every stochastic component in the workspace takes an explicit `&mut impl Rng`
//! so experiments are reproducible from a single seed. This module centralizes the
//! primitive samplers (uniform, standard normal via Box–Muller) used to build
//! random vectors and matrices.

use crate::matrix::Matrix;
use crate::vector::Vector;
use rand::Rng;

/// Draws a standard normal variate using the Box–Muller transform.
///
/// Implemented locally (rather than via `rand_distr`) to keep the dependency
/// surface to the pre-approved crates.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid log(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// A vector of independent standard normal entries.
pub fn normal_vector<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Vector {
    Vector::from_vec((0..len).map(|_| standard_normal(rng)).collect())
}

/// A vector of independent uniform entries in `[lo, hi)`.
pub fn uniform_vector<R: Rng + ?Sized>(rng: &mut R, len: usize, lo: f64, hi: f64) -> Vector {
    Vector::from_vec((0..len).map(|_| rng.gen_range(lo..hi)).collect())
}

/// A matrix of independent standard normal entries.
pub fn normal_matrix<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    Matrix::from_row_major(
        rows,
        cols,
        (0..rows * cols).map(|_| standard_normal(rng)).collect(),
    )
    .expect("shape is consistent by construction")
}

/// A matrix of independent uniform entries in `[lo, hi)`.
pub fn uniform_matrix<R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
    lo: f64,
    hi: f64,
) -> Matrix {
    Matrix::from_row_major(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect(),
    )
    .expect("shape is consistent by construction")
}

/// Fisher–Yates shuffle of indices `0..n`, returned as a permutation vector.
pub fn permutation<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn shifted_normal_has_requested_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean = (0..n).map(|_| normal(&mut rng, 5.0, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05);
    }

    #[test]
    fn uniform_vector_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = uniform_vector(&mut rng, 1000, -2.0, 3.0);
        assert!(v.iter().all(|&x| (-2.0..3.0).contains(&x)));
        assert_eq!(v.len(), 1000);
    }

    #[test]
    fn matrices_have_requested_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(normal_matrix(&mut rng, 4, 6).shape(), (4, 6));
        assert_eq!(uniform_matrix(&mut rng, 2, 3, 0.0, 1.0).shape(), (2, 3));
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        assert_eq!(
            normal_vector(&mut a, 16).as_slice(),
            normal_vector(&mut b, 16).as_slice()
        );
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut rng = StdRng::seed_from_u64(11);
        let p = permutation(&mut rng, 100);
        let mut seen = vec![false; 100];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn permutation_of_zero_and_one() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(permutation(&mut rng, 0).is_empty());
        assert_eq!(permutation(&mut rng, 1), vec![0]);
    }
}
