//! Scalar summary statistics used by tests, benchmarks, and the experiment harness.

/// Arithmetic mean of a slice; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance (divides by `n`); `0.0` for an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample variance (divides by `n - 1`); `0.0` when fewer than two elements.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum value; `NaN` for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .fold(f64::NAN, |m, x| if m.is_nan() || x < m { x } else { m })
}

/// Maximum value; `NaN` for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .fold(f64::NAN, |m, x| if m.is_nan() || x > m { x } else { m })
}

/// Median via sorting a copy; `NaN` for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Linear-interpolation quantile (`q` in `[0, 1]`); `NaN` for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Exponential moving average of a series with smoothing factor `alpha` in `(0, 1]`.
///
/// Returns an empty vector for empty input.
pub fn ewma(xs: &[f64], alpha: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(xs.len());
    let mut state = match xs.first() {
        Some(&x) => x,
        None => return out,
    };
    out.push(state);
    for &x in &xs[1..] {
        state = alpha * x + (1.0 - alpha) * state;
        out.push(state);
    }
    out
}

/// Running (prefix) means of a series: `out[t] = mean(xs[0..=t])`.
///
/// This matches the time-averaged error definition used in Fig. 3 of the paper:
/// `Err(t) = (1/t) Σ_{i≤t} I[y_i ≠ ŷ_i]`.
pub fn running_mean(xs: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        acc += x;
        out.push(acc / (i + 1) as f64);
    }
    out
}

/// Pearson correlation coefficient between two equal-length slices; `NaN` if either
/// slice has zero variance or lengths differ.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.is_empty() {
        return f64::NAN;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return f64::NAN;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Histogram of `xs` over `bins` equal-width buckets spanning `[lo, hi)`.
///
/// Values outside the range are clamped into the first/last bucket. Returns an
/// empty vector if `bins == 0` or the range is degenerate.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    if bins == 0 || hi <= lo {
        return Vec::new();
    }
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &x in xs {
        let mut idx = ((x - lo) / width).floor() as isize;
        if idx < 0 {
            idx = 0;
        }
        if idx as usize >= bins {
            idx = bins as isize - 1;
        }
        counts[idx as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::approx_eq;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
        assert!(approx_eq(sample_variance(&xs), 32.0 / 7.0, 1e-12));
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(sample_variance(&[1.0]), 0.0);
    }

    #[test]
    fn min_max_median() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(min(&xs), 1.0);
        assert_eq!(max(&xs), 3.0);
        assert_eq!(median(&xs), 2.0);
        assert!(min(&[]).is_nan());
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 1.0), 3.0);
        assert!(approx_eq(quantile(&xs, 0.5), 1.5, 1e-12));
        assert!(approx_eq(quantile(&xs, 0.25), 0.75, 1e-12));
    }

    #[test]
    fn ewma_and_running_mean() {
        let xs = [1.0, 1.0, 0.0, 0.0];
        let rm = running_mean(&xs);
        assert_eq!(rm, vec![1.0, 1.0, 2.0 / 3.0, 0.5]);
        let e = ewma(&xs, 0.5);
        assert_eq!(e.len(), 4);
        assert_eq!(e[0], 1.0);
        assert_eq!(e[1], 1.0);
        assert_eq!(e[2], 0.5);
        assert!(ewma(&[], 0.3).is_empty());
        assert!(running_mean(&[]).is_empty());
    }

    #[test]
    fn pearson_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!(approx_eq(pearson(&xs, &ys), 1.0, 1e-12));
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!(approx_eq(pearson(&xs, &zs), -1.0, 1e-12));
        assert!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]).is_nan());
        assert!(pearson(&xs, &ys[..2]).is_nan());
    }

    #[test]
    fn histogram_counts() {
        let xs = [0.1, 0.2, 0.6, 0.9, -5.0, 10.0];
        let h = histogram(&xs, 0.0, 1.0, 2);
        assert_eq!(h, vec![3, 3]);
        assert!(histogram(&xs, 0.0, 0.0, 4).is_empty());
        assert!(histogram(&xs, 0.0, 1.0, 0).is_empty());
    }
}
