//! Owned dense vector type and BLAS-1 style operations.

use crate::error::LinalgError;
use crate::Result;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// An owned, dense, `f64` vector.
///
/// `Vector` is the fundamental container used for model parameters, gradients, and
/// feature vectors throughout the workspace. It intentionally exposes a small,
/// explicit API rather than operator overloading for every operation; the most
/// common arithmetic (`+`, `-`, scalar `*`) is overloaded for readability in the
/// learning code.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector from raw data.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Vector { data }
    }

    /// Creates a vector of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        Vector {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector of `len` ones.
    pub fn ones(len: usize) -> Self {
        Vector {
            data: vec![1.0; len],
        }
    }

    /// Creates a vector filled with `value`.
    pub fn filled(len: usize, value: f64) -> Self {
        Vector {
            data: vec![value; len],
        }
    }

    /// Creates a standard basis vector `e_i` of dimension `len`.
    pub fn basis(len: usize, i: usize) -> Result<Self> {
        if i >= len {
            return Err(LinalgError::invalid(
                "basis",
                format!("index {i} out of range for dimension {len}"),
            ));
        }
        let mut v = Self::zeros(len);
        v.data[i] = 1.0;
        Ok(v)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterator over elements.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Mutable iterator over elements.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f64> {
        self.data.iter_mut()
    }

    /// Dot product `self · other` (four-lane unrolled, fixed summation order).
    pub fn dot(&self, other: &Vector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::vector_mismatch("dot", self.len(), other.len()));
        }
        Ok(crate::kernels::dot(&self.data, &other.data))
    }

    /// In-place `self += alpha * other` (the classic `axpy`).
    pub fn axpy(&mut self, alpha: f64, other: &Vector) -> Result<()> {
        if self.len() != other.len() {
            return Err(LinalgError::vector_mismatch(
                "axpy",
                self.len(),
                other.len(),
            ));
        }
        crate::kernels::axpy(alpha, &other.data, &mut self.data);
        Ok(())
    }

    /// In-place scatter-add of a sparse vector's stored coordinates.
    pub fn add_sparse(&mut self, other: &crate::sparse::SparseVector) -> Result<()> {
        other.add_into(&mut self.data)
    }

    /// In-place scaling `self *= alpha`.
    pub fn scale(&mut self, alpha: f64) {
        crate::kernels::scale(alpha, &mut self.data);
    }

    /// Returns a scaled copy `alpha * self`.
    pub fn scaled(&self, alpha: f64) -> Vector {
        let mut out = self.clone();
        out.scale(alpha);
        out
    }

    /// Element-wise sum of the vector.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of the elements; `0.0` for an empty vector.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// L1 norm `‖v‖₁`.
    pub fn norm_l1(&self) -> f64 {
        crate::kernels::sum_abs(&self.data)
    }

    /// L2 norm `‖v‖₂`.
    pub fn norm_l2(&self) -> f64 {
        crate::kernels::sum_sq(&self.data).sqrt()
    }

    /// L∞ norm (maximum absolute value); `0.0` for an empty vector.
    pub fn norm_linf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, a| m.max(a.abs()))
    }

    /// Squared L2 norm.
    pub fn norm_l2_squared(&self) -> f64 {
        crate::kernels::sum_sq(&self.data)
    }

    /// Returns the index of the maximum element; ties resolve to the smallest index.
    ///
    /// Returns `None` for an empty vector.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for (i, v) in self.data.iter().enumerate() {
            if *v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Returns the index of the minimum element; ties resolve to the smallest index.
    pub fn argmin(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for (i, v) in self.data.iter().enumerate() {
            if *v < self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Element-wise product (Hadamard product).
    pub fn hadamard(&self, other: &Vector) -> Result<Vector> {
        if self.len() != other.len() {
            return Err(LinalgError::vector_mismatch(
                "hadamard",
                self.len(),
                other.len(),
            ));
        }
        Ok(Vector::from_vec(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a * b)
                .collect(),
        ))
    }

    /// Euclidean distance between two vectors.
    pub fn distance(&self, other: &Vector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::vector_mismatch(
                "distance",
                self.len(),
                other.len(),
            ));
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt())
    }

    /// Returns `true` when every element is finite (no NaN or infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(f64) -> f64) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Returns a new vector with `f` applied element-wise.
    pub fn map(&self, f: impl FnMut(f64) -> f64) -> Vector {
        Vector::from_vec(self.data.iter().copied().map(f).collect())
    }

    /// Fills the vector with zeros without reallocating.
    pub fn set_zero(&mut self) {
        for a in &mut self.data {
            *a = 0.0;
        }
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector::from_vec(data)
    }
}

impl From<&[f64]> for Vector {
    fn from(data: &[f64]) -> Self {
        Vector::from_vec(data.to_vec())
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Vector::from_vec(iter.into_iter().collect())
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, index: usize) -> &f64 {
        &self.data[index]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        &mut self.data[index]
    }
}

impl Add<&Vector> for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector addition length mismatch");
        Vector::from_vec(
            self.data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        )
    }
}

impl Sub<&Vector> for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector subtraction length mismatch");
        Vector::from_vec(
            self.data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        )
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector += length mismatch");
        crate::kernels::add_assign(&mut self.data, &rhs.data);
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector -= length mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Vector::zeros(3).as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(Vector::ones(2).as_slice(), &[1.0, 1.0]);
        assert_eq!(Vector::filled(2, 2.5).as_slice(), &[2.5, 2.5]);
        let e1 = Vector::basis(3, 1).unwrap();
        assert_eq!(e1.as_slice(), &[0.0, 1.0, 0.0]);
        assert!(Vector::basis(3, 3).is_err());
    }

    #[test]
    fn dot_product_and_mismatch() {
        let a = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        let b = Vector::from_vec(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        let c = Vector::zeros(2);
        assert!(a.dot(&c).is_err());
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = Vector::from_vec(vec![1.0, 1.0]);
        let b = Vector::from_vec(vec![2.0, 3.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 2.5]);
    }

    #[test]
    fn norms() {
        let v = Vector::from_vec(vec![3.0, -4.0]);
        assert_eq!(v.norm_l1(), 7.0);
        assert_eq!(v.norm_l2(), 5.0);
        assert_eq!(v.norm_linf(), 4.0);
        assert_eq!(v.norm_l2_squared(), 25.0);
    }

    #[test]
    fn argmax_argmin() {
        let v = Vector::from_vec(vec![0.5, 2.0, -1.0, 2.0]);
        assert_eq!(v.argmax(), Some(1));
        assert_eq!(v.argmin(), Some(2));
        assert_eq!(Vector::zeros(0).argmax(), None);
    }

    #[test]
    fn operators() {
        let a = Vector::from_vec(vec![1.0, 2.0]);
        let b = Vector::from_vec(vec![3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn hadamard_and_distance() {
        let a = Vector::from_vec(vec![1.0, 2.0]);
        let b = Vector::from_vec(vec![3.0, 4.0]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[3.0, 8.0]);
        assert!((a.distance(&b).unwrap() - 8.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn map_and_finite() {
        let mut v = Vector::from_vec(vec![1.0, -2.0]);
        v.map_in_place(f64::abs);
        assert_eq!(v.as_slice(), &[1.0, 2.0]);
        assert!(v.is_finite());
        let w = v.map(|x| x * 10.0);
        assert_eq!(w.as_slice(), &[10.0, 20.0]);
        let mut nan = Vector::from_vec(vec![f64::NAN]);
        assert!(!nan.is_finite());
        nan.set_zero();
        assert!(nan.is_finite());
    }

    #[test]
    fn mean_and_sum() {
        let v = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        assert_eq!(v.sum(), 6.0);
        assert_eq!(v.mean(), 2.0);
        assert_eq!(Vector::zeros(0).mean(), 0.0);
    }

    #[test]
    fn from_iterator_and_conversions() {
        let v: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
        let w = Vector::from(vec![5.0]);
        assert_eq!(w.into_vec(), vec![5.0]);
    }
}
