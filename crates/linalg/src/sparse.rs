//! Sparse gradient carriers for bandwidth-proportional transport.
//!
//! A device whose minibatch only touched a few features (or whose model zeroes
//! most coordinates, as hinge losses and per-class logistic rows do) produces a
//! gradient that is mostly *exact* zeros. [`SparseVector`] stores just the
//! non-zero coordinates; [`GradientUpdate`] is the either/or carrier the
//! checkin path hands from the wire decoder to the aggregation shards, which
//! scatter-add it without ever materializing the dense form.
//!
//! Exact zeros only — no thresholding, rounding, or quantization. Skipping an
//! exactly-zero addend is a bitwise no-op on any accumulator that started at
//! `+0.0` and only ever gained addends (IEEE-754 addition only produces `-0.0`
//! from `(-0.0) + (-0.0)`), so sparse and dense checkins fold into bitwise
//! identical aggregates.

use crate::error::LinalgError;
use crate::vector::Vector;
use crate::Result;

/// A sparse `f64` vector: strictly increasing coordinate indices plus values.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVector {
    dim: usize,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseVector {
    /// Builds a sparse vector, validating that `indices` are strictly
    /// increasing, in range for `dim`, and aligned with `values`.
    pub fn new(dim: usize, indices: Vec<u32>, values: Vec<f64>) -> Result<Self> {
        if indices.len() != values.len() {
            return Err(LinalgError::invalid(
                "sparse",
                format!("{} indices but {} values", indices.len(), values.len()),
            ));
        }
        let mut prev: Option<u32> = None;
        for &i in &indices {
            if (i as usize) >= dim {
                return Err(LinalgError::invalid(
                    "sparse",
                    format!("index {i} out of range for dimension {dim}"),
                ));
            }
            if let Some(p) = prev {
                if i <= p {
                    return Err(LinalgError::invalid(
                        "sparse",
                        format!("indices not strictly increasing at {i}"),
                    ));
                }
            }
            prev = Some(i);
        }
        Ok(SparseVector {
            dim,
            indices,
            values,
        })
    }

    /// Extracts the non-zero coordinates of a dense slice.
    ///
    /// "Zero" means the bit pattern of `+0.0`: a negative zero is kept as an
    /// explicit entry so densifying reproduces the input bit for bit.
    pub fn from_dense(dense: &[f64]) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v.to_bits() != 0 {
                indices.push(i as u32);
                values.push(v);
            }
        }
        SparseVector {
            dim: dense.len(),
            indices,
            values,
        }
    }

    /// Logical dimension of the vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored (non-zero) coordinates.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// The stored coordinate indices, strictly increasing.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The stored coordinate values, aligned with [`SparseVector::indices`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Scatter-adds the stored coordinates into `out` (ascending index order,
    /// so the fold order is fixed and reproducible).
    pub fn add_into(&self, out: &mut [f64]) -> Result<()> {
        if out.len() != self.dim {
            return Err(LinalgError::vector_mismatch(
                "sparse add",
                out.len(),
                self.dim,
            ));
        }
        crate::kernels::scatter_add(&self.indices, &self.values, out);
        Ok(())
    }

    /// Materializes the dense form.
    pub fn to_dense(&self) -> Vector {
        let mut out = vec![0.0; self.dim];
        for (&i, &v) in self.indices.iter().zip(self.values.iter()) {
            out[i as usize] = v;
        }
        Vector::from_vec(out)
    }

    /// Decomposes into `(dim, indices, values)` without copying.
    pub fn into_parts(self) -> (usize, Vec<u32>, Vec<f64>) {
        (self.dim, self.indices, self.values)
    }

    /// Bytes this vector would occupy in the checkin wire encoding
    /// (`u32` dim + `u32` nnz + `u32` index + `f64` value per entry).
    pub fn wire_bytes(&self) -> usize {
        8 + 12 * self.nnz()
    }
}

/// A gradient in whichever representation crossed (or will cross) the wire.
///
/// The aggregation path consumes this without densifying: dense updates fold
/// element-wise, sparse updates scatter-add — both in a fixed order, so the
/// merged epoch aggregate is bitwise independent of which encoding each
/// contributing device chose.
#[derive(Debug, Clone, PartialEq)]
pub enum GradientUpdate {
    /// All coordinates, as uploaded by a device with a dense gradient.
    Dense(Vector),
    /// Non-zero coordinates only.
    Sparse(SparseVector),
    /// Stochastically quantized fixed-point coordinates (DP-noised uploads
    /// whose noise floor dominates the quantization step — see
    /// [`crate::quant`]). Folds by dequantizing element-wise in index order,
    /// so the merge stays bitwise deterministic without densifying first.
    Quantized(crate::quant::QuantizedVector),
}

impl GradientUpdate {
    /// Wire-size break-even: the sparse checkin encoding (`8 + 12·nnz` bytes)
    /// is strictly smaller than the dense one (`4 + 8·dim` bytes) exactly when
    /// `12·nnz + 4 < 8·dim`.
    pub fn sparse_is_smaller(dim: usize, nnz: usize) -> bool {
        12 * nnz + 4 < 8 * dim
    }

    /// Wraps a dense gradient, switching to the sparse representation when its
    /// measured density makes that strictly smaller on the wire.
    pub fn from_dense_auto(dense: Vector) -> Self {
        let nnz = dense.as_slice().iter().filter(|v| v.to_bits() != 0).count();
        if Self::sparse_is_smaller(dense.len(), nnz) {
            GradientUpdate::Sparse(SparseVector::from_dense(dense.as_slice()))
        } else {
            GradientUpdate::Dense(dense)
        }
    }

    /// Logical dimension.
    pub fn dim(&self) -> usize {
        match self {
            GradientUpdate::Dense(v) => v.len(),
            GradientUpdate::Sparse(s) => s.dim(),
            GradientUpdate::Quantized(q) => q.dim(),
        }
    }

    /// Number of stored coordinates (the dense form stores all of them).
    pub fn nnz(&self) -> usize {
        match self {
            GradientUpdate::Dense(v) => v.len(),
            GradientUpdate::Sparse(s) => s.nnz(),
            GradientUpdate::Quantized(q) => q.dim(),
        }
    }

    /// `true` for the sparse representation.
    pub fn is_sparse(&self) -> bool {
        matches!(self, GradientUpdate::Sparse(_))
    }

    /// Adds this update into a dense accumulator: element-wise for dense,
    /// scatter-add for sparse. Bitwise equivalent for accumulators that
    /// started at `+0.0` (see the module docs).
    pub fn add_into(&self, out: &mut Vector) -> Result<()> {
        match self {
            GradientUpdate::Dense(v) => {
                if out.len() != v.len() {
                    return Err(LinalgError::vector_mismatch(
                        "gradient add",
                        out.len(),
                        v.len(),
                    ));
                }
                crate::kernels::add_assign(out.as_mut_slice(), v.as_slice());
                Ok(())
            }
            GradientUpdate::Sparse(s) => out.add_sparse(s),
            GradientUpdate::Quantized(q) => q.add_into(out.as_mut_slice()),
        }
    }

    /// Materializes the dense form (cloning for the dense variant).
    pub fn to_dense(&self) -> Vector {
        match self {
            GradientUpdate::Dense(v) => v.clone(),
            GradientUpdate::Sparse(s) => s.to_dense(),
            GradientUpdate::Quantized(q) => q.to_dense(),
        }
    }
}

impl From<Vector> for GradientUpdate {
    fn from(v: Vector) -> Self {
        GradientUpdate::Dense(v)
    }
}

impl From<SparseVector> for GradientUpdate {
    fn from(s: SparseVector) -> Self {
        GradientUpdate::Sparse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_dense_keeps_only_nonzero_bits() {
        let s = SparseVector::from_dense(&[0.0, 1.5, 0.0, -2.0, 0.0]);
        assert_eq!(s.dim(), 5);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.indices(), &[1, 3]);
        assert_eq!(s.values(), &[1.5, -2.0]);
        assert_eq!(s.to_dense().as_slice(), &[0.0, 1.5, 0.0, -2.0, 0.0]);
        // Negative zero has a non-zero bit pattern and must survive.
        let nz = SparseVector::from_dense(&[0.0, -0.0]);
        assert_eq!(nz.nnz(), 1);
        assert_eq!(nz.to_dense().as_slice()[1].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn validation_rejects_malformed_input() {
        assert!(SparseVector::new(4, vec![0, 2], vec![1.0]).is_err());
        assert!(SparseVector::new(4, vec![0, 4], vec![1.0, 2.0]).is_err());
        assert!(SparseVector::new(4, vec![2, 2], vec![1.0, 2.0]).is_err());
        assert!(SparseVector::new(4, vec![2, 1], vec![1.0, 2.0]).is_err());
        assert!(SparseVector::new(4, vec![1, 3], vec![1.0, 2.0]).is_ok());
        assert!(SparseVector::new(0, vec![], vec![]).is_ok());
    }

    #[test]
    fn sparse_add_matches_dense_add_bitwise() {
        let dense = [0.0, 0.25, 0.0, 0.0, -1.75, 0.0, 3.5, 0.0];
        let sparse = SparseVector::from_dense(&dense);
        let mut via_dense = Vector::zeros(8);
        let mut via_sparse = Vector::zeros(8);
        // Two rounds of accumulation, as a shard would do across checkins.
        for _ in 0..2 {
            crate::kernels::add_assign(via_dense.as_mut_slice(), &dense);
            sparse.add_into(via_sparse.as_mut_slice()).unwrap();
        }
        for (a, b) in via_dense.iter().zip(via_sparse.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(sparse.add_into(&mut [0.0; 3]).is_err());
    }

    #[test]
    fn auto_selection_follows_wire_size() {
        // 95% zeros at dim 1000: nnz = 50, 12·50+4 = 604 < 8000 → sparse.
        let mut mostly_zero = vec![0.0; 1000];
        for i in (0..1000).step_by(20) {
            mostly_zero[i] = 1.0;
        }
        let sparse = GradientUpdate::from_dense_auto(Vector::from_vec(mostly_zero));
        assert!(sparse.is_sparse());
        assert_eq!(sparse.nnz(), 50);
        // A fully dense gradient stays dense.
        let dense = GradientUpdate::from_dense_auto(Vector::ones(1000));
        assert!(!dense.is_sparse());
        // Break-even boundary: dim 3, nnz 2 → 28 ≥ 24 keeps dense.
        let v = GradientUpdate::from_dense_auto(Vector::from_vec(vec![1.0, 0.0, 2.0]));
        assert!(!v.is_sparse());
    }

    #[test]
    fn update_api_round_trips() {
        let v = Vector::from_vec(vec![1.0, 0.0, 2.0]);
        let dense = GradientUpdate::from(v.clone());
        assert_eq!(dense.dim(), 3);
        assert_eq!(dense.to_dense(), v);
        let sparse = GradientUpdate::from(SparseVector::from_dense(v.as_slice()));
        assert_eq!(sparse.dim(), 3);
        assert_eq!(sparse.nnz(), 2);
        assert_eq!(sparse.to_dense(), v);
        let mut acc = Vector::zeros(3);
        dense.add_into(&mut acc).unwrap();
        sparse.add_into(&mut acc).unwrap();
        assert_eq!(acc.as_slice(), &[2.0, 0.0, 4.0]);
        let mut short = Vector::zeros(2);
        assert!(dense.add_into(&mut short).is_err());
        assert!(sparse.add_into(&mut short).is_err());
        let (dim, idx, vals) = SparseVector::from_dense(v.as_slice()).into_parts();
        assert_eq!((dim, idx.len(), vals.len()), (3, 2, 2));
        assert_eq!(SparseVector::from_dense(v.as_slice()).wire_bytes(), 32);
    }
}
