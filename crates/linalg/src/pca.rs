//! Principal component analysis via power iteration with deflation.
//!
//! The paper preprocesses MNIST images with PCA to 50 dimensions and
//! CIFAR-10 CNN features with PCA to 100 dimensions (§V-C, Appendix D). This module
//! implements a fitted [`Pca`] transform using the covariance matrix and a simple
//! power-iteration eigensolver with deflation, which is ample for the feature
//! dimensionalities the workloads use.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::Vector;
use crate::Result;

/// Maximum number of power iterations per component.
const MAX_POWER_ITERS: usize = 500;
/// Convergence tolerance on successive eigenvector estimates.
const POWER_TOL: f64 = 1e-10;

/// A fitted PCA transform.
///
/// Projects centered samples onto the top `k` principal components:
/// `z = Vᵀ (x − μ)` where the rows of `V` are orthonormal eigenvectors of the
/// sample covariance matrix.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vector,
    /// `k × d` matrix whose rows are principal directions.
    components: Matrix,
    /// Eigenvalues associated with each retained component (descending).
    explained_variance: Vec<f64>,
}

impl Pca {
    /// Fits a PCA with `k` components to the rows of `data` (an `n × d` matrix).
    ///
    /// Errors if `k` is zero, exceeds the feature dimension, or the data has no
    /// rows.
    pub fn fit(data: &Matrix, k: usize) -> Result<Self> {
        let (n, d) = data.shape();
        if n == 0 {
            return Err(LinalgError::invalid("pca_fit", "data has no rows"));
        }
        if k == 0 || k > d {
            return Err(LinalgError::invalid(
                "pca_fit",
                format!("component count {k} must be in 1..={d}"),
            ));
        }

        let mean = data.column_means();
        // Covariance matrix C = (1/n) Σ (x - μ)(x - μ)ᵀ.
        let mut cov = Matrix::zeros(d, d);
        for r in 0..n {
            let mut centered = data.row_vector(r);
            centered -= &mean;
            cov.add_outer(1.0 / n as f64, &centered, &centered)?;
        }

        let mut components = Matrix::zeros(k, d);
        let mut explained = Vec::with_capacity(k);
        let mut deflated = cov;
        for comp in 0..k {
            let (eigval, eigvec) = power_iteration(&deflated, comp as u64)?;
            explained.push(eigval.max(0.0));
            components.row_mut(comp).copy_from_slice(eigvec.as_slice());
            // Deflate: C ← C − λ v vᵀ.
            deflated.add_outer(-eigval, &eigvec, &eigvec)?;
        }

        Ok(Pca {
            mean,
            components,
            explained_variance: explained,
        })
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.rows()
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.components.cols()
    }

    /// Per-component explained variance (eigenvalues, descending).
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// The fitted mean vector.
    pub fn mean(&self) -> &Vector {
        &self.mean
    }

    /// The `k × d` component matrix (rows are principal directions).
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Projects a single sample onto the retained components.
    pub fn transform_vector(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.input_dim() {
            return Err(LinalgError::vector_mismatch(
                "pca_transform",
                x.len(),
                self.input_dim(),
            ));
        }
        let centered = x - &self.mean;
        self.components.matvec(&centered)
    }

    /// Projects every row of an `n × d` matrix, returning an `n × k` matrix.
    pub fn transform(&self, data: &Matrix) -> Result<Matrix> {
        let (n, d) = data.shape();
        if d != self.input_dim() {
            return Err(LinalgError::DimensionMismatch {
                op: "pca_transform",
                left: (n, d),
                right: self.components.shape(),
            });
        }
        let mut out = Matrix::zeros(n, self.n_components());
        for r in 0..n {
            let z = self.transform_vector(&data.row_vector(r))?;
            out.row_mut(r).copy_from_slice(z.as_slice());
        }
        Ok(out)
    }

    /// Approximately reconstructs a projected sample back into the input space:
    /// `x̂ = Vᵀ z + μ`.
    pub fn inverse_transform_vector(&self, z: &Vector) -> Result<Vector> {
        if z.len() != self.n_components() {
            return Err(LinalgError::vector_mismatch(
                "pca_inverse_transform",
                z.len(),
                self.n_components(),
            ));
        }
        let mut x = self.components.matvec_transpose(z)?;
        x += &self.mean;
        Ok(x)
    }
}

/// Power iteration returning the dominant `(eigenvalue, unit eigenvector)` pair of a
/// symmetric matrix. `salt` deterministically varies the starting vector between
/// deflation rounds.
fn power_iteration(m: &Matrix, salt: u64) -> Result<(f64, Vector)> {
    let d = m.rows();
    if d != m.cols() {
        return Err(LinalgError::DimensionMismatch {
            op: "power_iteration",
            left: m.shape(),
            right: m.shape(),
        });
    }
    // Deterministic, non-degenerate start vector.
    let mut v = Vector::from_vec(
        (0..d)
            .map(|i| {
                let phase = (i as f64 + 1.0) * 0.7368 + salt as f64 * 1.2345;
                phase.sin() + 0.01
            })
            .collect(),
    );
    let norm = v.norm_l2();
    if norm == 0.0 {
        return Err(LinalgError::invalid("power_iteration", "degenerate start"));
    }
    v.scale(1.0 / norm);

    let mut eigval = 0.0;
    for iter in 0..MAX_POWER_ITERS {
        let mut next = m.matvec(&v)?;
        let norm = next.norm_l2();
        if norm < 1e-300 {
            // The matrix annihilates the start vector: remaining eigenvalues are ~0.
            return Ok((0.0, v));
        }
        next.scale(1.0 / norm);
        let delta = (&next - &v).norm_l2().min((&next + &v).norm_l2());
        v = next;
        eigval = m.matvec(&v)?.dot(&v)?;
        if delta < POWER_TOL && iter > 2 {
            return Ok((eigval, v));
        }
    }
    // Power iteration converges slowly for nearly-equal eigenvalues; the estimate is
    // still usable, so return it rather than failing the whole fit.
    Ok((eigval, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::approx_eq;
    use crate::random::normal_vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn anisotropic_data(n: usize, seed: u64) -> Matrix {
        // 3-D data stretched strongly along x, weakly along y, barely along z.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let z = normal_vector(&mut rng, 3);
            rows.push(vec![10.0 * z[0] + 5.0, 2.0 * z[1] - 1.0, 0.1 * z[2]]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn rejects_bad_arguments() {
        let data = anisotropic_data(50, 0);
        assert!(Pca::fit(&data, 0).is_err());
        assert!(Pca::fit(&data, 4).is_err());
        assert!(Pca::fit(&Matrix::zeros(0, 3), 1).is_err());
    }

    #[test]
    fn first_component_aligns_with_dominant_axis() {
        let data = anisotropic_data(400, 1);
        let pca = Pca::fit(&data, 2).unwrap();
        let first = pca.components().row(0);
        // Dominant variance is along the x axis, so |v_x| should dwarf the others.
        assert!(first[0].abs() > 0.99, "first component {first:?}");
        assert!(pca.explained_variance()[0] > pca.explained_variance()[1]);
    }

    #[test]
    fn components_are_orthonormal() {
        let data = anisotropic_data(300, 2);
        let pca = Pca::fit(&data, 3).unwrap();
        for i in 0..3 {
            let vi = pca.components().row_vector(i);
            assert!(approx_eq(vi.norm_l2(), 1.0, 1e-6));
            for j in 0..i {
                let vj = pca.components().row_vector(j);
                assert!(
                    vi.dot(&vj).unwrap().abs() < 1e-4,
                    "components {i} and {j} not orthogonal"
                );
            }
        }
    }

    #[test]
    fn transform_reduces_dimension_and_centers() {
        let data = anisotropic_data(200, 3);
        let pca = Pca::fit(&data, 2).unwrap();
        let projected = pca.transform(&data).unwrap();
        assert_eq!(projected.shape(), (200, 2));
        // Projections of centered data have (approximately) zero mean.
        let means = projected.column_means();
        assert!(means.as_slice().iter().all(|m| m.abs() < 1e-6));
    }

    #[test]
    fn explained_variance_matches_data_variance() {
        let data = anisotropic_data(2000, 4);
        let pca = Pca::fit(&data, 1).unwrap();
        // Variance along x was generated as (10 σ)² = 100.
        let ev = pca.explained_variance()[0];
        assert!((ev - 100.0).abs() / 100.0 < 0.15, "explained variance {ev}");
    }

    #[test]
    fn inverse_transform_round_trips_in_span() {
        let data = anisotropic_data(150, 5);
        let pca = Pca::fit(&data, 3).unwrap();
        let x = data.row_vector(7);
        let z = pca.transform_vector(&x).unwrap();
        let back = pca.inverse_transform_vector(&z).unwrap();
        // With all components retained, the reconstruction is exact up to numerics.
        assert!(x.distance(&back).unwrap() < 1e-6);
    }

    #[test]
    fn transform_rejects_wrong_dimension() {
        let data = anisotropic_data(50, 6);
        let pca = Pca::fit(&data, 2).unwrap();
        assert!(pca.transform_vector(&Vector::zeros(5)).is_err());
        assert!(pca.inverse_transform_vector(&Vector::zeros(3)).is_err());
        assert!(pca.transform(&Matrix::zeros(4, 7)).is_err());
    }
}
