//! Unrolled BLAS-1 kernels with a *fixed* summation order.
//!
//! Every reduction here accumulates into four independent lanes over
//! stride-4 chunks and combines them as `((s0 + s1) + (s2 + s3)) + tail`.
//! The order never depends on alignment, thread count, or call site, so the
//! results are bitwise reproducible run to run — which is what the durable
//! store's recovery proptests and the sharded-aggregation determinism tests
//! rely on. The four lanes break the sequential add dependency chain, letting
//! the CPU retire ~4 FLOPs per cycle instead of stalling on one accumulator.
//!
//! The element-wise kernels (`axpy`, `add_assign`, `scale`) are bitwise
//! identical to their naive loops (each element is independent); only the
//! reductions (`dot`, `sum_sq`) differ from a left-to-right fold — by design,
//! and identically on every run.

/// Dot product `a · b` over equal-length slices, four-lane unrolled.
///
/// Callers are responsible for the length check; mismatched tails are ignored
/// in release builds.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "kernel dot length mismatch");
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        s0 += xa[0] * xb[0];
        s1 += xa[1] * xb[1];
        s2 += xa[2] * xb[2];
        s3 += xa[3] * xb[3];
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    ((s0 + s1) + (s2 + s3)) + tail
}

/// Sum of squares `Σ aᵢ²`, four-lane unrolled (the L2 norm is its sqrt).
#[inline]
pub fn sum_sq(a: &[f64]) -> f64 {
    let mut chunks = a.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for c in &mut chunks {
        s0 += c[0] * c[0];
        s1 += c[1] * c[1];
        s2 += c[2] * c[2];
        s3 += c[3] * c[3];
    }
    let mut tail = 0.0;
    for x in chunks.remainder() {
        tail += x * x;
    }
    ((s0 + s1) + (s2 + s3)) + tail
}

/// Sum of absolute values `Σ |aᵢ|`, four-lane unrolled.
#[inline]
pub fn sum_abs(a: &[f64]) -> f64 {
    let mut chunks = a.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for c in &mut chunks {
        s0 += c[0].abs();
        s1 += c[1].abs();
        s2 += c[2].abs();
        s3 += c[3].abs();
    }
    let mut tail = 0.0;
    for x in chunks.remainder() {
        tail += x.abs();
    }
    ((s0 + s1) + (s2 + s3)) + tail
}

/// In-place `y += alpha * x`, unrolled. Bitwise identical to the naive loop.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "kernel axpy length mismatch");
    let mut cy = y.chunks_exact_mut(4);
    let mut cx = x.chunks_exact(4);
    for (ya, xa) in (&mut cy).zip(&mut cx) {
        ya[0] += alpha * xa[0];
        ya[1] += alpha * xa[1];
        ya[2] += alpha * xa[2];
        ya[3] += alpha * xa[3];
    }
    for (yv, xv) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yv += alpha * xv;
    }
}

/// In-place `y += x`, unrolled. Bitwise identical to the naive loop.
#[inline]
pub fn add_assign(y: &mut [f64], x: &[f64]) {
    debug_assert_eq!(x.len(), y.len(), "kernel add length mismatch");
    let mut cy = y.chunks_exact_mut(4);
    let mut cx = x.chunks_exact(4);
    for (ya, xa) in (&mut cy).zip(&mut cx) {
        ya[0] += xa[0];
        ya[1] += xa[1];
        ya[2] += xa[2];
        ya[3] += xa[3];
    }
    for (yv, xv) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yv += xv;
    }
}

/// In-place `y *= alpha`, unrolled. Bitwise identical to the naive loop.
#[inline]
pub fn scale(alpha: f64, y: &mut [f64]) {
    let mut cy = y.chunks_exact_mut(4);
    for ya in &mut cy {
        ya[0] *= alpha;
        ya[1] *= alpha;
        ya[2] *= alpha;
        ya[3] *= alpha;
    }
    for yv in cy.into_remainder() {
        *yv *= alpha;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..n).map(f).collect()
    }

    #[test]
    fn dot_matches_reference_within_rounding() {
        for n in [0usize, 1, 3, 4, 7, 8, 100, 1001] {
            let a = seq(n, |i| (i as f64 * 0.37).sin());
            let b = seq(n, |i| (i as f64 * 0.11).cos());
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let got = dot(&a, &b);
            assert!(
                (got - naive).abs() <= 1e-12 * naive.abs().max(1.0),
                "n={n}: {got} vs {naive}"
            );
        }
    }

    #[test]
    fn dot_is_deterministic_across_calls() {
        let a = seq(1001, |i| (i as f64 * 0.73).sin() * 1e3);
        let b = seq(1001, |i| (i as f64 * 0.19).cos() * 1e-3);
        let first = dot(&a, &b);
        for _ in 0..10 {
            assert_eq!(first.to_bits(), dot(&a, &b).to_bits());
        }
    }

    #[test]
    fn sums_match_reference() {
        for n in [0usize, 2, 4, 9, 257] {
            let a = seq(n, |i| i as f64 - 3.5);
            let sq: f64 = a.iter().map(|x| x * x).sum();
            let ab: f64 = a.iter().map(|x| x.abs()).sum();
            assert!((sum_sq(&a) - sq).abs() <= 1e-12 * sq.max(1.0));
            assert!((sum_abs(&a) - ab).abs() <= 1e-12 * ab.max(1.0));
        }
    }

    #[test]
    fn axpy_and_add_are_bitwise_naive() {
        for n in [0usize, 1, 5, 64, 103] {
            let x = seq(n, |i| (i as f64 * 0.3).sin());
            let mut y = seq(n, |i| (i as f64 * 0.7).cos());
            let mut naive = y.clone();
            axpy(0.37, &x, &mut y);
            for (nv, xv) in naive.iter_mut().zip(&x) {
                *nv += 0.37 * xv;
            }
            assert_eq!(y, naive, "axpy n={n}");
            add_assign(&mut y, &x);
            for (nv, xv) in naive.iter_mut().zip(&x) {
                *nv += xv;
            }
            assert_eq!(y, naive, "add n={n}");
            scale(1.7, &mut y);
            for nv in naive.iter_mut() {
                *nv *= 1.7;
            }
            assert_eq!(y, naive, "scale n={n}");
        }
    }
}
