//! Stochastic fixed-point quantization for DP-noised gradient transport.
//!
//! Once a gradient has been through the local Laplace mechanism, its useful
//! precision is bounded by the noise scale λ — shipping 52 mantissa bits per
//! coordinate is waste. [`QuantizedVector`] stores each coordinate as a
//! signed 16-bit level times one shared per-message `scale`, cutting the wire
//! cost from 8 to 2 bytes per coordinate (~4× on dense uploads).
//!
//! Rounding is *stochastic*: a value `v` with `t = v/scale` rounds to
//! `⌊t⌋ + Bernoulli(t − ⌊t⌋)`, so the quantizer is unbiased
//! (`E[q·scale] = v`) and quantization acts as zero-mean noise with per-
//! coordinate error `< scale`, bounded well under the DP noise floor by the
//! transport selection rule (`crowd_dp::noise_dominates_quantization`). The
//! Bernoulli draws come from the caller's seeded RNG — the same replayable
//! stream that drew the DP noise — so a device checkin remains a pure
//! function of `(seed, data)` and every determinism suite still holds.
//!
//! Dequantization (`levels[i] as f64 * scale`, element-wise, in index order)
//! is exact integer-times-power-free arithmetic with one rounding per
//! coordinate, identical on every run and every platform.

use crate::error::LinalgError;
use crate::vector::Vector;
use crate::Result;
use rand::Rng;

/// Largest quantization level: levels live in `[-QMAX, QMAX]`.
pub const QMAX: i16 = i16::MAX;

/// A dense vector stored as `i16` levels times one shared `f64` scale.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedVector {
    scale: f64,
    levels: Vec<i16>,
}

impl QuantizedVector {
    /// Quantizes a dense slice with stochastic rounding.
    ///
    /// `scale` is `max|v| / QMAX`, so the largest coordinate uses the full
    /// level range. All-zero inputs get `scale = 0.0` and all-zero levels.
    /// Errors on non-finite input — callers quantize only sanitized, finite
    /// gradients.
    pub fn quantize_stochastic<R: Rng + ?Sized>(dense: &[f64], rng: &mut R) -> Result<Self> {
        let mut max_abs = 0.0f64;
        for &v in dense {
            if !v.is_finite() {
                return Err(LinalgError::invalid(
                    "quantize",
                    "non-finite coordinate cannot be quantized",
                ));
            }
            max_abs = max_abs.max(v.abs());
        }
        let scale = max_abs / f64::from(QMAX);
        let mut levels = Vec::with_capacity(dense.len());
        if scale == 0.0 {
            levels.resize(dense.len(), 0);
        } else {
            let limit = f64::from(QMAX);
            for &v in dense {
                let t = v / scale;
                let floor = t.floor();
                // One Bernoulli draw per coordinate, unconditionally, so the
                // RNG stream position is a function of `dim` alone.
                let up = rng.gen::<f64>() < (t - floor);
                let q = (floor + f64::from(u8::from(up))).clamp(-limit, limit);
                levels.push(q as i16);
            }
        }
        Ok(QuantizedVector { scale, levels })
    }

    /// Rebuilds a quantized vector from wire parts, validating the scale.
    pub fn from_parts(scale: f64, levels: Vec<i16>) -> Result<Self> {
        if !scale.is_finite() || scale < 0.0 {
            return Err(LinalgError::invalid(
                "quantize",
                format!("scale {scale} is not a finite non-negative number"),
            ));
        }
        Ok(QuantizedVector { scale, levels })
    }

    /// Logical dimension (quantization keeps every coordinate).
    pub fn dim(&self) -> usize {
        self.levels.len()
    }

    /// The shared step size: one level equals `scale` in value.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The raw levels, aligned with the original coordinates.
    pub fn levels(&self) -> &[i16] {
        &self.levels
    }

    /// Decomposes into `(scale, levels)` without copying.
    pub fn into_parts(self) -> (f64, Vec<i16>) {
        (self.scale, self.levels)
    }

    /// Dequantizes and adds into a dense accumulator, element-wise in index
    /// order — one deterministic rounding per coordinate.
    pub fn add_into(&self, out: &mut [f64]) -> Result<()> {
        if out.len() != self.levels.len() {
            return Err(LinalgError::vector_mismatch(
                "quantized add",
                out.len(),
                self.levels.len(),
            ));
        }
        for (o, &q) in out.iter_mut().zip(self.levels.iter()) {
            *o += f64::from(q) * self.scale;
        }
        Ok(())
    }

    /// Materializes the dequantized dense form.
    pub fn to_dense(&self) -> Vector {
        Vector::from_vec(
            self.levels
                .iter()
                .map(|&q| f64::from(q) * self.scale)
                .collect(),
        )
    }

    /// Bytes this vector occupies in the checkin wire encoding body
    /// (`u32` dim + `f64` scale + `i16` per coordinate).
    pub fn wire_bytes(&self) -> usize {
        12 + 2 * self.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_error_is_bounded_by_one_step() {
        let mut rng = StdRng::seed_from_u64(7);
        let dense: Vec<f64> = (0..257).map(|i| ((i as f64) * 0.37).sin() * 3.0).collect();
        let q = QuantizedVector::quantize_stochastic(&dense, &mut rng).unwrap();
        assert_eq!(q.dim(), dense.len());
        let back = q.to_dense();
        for (orig, deq) in dense.iter().zip(back.iter()) {
            assert!(
                (orig - deq).abs() <= q.scale(),
                "error {} exceeds step {}",
                (orig - deq).abs(),
                q.scale()
            );
        }
    }

    #[test]
    fn quantization_is_deterministic_per_seed() {
        let dense: Vec<f64> = (0..64).map(|i| ((i as f64) * 0.71).cos()).collect();
        let a =
            QuantizedVector::quantize_stochastic(&dense, &mut StdRng::seed_from_u64(3)).unwrap();
        let b =
            QuantizedVector::quantize_stochastic(&dense, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(a, b);
        let c =
            QuantizedVector::quantize_stochastic(&dense, &mut StdRng::seed_from_u64(4)).unwrap();
        // A different seed may round some coordinates the other way.
        assert_eq!(c.dim(), a.dim());
    }

    #[test]
    fn stochastic_rounding_is_unbiased_on_average() {
        let mut rng = StdRng::seed_from_u64(11);
        let v = [0.3f64; 1];
        let trials = 4000;
        let mut sum = 0.0;
        for _ in 0..trials {
            let q = QuantizedVector::quantize_stochastic(&v, &mut rng).unwrap();
            sum += q.to_dense().as_slice()[0];
        }
        let mean = sum / trials as f64;
        assert!((mean - 0.3).abs() < 1e-3, "biased mean {mean}");
    }

    #[test]
    fn zero_and_extreme_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        let z = QuantizedVector::quantize_stochastic(&[0.0, -0.0, 0.0], &mut rng).unwrap();
        assert_eq!(z.scale(), 0.0);
        assert_eq!(z.levels(), &[0, 0, 0]);
        let mut acc = [1.0, 2.0, 3.0];
        z.add_into(&mut acc).unwrap();
        assert_eq!(acc, [1.0, 2.0, 3.0]);
        // The max-magnitude coordinate saturates at ±QMAX, never overflows.
        let m = QuantizedVector::quantize_stochastic(&[-5.0, 5.0], &mut rng).unwrap();
        assert!(m.levels().iter().all(|&q| q.abs() >= QMAX - 1));
        assert!(QuantizedVector::quantize_stochastic(&[f64::NAN], &mut rng).is_err());
        assert!(QuantizedVector::quantize_stochastic(&[f64::INFINITY], &mut rng).is_err());
        assert!(QuantizedVector::from_parts(f64::NAN, vec![0]).is_err());
        assert!(QuantizedVector::from_parts(-1.0, vec![0]).is_err());
        assert!(z.add_into(&mut [0.0; 2]).is_err());
    }

    #[test]
    fn wire_bytes_counts_body() {
        let mut rng = StdRng::seed_from_u64(2);
        let q = QuantizedVector::quantize_stochastic(&[1.0; 10], &mut rng).unwrap();
        assert_eq!(q.wire_bytes(), 12 + 20);
    }
}
