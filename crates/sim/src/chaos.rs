//! Deterministic, seed-driven fault and churn planning.
//!
//! The paper's crowd is made of unreliable smart devices: connections drop,
//! uploads arrive twice or half-finished, devices join late, disappear
//! mid-task, or straggle behind everyone else, and the server itself can die
//! and restart. A [`FaultPlan`] compresses all of that into a single `u64`
//! seed: every decision — whether a particular wire exchange is dropped,
//! delayed, duplicated, or truncated; when a device joins, retires, or
//! straggles; at which server iterations a crash is scripted — is a pure
//! function of `(seed, device, op)` through the vendored deterministic rng.
//! Replaying a seed replays the exact fault schedule, which is what lets the
//! chaos suite print `CHAOS_SEED=n` as a complete repro for any failure.
//!
//! The plan only *decides*; injecting the faults is the transport layer's job
//! (`crowd-net`), and applying churn/crashes is the chaos driver's. Keeping
//! the decisions here, behind pure functions, means the decisions cannot be
//! perturbed by thread timing: two runs with the same seed and the same
//! per-device operation sequence see identical faults.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What the transport layer should do to one wire exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver the exchange untouched.
    None,
    /// Fail before anything reaches the wire: the server never sees the
    /// request (a connection that died on dial).
    DropBeforeSend,
    /// Transmit the full request, then fail before reading the reply: the
    /// server *does* process the request, but the client cannot know it did.
    /// This is the case that makes retried checkins need a dedup nonce.
    DropAfterSend,
    /// Sleep this long before sending (a straggling radio), then deliver.
    DelaySend {
        /// Milliseconds to stall before the send.
        ms: u64,
    },
    /// Transmit the request frame twice on one connection: the server sees
    /// the checkin two times and must deduplicate.
    DuplicateFrame,
    /// Transmit a strict prefix of the frame and hang up mid-payload; the
    /// server must discard the partial frame without desynchronizing.
    TruncateFrame,
}

/// Mixes `(seed, device, op)` into an independent stream seed (SplitMix64
/// finalizer over the xor-combined words, applied twice to decorrelate the
/// low-entropy inputs).
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.rotate_left(32);
    for _ in 0..2 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// Seed-derived per-exchange transport faults.
///
/// Each wire exchange a device performs gets an operation number (0, 1, 2, …
/// in the order the device issues them); [`TransportFaults::decide`] maps
/// `(device, op)` to a [`FaultAction`] deterministically. The overall fault
/// rate and the mix of fault kinds are themselves derived from the seed, so a
/// seed sweep covers gentle and hostile networks alike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportFaults {
    seed: u64,
    /// Probability that any given exchange is faulted at all.
    fault_rate: f64,
    /// Upper bound for sampled [`FaultAction::DelaySend`] stalls.
    max_delay_ms: u64,
}

impl TransportFaults {
    /// Derives the fault intensity from the seed: fault rates between 5% and
    /// 30%, delays up to `max_delay_ms`.
    pub fn from_seed(seed: u64, max_delay_ms: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(mix(seed, 0xFA417, 0));
        TransportFaults {
            seed,
            fault_rate: rng.gen_range(0.05..0.30),
            max_delay_ms: max_delay_ms.max(1),
        }
    }

    /// A shim that never faults (the fault-free reference configuration).
    pub fn none() -> Self {
        TransportFaults {
            seed: 0,
            fault_rate: 0.0,
            max_delay_ms: 1,
        }
    }

    /// The fraction of exchanges that will be faulted.
    pub fn fault_rate(&self) -> f64 {
        self.fault_rate
    }

    /// The fault for device `device_id`'s `op`-th wire exchange. Pure: the
    /// same arguments always produce the same action.
    pub fn decide(&self, device_id: u64, op: u64) -> FaultAction {
        if self.fault_rate <= 0.0 {
            return FaultAction::None;
        }
        let mut rng = StdRng::seed_from_u64(mix(self.seed, device_id, op));
        if !rng.gen_bool(self.fault_rate) {
            return FaultAction::None;
        }
        match rng.gen_range(0..5u32) {
            0 => FaultAction::DropBeforeSend,
            1 => FaultAction::DropAfterSend,
            2 => FaultAction::DelaySend {
                ms: rng.gen_range(1..=self.max_delay_ms),
            },
            3 => FaultAction::DuplicateFrame,
            _ => FaultAction::TruncateFrame,
        }
    }
}

/// Seed-derived device churn: late joiners, mid-experiment retirement, and
/// stragglers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnSchedule {
    seed: u64,
    /// Latest round (exclusive) at which a late joiner may first appear.
    max_join_round: u64,
    /// Straggler stall per checkin, milliseconds (0 = device never straggles).
    max_straggle_ms: u64,
}

impl ChurnSchedule {
    /// Derives a churn schedule. `max_join_round` bounds how late a device may
    /// join; `max_straggle_ms` bounds per-checkin straggler stalls.
    pub fn from_seed(seed: u64, max_join_round: u64, max_straggle_ms: u64) -> Self {
        ChurnSchedule {
            seed,
            max_join_round,
            max_straggle_ms,
        }
    }

    /// The round at which the device starts observing samples. About a third
    /// of devices join late; the rest are present from round 0.
    pub fn join_round(&self, device_id: u64) -> u64 {
        let mut rng = StdRng::seed_from_u64(mix(self.seed, device_id, 0x10));
        if self.max_join_round > 0 && rng.gen_bool(1.0 / 3.0) {
            rng.gen_range(1..=self.max_join_round)
        } else {
            0
        }
    }

    /// After how many acknowledged checkins the device retires (leaves the
    /// experiment with data still unseen), or `None` if it stays to the end.
    /// About a quarter of devices retire early.
    pub fn retire_after_checkins(&self, device_id: u64) -> Option<u64> {
        let mut rng = StdRng::seed_from_u64(mix(self.seed, device_id, 0x20));
        if rng.gen_bool(0.25) {
            Some(rng.gen_range(1..=4u64))
        } else {
            None
        }
    }

    /// Whether the device drops out of cohort round `round_id` mid-round: it
    /// checks out, derives a Selected role, and then vanishes without ever
    /// submitting its masked share. About a fifth of `(device, round)` pairs
    /// drop; the aggregator must finalize such rounds at their deadline from
    /// the survivors alone, compensating the missing pairwise masks.
    pub fn round_dropout(&self, device_id: u64, round_id: u64) -> bool {
        let mut rng =
            StdRng::seed_from_u64(mix(self.seed, device_id ^ round_id.rotate_left(16), 0x40));
        rng.gen_bool(0.2)
    }

    /// Milliseconds this device stalls before every checkin (its straggler
    /// latency). About a quarter of devices straggle; their slow checkins are
    /// what pushes partially filled epochs onto the aggregator's idle-flush
    /// path.
    pub fn straggle_ms(&self, device_id: u64) -> u64 {
        let mut rng = StdRng::seed_from_u64(mix(self.seed, device_id, 0x30));
        if self.max_straggle_ms > 0 && rng.gen_bool(0.25) {
            rng.gen_range(1..=self.max_straggle_ms)
        } else {
            0
        }
    }
}

/// Scripted server crash points: after the server's applied-epoch count
/// reaches each listed iteration, the driver crash-stops (`kill()`) and
/// restarts it from its data directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashPlan {
    /// Ascending iteration counts at which to crash.
    pub points: Vec<u64>,
}

impl CrashPlan {
    /// Derives 1–3 ascending crash points within `max_iterations`.
    pub fn from_seed(seed: u64, max_iterations: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(mix(seed, 0xC4A54, 0));
        let crashes = rng.gen_range(1..=3usize);
        let mut points: Vec<u64> = (0..crashes)
            .map(|_| rng.gen_range(1..max_iterations.max(2)))
            .collect();
        points.sort_unstable();
        points.dedup();
        CrashPlan { points }
    }
}

/// A complete seeded fault schedule: transport faults, optional churn, and
/// optional scripted crashes.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The seed everything is derived from.
    pub seed: u64,
    /// Per-exchange transport faults.
    pub transport: TransportFaults,
    /// Device churn (late join / retirement / stragglers); `None` = a stable
    /// fleet.
    pub churn: Option<ChurnSchedule>,
    /// Scripted server crash/restart points; `None` = the server stays up.
    pub crash: Option<CrashPlan>,
}

impl FaultPlan {
    /// No faults at all — the reference schedule every chaotic run is compared
    /// against.
    pub fn fault_free(seed: u64) -> Self {
        FaultPlan {
            seed,
            transport: TransportFaults::none(),
            churn: None,
            crash: None,
        }
    }

    /// Faults confined to the transport layer: drops, delays, duplicates, and
    /// truncations, but a stable fleet and an always-up server. Retries plus
    /// checkin dedup must make such a run land bitwise on the fault-free
    /// reference.
    pub fn transport_only(seed: u64) -> Self {
        FaultPlan {
            seed,
            transport: TransportFaults::from_seed(seed, 10),
            churn: None,
            crash: None,
        }
    }

    /// The round-mode storm: transport faults plus churn (whose schedule also
    /// scripts mid-round cohort dropouts via
    /// [`ChurnSchedule::round_dropout`]), but an always-up server. Used by the
    /// chaos suite when cohort rounds are enabled.
    pub fn rounds(seed: u64) -> Self {
        FaultPlan {
            seed,
            transport: TransportFaults::from_seed(seed, 10),
            churn: Some(ChurnSchedule::from_seed(seed, 6, 8)),
            crash: None,
        }
    }

    /// The full storm: transport faults, churn, and scripted server crashes
    /// (the crash points are capped by `max_iterations` of the run).
    pub fn full(seed: u64, max_iterations: u64) -> Self {
        FaultPlan {
            seed,
            transport: TransportFaults::from_seed(seed, 10),
            churn: Some(ChurnSchedule::from_seed(seed, 6, 8)),
            crash: Some(CrashPlan::from_seed(seed, max_iterations)),
        }
    }

    /// `true` when every fault the plan can inject lives in the transport
    /// layer (no churn, no crashes).
    pub fn is_transport_only(&self) -> bool {
        self.churn.is_none() && self.crash.is_none()
    }

    /// One-line human-readable anatomy of the plan, for trace headers.
    pub fn describe(&self) -> String {
        format!(
            "FaultPlan {{ seed: {}, transport_fault_rate: {:.3}, churn: {}, crash_points: {:?} }}",
            self.seed,
            self.transport.fault_rate(),
            self.churn.is_some(),
            self.crash
                .as_ref()
                .map(|c| c.points.as_slice())
                .unwrap_or(&[]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = TransportFaults::from_seed(42, 10);
        let b = TransportFaults::from_seed(42, 10);
        for device in 0..8u64 {
            for op in 0..64u64 {
                assert_eq!(a.decide(device, op), b.decide(device, op));
            }
        }
        let plan1 = FaultPlan::full(7, 100);
        let plan2 = FaultPlan::full(7, 100);
        assert_eq!(plan1, plan2);
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = TransportFaults::from_seed(1, 10);
        let b = TransportFaults::from_seed(2, 10);
        let differs = (0..256u64).any(|op| a.decide(0, op) != b.decide(0, op));
        assert!(differs, "two seeds produced identical 256-op schedules");
    }

    #[test]
    fn fault_rate_is_bounded_and_realized() {
        for seed in 0..20u64 {
            let faults = TransportFaults::from_seed(seed, 10);
            assert!((0.05..0.30).contains(&faults.fault_rate()));
            let hits = (0..1000u64)
                .filter(|&op| faults.decide(3, op) != FaultAction::None)
                .count();
            let expected = faults.fault_rate() * 1000.0;
            assert!(
                (hits as f64) > expected * 0.4 && (hits as f64) < expected * 2.0,
                "seed {seed}: {hits} faults vs expected ~{expected:.0}"
            );
        }
    }

    #[test]
    fn fault_free_plan_never_faults() {
        let plan = FaultPlan::fault_free(9);
        assert!(plan.is_transport_only());
        for op in 0..512u64 {
            assert_eq!(plan.transport.decide(0, op), FaultAction::None);
        }
    }

    #[test]
    fn churn_schedule_spans_all_behaviours() {
        let churn = ChurnSchedule::from_seed(11, 6, 8);
        let mut late = 0;
        let mut retired = 0;
        let mut stragglers = 0;
        for device in 0..64u64 {
            let join = churn.join_round(device);
            assert!(join <= 6);
            if join > 0 {
                late += 1;
            }
            if let Some(k) = churn.retire_after_checkins(device) {
                assert!((1..=4).contains(&k));
                retired += 1;
            }
            let stall = churn.straggle_ms(device);
            assert!(stall <= 8);
            if stall > 0 {
                stragglers += 1;
            }
        }
        assert!(late > 0, "no late joiners across 64 devices");
        assert!(retired > 0, "no retirements across 64 devices");
        assert!(stragglers > 0, "no stragglers across 64 devices");
    }

    #[test]
    fn round_dropouts_are_deterministic_and_realized() {
        let churn = ChurnSchedule::from_seed(17, 6, 8);
        let again = ChurnSchedule::from_seed(17, 6, 8);
        let mut drops = 0;
        for device in 0..16u64 {
            for round in 1..=16u64 {
                assert_eq!(
                    churn.round_dropout(device, round),
                    again.round_dropout(device, round)
                );
                if churn.round_dropout(device, round) {
                    drops += 1;
                }
            }
        }
        // ~20% of 256 pairs; loose bounds so the test is not seed-brittle.
        assert!(
            (10..120).contains(&drops),
            "{drops} dropouts across 256 (device, round) pairs"
        );
        let plan = FaultPlan::rounds(17);
        assert!(plan.churn.is_some() && plan.crash.is_none());
        assert!(!plan.is_transport_only());
    }

    #[test]
    fn crash_plan_is_sorted_and_bounded() {
        for seed in 0..20u64 {
            let plan = CrashPlan::from_seed(seed, 40);
            assert!(!plan.points.is_empty() && plan.points.len() <= 3);
            assert!(plan.points.windows(2).all(|w| w[0] < w[1]));
            assert!(plan.points.iter().all(|&p| (1..40).contains(&p)));
        }
    }

    #[test]
    fn describe_names_the_seed() {
        let plan = FaultPlan::transport_only(123);
        let text = plan.describe();
        assert!(text.contains("123"));
        assert!(plan.is_transport_only());
        let full = FaultPlan::full(123, 50);
        assert!(!full.is_transport_only());
        assert!(full.describe().contains("churn: true"));
    }
}
