//! A deterministic future-event queue with a virtual clock.

use crate::event::Event;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-heap of future events plus the current simulated time.
///
/// The queue refuses to schedule events in the past relative to its clock, and
/// advances the clock to each event's timestamp as it is popped — the standard
/// next-event-time-advance discrete-event loop.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Event<T>>>,
    now: f64,
    next_sequence: u64,
    processed: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0.0,
            next_sequence: 0,
            processed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedules `payload` for delivery at absolute time `time`. Times earlier
    /// than the current clock are clamped to "now" (zero-delay delivery) rather
    /// than violating causality.
    pub fn schedule(&mut self, time: f64, payload: T) {
        let time = if time.is_nan() || time < self.now {
            self.now
        } else {
            time
        };
        let event = Event::new(time, self.next_sequence, payload);
        self.next_sequence += 1;
        self.heap.push(Reverse(event));
    }

    /// Schedules `payload` for delivery `delay` time units from now (negative
    /// delays are treated as zero).
    pub fn schedule_after(&mut self, delay: f64, payload: T) {
        let delay = if delay.is_nan() || delay < 0.0 {
            0.0
        } else {
            delay
        };
        self.schedule(self.now + delay, payload);
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let Reverse(event) = self.heap.pop()?;
        self.now = event.time;
        self.processed += 1;
        Some(event)
    }

    /// Drains and processes events with `handler` until the queue is empty or
    /// `max_events` have been processed, returning the number processed. The
    /// handler may schedule further events through the mutable queue reference it
    /// receives.
    pub fn run<F>(&mut self, max_events: u64, mut handler: F) -> u64
    where
        F: FnMut(&mut Self, Event<T>),
    {
        let mut handled = 0;
        while handled < max_events {
            match self.pop() {
                Some(event) => {
                    handler(self, event);
                    handled += 1;
                }
                None => break,
            }
        }
        handled
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_and_advances_clock() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "late");
        q.schedule(1.0, "early");
        q.schedule(3.0, "middle");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(1.0));
        assert_eq!(q.pop().unwrap().payload, "early");
        assert_eq!(q.now(), 1.0);
        assert_eq!(q.pop().unwrap().payload, "middle");
        assert_eq!(q.pop().unwrap().payload, "late");
        assert_eq!(q.now(), 5.0);
        assert!(q.pop().is_none());
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn equal_times_preserve_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(2.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn past_and_nan_times_are_clamped() {
        let mut q = EventQueue::new();
        q.schedule(10.0, "a");
        q.pop();
        assert_eq!(q.now(), 10.0);
        q.schedule(5.0, "past");
        assert_eq!(q.peek_time(), Some(10.0));
        q.schedule(f64::NAN, "nan");
        assert_eq!(q.len(), 2);
        q.schedule_after(-3.0, "negative delay");
        assert_eq!(q.peek_time(), Some(10.0));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(4.0, "base");
        q.pop();
        q.schedule_after(2.5, "later");
        assert_eq!(q.peek_time(), Some(6.5));
    }

    #[test]
    fn run_processes_and_allows_rescheduling() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 0u32);
        // Each event schedules a follow-up until the payload reaches 5.
        let handled = q.run(100, |queue, event| {
            if event.payload < 5 {
                queue.schedule_after(1.0, event.payload + 1);
            }
        });
        assert_eq!(handled, 6);
        assert!(q.is_empty());
        assert_eq!(q.now(), 6.0);
    }

    #[test]
    fn run_respects_max_events() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(i as f64, i);
        }
        let handled = q.run(3, |_, _| {});
        assert_eq!(handled, 3);
        assert_eq!(q.len(), 7);
    }
}
