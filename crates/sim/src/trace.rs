//! Lightweight simulation trace collection.
//!
//! The Crowd-ML simulation (in `crowd-core`) records per-event counters and
//! latency observations here so experiments can report, e.g., how many checkins
//! each device completed or how stale the parameters were at checkin time —
//! the quantities the scalability analysis of §IV-B reasons about.
//!
//! The string-keyed counter path is a legacy surface: the concurrent runtimes
//! (`crowd-agg`, the servers) have moved to the typed, allocation-free
//! registry in `crowd-telemetry` and expose [`MetricsSnapshot`]s instead.
//! `TraceCollector` remains the single-threaded simulation's collector; prefer
//! `crowd_telemetry::Registry` for anything on a request path.
//!
//! [`MetricsSnapshot`]: crowd_telemetry::MetricsSnapshot

use crowd_telemetry::HistogramBins;
use std::collections::HashMap;

/// Sub-unit resolution of the latency histogram: observations are bucketed in
/// 1/1000ths of the caller's (arbitrary) latency unit, so fractional sim-time
/// deltas keep three decimal digits before the log₂ bucketing coarsens them.
const LATENCY_SCALE: f64 = 1e3;

/// Named counters plus latency samples.
///
/// Latencies are backed by a fixed-size log₂ histogram plus exact running
/// aggregates — bounded memory however long the run, unlike the unbounded
/// `Vec<f64>` it replaces. [`TraceCollector::mean_latency`] and
/// [`TraceCollector::max_latency`] stay exact; percentiles come from the
/// bucketed [`TraceCollector::latency_bins`].
#[derive(Debug, Clone, Default)]
pub struct TraceCollector {
    counters: HashMap<String, u64>,
    latency_bins: HistogramBins,
    latency_count: u64,
    latency_sum: f64,
    latency_max: f64,
}

impl TraceCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        TraceCollector::default()
    }

    /// Increments a named counter by one.
    ///
    /// Legacy string-keyed path (allocates per distinct name): new concurrent
    /// code should use `crowd_telemetry::CounterId` through a `Registry`.
    pub fn count(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increments a named counter by `amount` (legacy string-keyed path; see
    /// [`TraceCollector::count`]).
    pub fn add(&mut self, name: &str, amount: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += amount;
    }

    /// Reads a counter (zero when never incremented).
    pub fn get(&self, name: &str) -> u64 {
        *self.counters.get(name).unwrap_or(&0)
    }

    /// Records a latency observation (negative or non-finite values are ignored).
    pub fn record_latency(&mut self, value: f64) {
        if value.is_finite() && value >= 0.0 {
            self.latency_count += 1;
            self.latency_sum += value;
            self.latency_max = self.latency_max.max(value);
            // Saturating cast: (value * 1e3) above u64::MAX clamps to the top
            // bucket rather than wrapping (`as` saturates for float→int).
            self.latency_bins.record((value * LATENCY_SCALE) as u64);
        }
    }

    /// Number of recorded latency observations.
    pub fn latency_count(&self) -> usize {
        self.latency_count as usize
    }

    /// Mean recorded latency, or `None` when nothing was recorded. Exact: the
    /// running f64 sum is kept alongside the bucketed histogram.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.latency_count == 0 {
            None
        } else {
            Some(self.latency_sum / self.latency_count as f64)
        }
    }

    /// Maximum recorded latency, or `None` when nothing was recorded. Exact.
    pub fn max_latency(&self) -> Option<f64> {
        if self.latency_count == 0 {
            None
        } else {
            Some(self.latency_max)
        }
    }

    /// A latency quantile in the caller's latency unit, or `None` when nothing
    /// was recorded. Bucketed: the log₂ histogram's upper bound for the
    /// quantile, i.e. an overestimate by at most 2× (resolution 1/1000 unit).
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        if self.latency_count == 0 {
            None
        } else {
            Some(self.latency_bins.quantile(q) as f64 / LATENCY_SCALE)
        }
    }

    /// The raw latency histogram (values scaled by 1000; see
    /// [`TraceCollector::latency_quantile`] for unit-domain reads).
    pub fn latency_bins(&self) -> &HistogramBins {
        &self.latency_bins
    }

    /// All counters, sorted by name (for stable reporting).
    pub fn counters(&self) -> Vec<(String, u64)> {
        let mut entries: Vec<(String, u64)> =
            self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect();
        entries.sort();
        entries
    }

    /// Merges another collector into this one (summing counters, merging
    /// latency histograms and aggregates).
    pub fn merge(&mut self, other: &TraceCollector) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        self.latency_bins.merge(&other.latency_bins);
        self.latency_count += other.latency_count;
        self.latency_sum += other.latency_sum;
        self.latency_max = self.latency_max.max(other.latency_max);
    }

    /// Clears all recorded data.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.latency_bins = HistogramBins::new();
        self.latency_count = 0;
        self.latency_sum = 0.0;
        self.latency_max = 0.0;
    }
}

/// A thread-safe [`TraceCollector`]: the same named counters and latency
/// samples, but shareable across worker threads.
///
/// The single-threaded simulation keeps using [`TraceCollector`] directly; this
/// wrapper exists for concurrent runtimes (the `crowd-agg` aggregation workers)
/// that want to report into the same vocabulary of counters. Recording takes a
/// short internal lock, so it is meant for coarse events (epoch merges, queue
/// rejections), not per-sample hot paths.
#[derive(Debug, Default)]
pub struct SharedTrace {
    // audit:lock(sim.trace, 90)
    inner: std::sync::Mutex<TraceCollector>,
}

impl SharedTrace {
    /// Creates an empty shared collector.
    pub fn new() -> Self {
        SharedTrace::default()
    }

    /// Increments a named counter by one.
    pub fn count(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increments a named counter by `amount`.
    pub fn add(&self, name: &str, amount: u64) {
        self.lock().add(name, amount);
    }

    /// Reads a counter (zero when never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.lock().get(name)
    }

    /// Records a latency observation (negative or non-finite values are ignored).
    pub fn record_latency(&self, value: f64) {
        self.lock().record_latency(value);
    }

    /// A point-in-time copy of the collected data.
    pub fn snapshot(&self) -> TraceCollector {
        self.lock().clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceCollector> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut t = TraceCollector::new();
        assert_eq!(t.get("checkins"), 0);
        t.count("checkins");
        t.count("checkins");
        t.add("samples", 10);
        assert_eq!(t.get("checkins"), 2);
        assert_eq!(t.get("samples"), 10);
        let listed = t.counters();
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[0].0, "checkins");
    }

    #[test]
    fn latency_statistics() {
        let mut t = TraceCollector::new();
        assert_eq!(t.mean_latency(), None);
        assert_eq!(t.max_latency(), None);
        t.record_latency(1.0);
        t.record_latency(3.0);
        t.record_latency(-1.0); // ignored
        t.record_latency(f64::NAN); // ignored
        assert_eq!(t.latency_count(), 2);
        assert_eq!(t.mean_latency(), Some(2.0));
        assert_eq!(t.max_latency(), Some(3.0));
    }

    #[test]
    fn shared_trace_accumulates_across_threads() {
        use std::sync::Arc;
        let shared = Arc::new(SharedTrace::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    t.count("events");
                }
                t.record_latency(1.5);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.get("events"), 400);
        let snap = shared.snapshot();
        assert_eq!(snap.get("events"), 400);
        assert_eq!(snap.latency_count(), 4);
    }

    #[test]
    fn merge_and_reset() {
        let mut a = TraceCollector::new();
        a.count("x");
        a.record_latency(1.0);
        let mut b = TraceCollector::new();
        b.add("x", 4);
        b.count("y");
        b.record_latency(5.0);
        a.merge(&b);
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("y"), 1);
        assert_eq!(a.latency_count(), 2);
        a.reset();
        assert_eq!(a.get("x"), 0);
        assert_eq!(a.latency_count(), 0);
    }
}
