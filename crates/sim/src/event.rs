//! Timestamped events with a deterministic total order.

use std::cmp::Ordering;

/// A scheduled event: a payload to be delivered at a simulated time.
///
/// Events are ordered by `(time, sequence)` so that two events scheduled for the
/// same instant are processed in insertion order, which keeps simulations
/// deterministic for a fixed seed.
#[derive(Debug, Clone)]
pub struct Event<T> {
    /// Simulated delivery time (arbitrary units; the Crowd-ML simulation uses
    /// "sample arrivals" as its clock).
    pub time: f64,
    /// Monotonic sequence number assigned by the queue, used as a tie-breaker.
    pub sequence: u64,
    /// The event payload.
    pub payload: T,
}

impl<T> Event<T> {
    /// Creates an event (normally done by [`crate::EventQueue::schedule`]).
    pub fn new(time: f64, sequence: u64, payload: T) -> Self {
        Event {
            time,
            sequence,
            payload,
        }
    }
}

impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.sequence == other.sequence
    }
}

impl<T> Eq for Event<T> {}

impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Total order: earlier time first, then lower sequence. NaN times are
        // pushed to the end deterministically.
        match self.time.partial_cmp(&other.time) {
            Some(ord) if ord != Ordering::Equal => ord,
            Some(_) => self.sequence.cmp(&other.sequence),
            None => {
                let self_nan = self.time.is_nan();
                let other_nan = other.time.is_nan();
                match (self_nan, other_nan) {
                    (true, false) => Ordering::Greater,
                    (false, true) => Ordering::Less,
                    _ => self.sequence.cmp(&other.sequence),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_by_time_then_sequence() {
        let a = Event::new(1.0, 0, "a");
        let b = Event::new(2.0, 1, "b");
        let c = Event::new(1.0, 2, "c");
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
        assert_eq!(a, Event::new(1.0, 0, "different payload"));
    }

    #[test]
    fn nan_times_sort_last() {
        let good = Event::new(5.0, 0, ());
        let nan = Event::new(f64::NAN, 1, ());
        assert!(good < nan);
        assert!(nan > good);
        let nan2 = Event::new(f64::NAN, 2, ());
        assert!(nan < nan2);
    }
}
