//! Discrete-event simulation substrate for asynchronous device/server interaction.
//!
//! The paper evaluates Crowd-ML "in a simulated environment instead of on a real
//! network" so the number of devices and the maximum delay can be controlled
//! exactly (§V-C): communication delays are drawn uniformly from `[0, τ]` per
//! message, and the interesting quantity is how many updates other devices manage
//! to push between one device's checkout and its checkin
//! (`Δ = τ · M · F_s` samples, §IV-B3).
//!
//! This crate provides the generic machinery — a deterministic [`EventQueue`],
//! [`DelayModel`]s, and a [`trace::TraceCollector`] — on top of which `crowd-core`
//! builds the actual Crowd-ML device/server simulation.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod delay;
pub mod event;
pub mod queue;
pub mod trace;

pub use chaos::{ChurnSchedule, CrashPlan, FaultAction, FaultPlan, TransportFaults};
pub use delay::DelayModel;
pub use event::Event;
pub use queue::EventQueue;
pub use trace::{SharedTrace, TraceCollector};
