//! Network-delay models for the simulated environment.
//!
//! §V-C of the paper: "The τ is the maximum delay, and the actual delays are
//! sampled randomly and uniformly from [0, τ] for each communication instance",
//! with a footnote that any other distribution could be used. [`DelayModel`]
//! provides the uniform model plus the constant and exponential alternatives used
//! in ablations.

use rand::Rng;

/// How long one message (checkout request, parameter download, or checkin upload)
/// takes to traverse the network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayModel {
    /// No delay at all (the idealized setting of Figs. 4–5).
    None,
    /// Every message takes exactly this long.
    Constant(f64),
    /// Delays drawn uniformly from `[0, max]` — the paper's model (Fig. 6).
    Uniform {
        /// Maximum delay τ.
        max: f64,
    },
    /// Exponentially distributed delays with the given mean (heavy-tail ablation).
    Exponential {
        /// Mean delay.
        mean: f64,
    },
}

impl DelayModel {
    /// Samples one delay. Always non-negative and finite.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            DelayModel::None => 0.0,
            DelayModel::Constant(d) => d.max(0.0),
            DelayModel::Uniform { max } => {
                if max <= 0.0 {
                    0.0
                } else {
                    rng.gen::<f64>() * max
                }
            }
            DelayModel::Exponential { mean } => {
                if mean <= 0.0 {
                    0.0
                } else {
                    let u: f64 = 1.0 - rng.gen::<f64>();
                    -mean * u.ln()
                }
            }
        }
    }

    /// The expected delay of the model.
    pub fn mean(&self) -> f64 {
        match *self {
            DelayModel::None => 0.0,
            DelayModel::Constant(d) => d.max(0.0),
            DelayModel::Uniform { max } => max.max(0.0) / 2.0,
            DelayModel::Exponential { mean } => mean.max(0.0),
        }
    }

    /// The maximum possible delay (`f64::INFINITY` for the exponential model).
    pub fn max(&self) -> f64 {
        match *self {
            DelayModel::None => 0.0,
            DelayModel::Constant(d) => d.max(0.0),
            DelayModel::Uniform { max } => max.max(0.0),
            DelayModel::Exponential { mean } => {
                if mean <= 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_and_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(DelayModel::None.sample(&mut rng), 0.0);
        assert_eq!(DelayModel::Constant(3.0).sample(&mut rng), 3.0);
        assert_eq!(DelayModel::Constant(-1.0).sample(&mut rng), 0.0);
        assert_eq!(DelayModel::None.mean(), 0.0);
        assert_eq!(DelayModel::Constant(3.0).mean(), 3.0);
        assert_eq!(DelayModel::Constant(3.0).max(), 3.0);
    }

    #[test]
    fn uniform_respects_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = DelayModel::Uniform { max: 8.0 };
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| model.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&d| (0.0..8.0).contains(&d)));
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "uniform mean {mean}");
        assert_eq!(model.mean(), 4.0);
        assert_eq!(model.max(), 8.0);
        assert_eq!(DelayModel::Uniform { max: 0.0 }.sample(&mut rng), 0.0);
    }

    #[test]
    fn exponential_mean_and_positivity() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = DelayModel::Exponential { mean: 2.0 };
        let n = 30_000;
        let samples: Vec<f64> = (0..n).map(|_| model.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&d| d >= 0.0 && d.is_finite()));
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "exponential mean {mean}");
        assert_eq!(model.mean(), 2.0);
        assert_eq!(model.max(), f64::INFINITY);
        assert_eq!(DelayModel::Exponential { mean: 0.0 }.sample(&mut rng), 0.0);
        assert_eq!(DelayModel::Exponential { mean: -1.0 }.max(), 0.0);
    }
}
