//! Full-gradient (batch) training: the "Central (batch)" baseline.
//!
//! The paper's strongest baseline trains on the pooled data with a batch
//! algorithm; its error appears as a horizontal line in Figs. 4–9 because it is
//! "not incremental and therefore is a constant". We implement it as full-gradient
//! descent with the projected update and a decreasing step size, run to a fixed
//! iteration budget, which reaches the same optimum as any other batch solver for
//! these convex risks.

use crate::error::LearningError;
use crate::metrics::error_rate;
use crate::model::{minibatch_statistics_into, Model};
use crate::schedule::LearningRate;
use crate::Result;
use crowd_data::Dataset;
use crowd_linalg::ops::project_l2_ball;
use crowd_linalg::Vector;

/// Configuration for batch (full-gradient) training.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchConfig {
    /// Number of full-gradient iterations.
    pub iterations: usize,
    /// Learning-rate schedule.
    pub schedule: LearningRate,
    /// L2 regularization strength λ.
    pub lambda: f64,
    /// Radius of the parameter ball for the projection.
    pub radius: f64,
    /// Stop early when the full-gradient L2 norm falls below this tolerance.
    pub gradient_tolerance: f64,
}

impl BatchConfig {
    /// Default configuration: 200 iterations of `η(t) = 2/√t`, no regularization.
    pub fn new() -> Self {
        BatchConfig {
            iterations: 200,
            schedule: LearningRate::InvSqrt { c: 2.0 },
            lambda: 0.0,
            radius: 100.0,
            gradient_tolerance: 1e-8,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.iterations == 0 {
            return Err(LearningError::InvalidHyperparameter {
                name: "iterations",
                value: 0.0,
            });
        }
        if self.lambda < 0.0 || !self.lambda.is_finite() {
            return Err(LearningError::InvalidHyperparameter {
                name: "lambda",
                value: self.lambda,
            });
        }
        if self.radius <= 0.0 || !self.radius.is_finite() {
            return Err(LearningError::InvalidHyperparameter {
                name: "radius",
                value: self.radius,
            });
        }
        if self.gradient_tolerance < 0.0 {
            return Err(LearningError::InvalidHyperparameter {
                name: "gradient_tolerance",
                value: self.gradient_tolerance,
            });
        }
        Ok(())
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::new()
    }
}

/// Outcome of a batch training run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// Learned parameters.
    pub params: Vector,
    /// Iterations actually performed (may be fewer than requested when the
    /// gradient tolerance triggers early stopping).
    pub iterations: usize,
    /// Final training error.
    pub train_error: f64,
}

/// Full-gradient descent trainer.
#[derive(Debug, Clone)]
pub struct BatchTrainer<M: Model> {
    model: M,
    config: BatchConfig,
}

impl<M: Model> BatchTrainer<M> {
    /// Creates a trainer, validating the configuration.
    pub fn new(model: M, config: BatchConfig) -> Result<Self> {
        config.validate()?;
        Ok(BatchTrainer { model, config })
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Trains on the full dataset.
    pub fn train(&self, train: &Dataset) -> Result<BatchOutcome> {
        if train.is_empty() {
            return Err(LearningError::EmptyData);
        }
        let mut params = self.model.init_params();
        let mut schedule = self.config.schedule.clone();
        let samples = train.samples();
        let mut performed = 0usize;
        let mut grad_scratch = Vector::zeros(self.model.param_dim());
        for t in 1..=self.config.iterations {
            let stats = minibatch_statistics_into(
                &self.model,
                &params,
                samples,
                self.config.lambda,
                &[],
                &mut grad_scratch,
            )?;
            performed = t;
            if stats.gradient.norm_l2() <= self.config.gradient_tolerance {
                break;
            }
            let eta = schedule.rate(t, &stats.gradient);
            params
                .axpy(-eta, &stats.gradient)
                .map_err(|e| LearningError::ShapeMismatch {
                    reason: e.to_string(),
                })?;
            project_l2_ball(&mut params, self.config.radius);
        }
        if !params.is_finite() {
            return Err(LearningError::NumericalFailure {
                context: "batch training".into(),
            });
        }
        let train_error = error_rate(&self.model, &params, train)?;
        Ok(BatchOutcome {
            params,
            iterations: performed,
            train_error,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::MulticlassLogistic;
    use crowd_data::synthetic::GaussianMixtureSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn task(seed: u64) -> (Dataset, Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        GaussianMixtureSpec::new(8, 3)
            .with_train_size(600)
            .with_test_size(200)
            .with_mean_scale(2.5)
            .with_noise_std(0.6)
            .generate(&mut rng)
            .unwrap()
    }

    #[test]
    fn config_validation() {
        let mut c = BatchConfig::new();
        assert!(c.validate().is_ok());
        c.iterations = 0;
        assert!(c.validate().is_err());
        c = BatchConfig::new();
        c.lambda = f64::NAN;
        assert!(c.validate().is_err());
        c = BatchConfig::new();
        c.radius = -1.0;
        assert!(c.validate().is_err());
        c = BatchConfig::new();
        c.gradient_tolerance = -1.0;
        assert!(c.validate().is_err());
        assert_eq!(BatchConfig::default(), BatchConfig::new());
    }

    #[test]
    fn batch_training_reaches_low_error() {
        let (train, test) = task(0);
        let model = MulticlassLogistic::new(8, 3).unwrap();
        let trainer = BatchTrainer::new(model, BatchConfig::new()).unwrap();
        let outcome = trainer.train(&train).unwrap();
        assert!(
            outcome.train_error < 0.12,
            "train error {}",
            outcome.train_error
        );
        let test_err = error_rate(trainer.model(), &outcome.params, &test).unwrap();
        assert!(test_err < 0.15, "test error {test_err}");
        assert!(outcome.iterations <= 200);
    }

    #[test]
    fn batch_is_at_least_as_good_as_one_pass_sgd() {
        use crate::sgd::{SgdConfig, SgdTrainer};
        let (train, test) = task(1);
        let model = MulticlassLogistic::new(8, 3).unwrap();
        let batch = BatchTrainer::new(model, BatchConfig::new()).unwrap();
        let batch_err =
            error_rate(batch.model(), &batch.train(&train).unwrap().params, &test).unwrap();

        let sgd_model = MulticlassLogistic::new(8, 3).unwrap();
        let sgd = SgdTrainer::new(sgd_model, SgdConfig::new()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let sgd_err = error_rate(
            sgd.model(),
            &sgd.train(&train, None, &mut rng).unwrap().params,
            &test,
        )
        .unwrap();
        assert!(
            batch_err <= sgd_err + 0.05,
            "batch {batch_err} vs sgd {sgd_err}"
        );
    }

    #[test]
    fn early_stopping_on_small_gradient() {
        let (train, _) = task(3);
        let model = MulticlassLogistic::new(8, 3).unwrap();
        let mut config = BatchConfig::new();
        config.gradient_tolerance = 10.0; // absurdly loose: stop immediately
        let trainer = BatchTrainer::new(model, config).unwrap();
        let outcome = trainer.train(&train).unwrap();
        assert_eq!(outcome.iterations, 1);
    }

    #[test]
    fn empty_data_rejected() {
        let model = MulticlassLogistic::new(4, 2).unwrap();
        let trainer = BatchTrainer::new(model, BatchConfig::new()).unwrap();
        assert!(trainer.train(&Dataset::empty(4, 2).unwrap()).is_err());
    }
}
