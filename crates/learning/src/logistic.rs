//! Multiclass and binary logistic regression (Table I of the paper).
//!
//! For multiclass logistic regression with parameters `w_1, …, w_C` (stored
//! row-major in one flat vector):
//!
//! * prediction: `argmax_k w_k' x`
//! * per-sample loss: `−w_y' x + log Σ_l exp(w_l' x)`
//! * per-sample gradient w.r.t. `w_k`: `x · (P(y = k | x) − I[y = k])`
//!
//! With `‖x‖₁ ≤ 1` the averaged-gradient L1 sensitivity is `4/b` (Appendix A),
//! which is what [`crowd_dp::sensitivity::averaged_logistic_gradient`] encodes.

use crate::error::LearningError;
use crate::model::{Model, SampleEval};
use crate::Result;
use crowd_linalg::ops::{log_sum_exp, sigmoid, softmax, softmax_in_place};
use crowd_linalg::Vector;

/// Multiclass logistic regression with a `C × D` weight matrix stored flat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MulticlassLogistic {
    input_dim: usize,
    num_classes: usize,
}

impl MulticlassLogistic {
    /// Creates a model for `input_dim`-dimensional features and `num_classes ≥ 2`
    /// classes.
    pub fn new(input_dim: usize, num_classes: usize) -> Result<Self> {
        if input_dim == 0 {
            return Err(LearningError::InvalidHyperparameter {
                name: "input_dim",
                value: 0.0,
            });
        }
        if num_classes < 2 {
            return Err(LearningError::InvalidHyperparameter {
                name: "num_classes",
                value: num_classes as f64,
            });
        }
        Ok(MulticlassLogistic {
            input_dim,
            num_classes,
        })
    }

    /// Class-posterior probabilities `P(y = k | x; w)`.
    pub fn posteriors(&self, params: &Vector, x: &Vector) -> Result<Vec<f64>> {
        Ok(softmax(&self.scores(params, x)?))
    }

    fn check_params(&self, params: &Vector) -> Result<()> {
        if params.len() != self.param_dim() {
            return Err(LearningError::ShapeMismatch {
                reason: format!(
                    "parameter vector has length {}, expected {}",
                    params.len(),
                    self.param_dim()
                ),
            });
        }
        Ok(())
    }
}

impl Model for MulticlassLogistic {
    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn param_dim(&self) -> usize {
        self.input_dim * self.num_classes
    }

    fn scores(&self, params: &Vector, x: &Vector) -> Result<Vec<f64>> {
        self.check_params(params)?;
        self.validate(x, 0)?;
        let d = self.input_dim;
        let ps = params.as_slice();
        let xs = x.as_slice();
        Ok((0..self.num_classes)
            .map(|k| crowd_linalg::kernels::dot(&ps[k * d..(k + 1) * d], xs))
            .collect())
    }

    fn loss(&self, params: &Vector, x: &Vector, y: usize) -> Result<f64> {
        self.validate(x, y)?;
        let scores = self.scores(params, x)?;
        Ok(log_sum_exp(&scores) - scores[y])
    }

    fn gradient_into(&self, params: &Vector, x: &Vector, y: usize, out: &mut Vector) -> Result<()> {
        self.validate(x, y)?;
        let mut scores = self.scores(params, x)?;
        softmax_in_place(&mut scores);
        self.scatter_gradient(&scores, x, y, out)
    }

    fn evaluate_into(
        &self,
        params: &Vector,
        x: &Vector,
        y: usize,
        out: &mut Vector,
    ) -> Result<SampleEval> {
        self.validate(x, y)?;
        // One scores pass feeds prediction, loss, and gradient, and the
        // post-processing is itself fused: a single max fold, a single exp
        // pass, and a single sum serve both the log-sum-exp and the softmax,
        // instead of each recomputing them. Every intermediate reproduces the
        // standalone methods' arithmetic operation for operation (same fold
        // seeds, same left-to-right order), so prediction, loss, and gradient
        // stay bitwise identical to `predict`/`loss`/`gradient_into`.
        let mut scores = self.scores(params, x)?;
        let predicted = crowd_linalg::ops::argmax(&scores).ok_or(LearningError::ShapeMismatch {
            reason: "model produced no scores".into(),
        })?;
        let score_y = scores[y];
        let max = scores.iter().fold(f64::NEG_INFINITY, |m, &s| m.max(s));
        let mut sum = 0.0;
        for s in scores.iter_mut() {
            *s = (*s - max).exp();
            sum += *s;
        }
        // `log_sum_exp` short-circuits to `max` before exponentiating when the
        // max is ±inf/NaN; the softmax loop above still runs in that case,
        // exactly as `softmax_in_place` would.
        let lse = if max.is_finite() { max + sum.ln() } else { max };
        let loss = lse - score_y;
        for s in scores.iter_mut() {
            *s /= sum;
        }
        self.scatter_gradient(&scores, x, y, out)?;
        Ok(SampleEval { predicted, loss })
    }
}

impl MulticlassLogistic {
    /// Writes `∇_w l = x ⊗ (P − e_y)` into `out` given the posteriors.
    fn scatter_gradient(
        &self,
        posteriors: &[f64],
        x: &Vector,
        y: usize,
        out: &mut Vector,
    ) -> Result<()> {
        if out.len() != self.param_dim() {
            return Err(LearningError::ShapeMismatch {
                reason: format!(
                    "gradient scratch has length {}, expected {}",
                    out.len(),
                    self.param_dim()
                ),
            });
        }
        let d = self.input_dim;
        out.set_zero();
        let grad = out.as_mut_slice();
        for (k, &p) in posteriors.iter().enumerate() {
            let coeff = p - if k == y { 1.0 } else { 0.0 };
            if coeff == 0.0 {
                continue;
            }
            let row = &mut grad[k * d..(k + 1) * d];
            for (g, &v) in row.iter_mut().zip(x.as_slice().iter()) {
                *g += coeff * v;
            }
        }
        Ok(())
    }
}

/// Binary logistic regression with labels `{0, 1}` and a single weight vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinaryLogistic {
    input_dim: usize,
}

impl BinaryLogistic {
    /// Creates a binary logistic model for `input_dim`-dimensional features.
    pub fn new(input_dim: usize) -> Result<Self> {
        if input_dim == 0 {
            return Err(LearningError::InvalidHyperparameter {
                name: "input_dim",
                value: 0.0,
            });
        }
        Ok(BinaryLogistic { input_dim })
    }

    /// The probability `P(y = 1 | x; w) = σ(w'x)`.
    pub fn probability(&self, params: &Vector, x: &Vector) -> Result<f64> {
        let s = self.scores(params, x)?;
        Ok(sigmoid(s[1]))
    }
}

impl Model for BinaryLogistic {
    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn num_classes(&self) -> usize {
        2
    }

    fn param_dim(&self) -> usize {
        self.input_dim
    }

    fn scores(&self, params: &Vector, x: &Vector) -> Result<Vec<f64>> {
        if params.len() != self.input_dim {
            return Err(LearningError::ShapeMismatch {
                reason: format!(
                    "parameter vector has length {}, expected {}",
                    params.len(),
                    self.input_dim
                ),
            });
        }
        self.validate(x, 0)?;
        let margin = params.dot(x).map_err(|e| LearningError::ShapeMismatch {
            reason: e.to_string(),
        })?;
        // Score of class 1 is the margin, class 0 is zero, so argmax matches the
        // sign of the margin.
        Ok(vec![0.0, margin])
    }

    fn loss(&self, params: &Vector, x: &Vector, y: usize) -> Result<f64> {
        self.validate(x, y)?;
        let margin = self.scores(params, x)?[1];
        // Log-loss: log(1 + exp(-t·margin)) with t = ±1, computed stably.
        let t = if y == 1 { 1.0 } else { -1.0 };
        let z = -t * margin;
        Ok(if z > 0.0 {
            z + (1.0 + (-z).exp()).ln()
        } else {
            (1.0 + z.exp()).ln()
        })
    }

    fn gradient_into(&self, params: &Vector, x: &Vector, y: usize, out: &mut Vector) -> Result<()> {
        self.validate(x, y)?;
        if out.len() != self.input_dim {
            return Err(LearningError::ShapeMismatch {
                reason: format!(
                    "gradient scratch has length {}, expected {}",
                    out.len(),
                    self.input_dim
                ),
            });
        }
        let p = self.probability(params, x)?;
        let target = if y == 1 { 1.0 } else { 0.0 };
        let coeff = p - target;
        for (g, &v) in out.iter_mut().zip(x.as_slice().iter()) {
            *g = v * coeff;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::finite_difference_gradient;
    use crowd_linalg::ops::approx_eq;
    use crowd_linalg::random::normal_vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        assert!(MulticlassLogistic::new(0, 3).is_err());
        assert!(MulticlassLogistic::new(4, 1).is_err());
        assert!(MulticlassLogistic::new(4, 3).is_ok());
        assert!(BinaryLogistic::new(0).is_err());
    }

    #[test]
    fn dimensions() {
        let m = MulticlassLogistic::new(5, 3).unwrap();
        assert_eq!(m.input_dim(), 5);
        assert_eq!(m.num_classes(), 3);
        assert_eq!(m.param_dim(), 15);
        assert_eq!(m.init_params().len(), 15);
        let b = BinaryLogistic::new(4).unwrap();
        assert_eq!(b.param_dim(), 4);
        assert_eq!(b.num_classes(), 2);
    }

    #[test]
    fn zero_weights_give_uniform_posteriors() {
        let m = MulticlassLogistic::new(3, 4).unwrap();
        let w = m.init_params();
        let x = Vector::from_vec(vec![0.2, -0.1, 0.5]);
        let p = m.posteriors(&w, &x).unwrap();
        assert!(p.iter().all(|&v| approx_eq(v, 0.25, 1e-12)));
        assert!(approx_eq(m.loss(&w, &x, 2).unwrap(), 4.0_f64.ln(), 1e-12));
    }

    #[test]
    fn prediction_follows_best_score() {
        let m = MulticlassLogistic::new(2, 3).unwrap();
        // w_0 = (1, 0), w_1 = (0, 1), w_2 = (-1, -1).
        let w = Vector::from_vec(vec![1.0, 0.0, 0.0, 1.0, -1.0, -1.0]);
        assert_eq!(m.predict(&w, &Vector::from_vec(vec![1.0, 0.0])).unwrap(), 0);
        assert_eq!(m.predict(&w, &Vector::from_vec(vec![0.0, 1.0])).unwrap(), 1);
        assert_eq!(
            m.predict(&w, &Vector::from_vec(vec![-1.0, -1.0])).unwrap(),
            2
        );
    }

    #[test]
    fn multiclass_gradient_matches_finite_differences() {
        let m = MulticlassLogistic::new(4, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let w = normal_vector(&mut rng, m.param_dim());
        let x = normal_vector(&mut rng, 4);
        for y in 0..3 {
            let analytic = m.gradient(&w, &x, y).unwrap();
            let numeric = finite_difference_gradient(&m, &w, &x, y, 1e-5).unwrap();
            assert!(
                analytic.distance(&numeric).unwrap() < 1e-5,
                "gradient mismatch for label {y}"
            );
        }
    }

    #[test]
    fn binary_gradient_matches_finite_differences() {
        let m = BinaryLogistic::new(5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let w = normal_vector(&mut rng, 5);
        let x = normal_vector(&mut rng, 5);
        for y in 0..2 {
            let analytic = m.gradient(&w, &x, y).unwrap();
            let numeric = finite_difference_gradient(&m, &w, &x, y, 1e-6).unwrap();
            assert!(analytic.distance(&numeric).unwrap() < 1e-4);
        }
    }

    #[test]
    fn gradient_l1_norm_bounded_for_normalized_features() {
        // Appendix A: the per-sample gradient matrix has L1 norm at most
        // 2(1 − P_y) ≤ 2 when ‖x‖₁ ≤ 1.
        let m = MulticlassLogistic::new(6, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let w = normal_vector(&mut rng, m.param_dim());
            let mut x = normal_vector(&mut rng, 6);
            crowd_linalg::ops::normalize_l1(&mut x);
            let g = m.gradient(&w, &x, 3).unwrap();
            assert!(
                g.norm_l1() <= 2.0 + 1e-9,
                "gradient L1 norm {}",
                g.norm_l1()
            );
        }
    }

    #[test]
    fn fused_evaluate_matches_standalone_methods_bitwise() {
        let m = MulticlassLogistic::new(7, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for trial in 0..50 {
            let w = normal_vector(&mut rng, m.param_dim());
            let x = normal_vector(&mut rng, 7);
            let y = trial % 5;
            let mut fused_grad = Vector::zeros(m.param_dim());
            let eval = m.evaluate_into(&w, &x, y, &mut fused_grad).unwrap();
            assert_eq!(eval.predicted, m.predict(&w, &x).unwrap());
            assert_eq!(
                eval.loss.to_bits(),
                m.loss(&w, &x, y).unwrap().to_bits(),
                "fused loss diverged on trial {trial}"
            );
            let mut separate_grad = Vector::zeros(m.param_dim());
            m.gradient_into(&w, &x, y, &mut separate_grad).unwrap();
            for (a, b) in fused_grad.iter().zip(separate_grad.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "fused gradient diverged");
            }
        }
    }

    #[test]
    fn loss_decreases_when_correct_class_score_increases() {
        let m = MulticlassLogistic::new(2, 3).unwrap();
        let x = Vector::from_vec(vec![0.5, 0.5]);
        let w_neutral = m.init_params();
        let mut w_better = m.init_params();
        w_better[0] = 2.0; // boost class 0's weight on feature 0
        w_better[1] = 2.0;
        assert!(m.loss(&w_better, &x, 0).unwrap() < m.loss(&w_neutral, &x, 0).unwrap());
    }

    #[test]
    fn shape_errors_are_reported() {
        let m = MulticlassLogistic::new(3, 2).unwrap();
        let w = m.init_params();
        assert!(m.scores(&Vector::zeros(5), &Vector::zeros(3)).is_err());
        assert!(m.scores(&w, &Vector::zeros(4)).is_err());
        assert!(m.loss(&w, &Vector::zeros(3), 9).is_err());
        let b = BinaryLogistic::new(3).unwrap();
        assert!(b.scores(&Vector::zeros(2), &Vector::zeros(3)).is_err());
    }

    #[test]
    fn binary_probability_behaviour() {
        let b = BinaryLogistic::new(2).unwrap();
        let w = Vector::from_vec(vec![3.0, 0.0]);
        let p_pos = b
            .probability(&w, &Vector::from_vec(vec![1.0, 0.0]))
            .unwrap();
        let p_neg = b
            .probability(&w, &Vector::from_vec(vec![-1.0, 0.0]))
            .unwrap();
        assert!(p_pos > 0.9);
        assert!(p_neg < 0.1);
        assert_eq!(b.predict(&w, &Vector::from_vec(vec![1.0, 0.0])).unwrap(), 1);
        assert_eq!(
            b.predict(&w, &Vector::from_vec(vec![-1.0, 0.0])).unwrap(),
            0
        );
    }
}
