//! Learning-rate schedules.
//!
//! The paper's default schedule is `η(t) = c/√t` (Eq. 5); Remark 3 notes that
//! adaptive schedules such as AdaGrad can be dropped in "without affecting
//! differential privacy nor changing device routines", since the schedule only
//! changes how the *server* applies an already-sanitized gradient. [`LearningRate`]
//! therefore carries its own per-coordinate state where needed (AdaGrad) and is
//! consumed by both the server update and the local SGD baselines.

use crate::error::LearningError;
use crate::Result;
use crowd_linalg::Vector;

/// A learning-rate schedule, possibly stateful.
#[derive(Debug, Clone, PartialEq)]
pub enum LearningRate {
    /// Constant rate `η(t) = c`.
    Constant {
        /// The constant step size.
        c: f64,
    },
    /// The paper's default `η(t) = c/√t` (Eq. 5).
    InvSqrt {
        /// The numerator constant.
        c: f64,
    },
    /// `η(t) = c/t`, the classical Robbins–Monro rate for strongly convex risks.
    InvT {
        /// The numerator constant.
        c: f64,
    },
    /// AdaGrad (Duchi et al., 2010): per-coordinate rate
    /// `c / √(δ + Σ_τ g_τ,i²)`. The accumulated squared gradients are carried in
    /// the variant itself.
    AdaGrad {
        /// The base step size.
        c: f64,
        /// Stabilizer δ added inside the square root.
        delta: f64,
        /// Accumulated per-coordinate squared gradients.
        accumulated: Vector,
    },
}

impl LearningRate {
    /// Constant schedule.
    pub fn constant(c: f64) -> Result<Self> {
        validate_c(c)?;
        Ok(LearningRate::Constant { c })
    }

    /// The paper's `c/√t` schedule.
    pub fn inv_sqrt(c: f64) -> Result<Self> {
        validate_c(c)?;
        Ok(LearningRate::InvSqrt { c })
    }

    /// The `c/t` schedule.
    pub fn inv_t(c: f64) -> Result<Self> {
        validate_c(c)?;
        Ok(LearningRate::InvT { c })
    }

    /// AdaGrad with base rate `c` and stabilizer `delta`.
    pub fn adagrad(c: f64, delta: f64) -> Result<Self> {
        validate_c(c)?;
        if delta <= 0.0 || !delta.is_finite() {
            return Err(LearningError::InvalidHyperparameter {
                name: "delta",
                value: delta,
            });
        }
        Ok(LearningRate::AdaGrad {
            c,
            delta,
            accumulated: Vector::zeros(0),
        })
    }

    /// The scalar rate for iteration `t ≥ 1`. For AdaGrad, which is per-coordinate,
    /// this returns the base rate divided by the root-mean accumulated magnitude and
    /// updates the internal state using `gradient`; scalar schedules ignore
    /// `gradient`.
    pub fn rate(&mut self, t: usize, gradient: &Vector) -> f64 {
        let t = t.max(1) as f64;
        match self {
            LearningRate::Constant { c } => *c,
            LearningRate::InvSqrt { c } => *c / t.sqrt(),
            LearningRate::InvT { c } => *c / t,
            LearningRate::AdaGrad {
                c,
                delta,
                accumulated,
            } => {
                if accumulated.len() != gradient.len() {
                    *accumulated = Vector::zeros(gradient.len());
                }
                for (a, g) in accumulated.iter_mut().zip(gradient.iter()) {
                    *a += g * g;
                }
                // Use the mean accumulated squared gradient as the scalar proxy so
                // the schedule still yields a single step size for the flat update.
                let mean_acc = accumulated.mean();
                *c / (*delta + mean_acc).sqrt()
            }
        }
    }

    /// The numerator constant `c` of the schedule.
    pub fn c(&self) -> f64 {
        match self {
            LearningRate::Constant { c }
            | LearningRate::InvSqrt { c }
            | LearningRate::InvT { c }
            | LearningRate::AdaGrad { c, .. } => *c,
        }
    }
}

fn validate_c(c: f64) -> Result<()> {
    if c <= 0.0 || !c.is_finite() {
        return Err(LearningError::InvalidHyperparameter {
            name: "c",
            value: c,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate_c() {
        assert!(LearningRate::constant(0.0).is_err());
        assert!(LearningRate::inv_sqrt(-1.0).is_err());
        assert!(LearningRate::inv_t(f64::NAN).is_err());
        assert!(LearningRate::adagrad(0.1, 0.0).is_err());
        assert!(LearningRate::adagrad(0.1, 1e-8).is_ok());
        assert_eq!(LearningRate::constant(0.3).unwrap().c(), 0.3);
    }

    #[test]
    fn scalar_schedules_match_formulas() {
        let g = Vector::zeros(3);
        let mut constant = LearningRate::constant(0.5).unwrap();
        assert_eq!(constant.rate(1, &g), 0.5);
        assert_eq!(constant.rate(100, &g), 0.5);

        let mut inv_sqrt = LearningRate::inv_sqrt(1.0).unwrap();
        assert!((inv_sqrt.rate(4, &g) - 0.5).abs() < 1e-12);
        assert!((inv_sqrt.rate(100, &g) - 0.1).abs() < 1e-12);

        let mut inv_t = LearningRate::inv_t(2.0).unwrap();
        assert!((inv_t.rate(4, &g) - 0.5).abs() < 1e-12);

        // t = 0 is clamped to 1 rather than dividing by zero.
        assert!(inv_sqrt.rate(0, &g).is_finite());
    }

    #[test]
    fn inv_sqrt_is_decreasing() {
        let g = Vector::zeros(1);
        let mut s = LearningRate::inv_sqrt(1.0).unwrap();
        let rates: Vec<f64> = (1..20).map(|t| s.rate(t, &g)).collect();
        for pair in rates.windows(2) {
            assert!(pair[1] <= pair[0]);
        }
    }

    #[test]
    fn adagrad_shrinks_with_large_gradients() {
        let mut ada = LearningRate::adagrad(1.0, 1e-8).unwrap();
        let small = Vector::from_vec(vec![0.01, 0.01]);
        let large = Vector::from_vec(vec![10.0, 10.0]);
        let r1 = ada.rate(1, &small);
        let r2 = ada.rate(2, &large);
        let r3 = ada.rate(3, &large);
        assert!(r2 < r1, "rate should shrink after a large gradient");
        assert!(r3 < r2);
    }

    #[test]
    fn adagrad_adapts_to_gradient_dimension_change() {
        let mut ada = LearningRate::adagrad(1.0, 1e-8).unwrap();
        let g2 = Vector::from_vec(vec![1.0, 1.0]);
        let g3 = Vector::from_vec(vec![1.0, 1.0, 1.0]);
        let _ = ada.rate(1, &g2);
        // Dimension change resets the accumulator rather than panicking.
        let r = ada.rate(2, &g3);
        assert!(r.is_finite() && r > 0.0);
    }
}
