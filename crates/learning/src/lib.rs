//! Statistical-learning substrate: models, losses, gradients, optimizers, and
//! metrics.
//!
//! Crowd-ML learns a classifier by empirical-risk minimization (Eq. 2 of the
//! paper): a [`Model`](model::Model) supplies per-sample losses and (sub)gradients,
//! [`sgd`] provides the stochastic-gradient machinery (minibatch averaging,
//! learning-rate [`schedule`]s, the projected update of Eq. 3), and [`batch`]
//! provides the full-gradient trainer used for the "Central (batch)" baseline.
//! [`metrics`] computes the error curves the evaluation section plots.
//!
//! Implemented models:
//!
//! * [`logistic::MulticlassLogistic`] — the multiclass logistic regression of
//!   Table I (the model used in every experiment of the paper);
//! * [`logistic::BinaryLogistic`] — two-class logistic regression;
//! * [`svm::MulticlassHinge`] — one-vs-rest linear SVM with hinge loss, one of the
//!   alternative losses §III-A mentions;
//! * [`regression::RidgeRegression`] — regularized least squares for real-valued
//!   targets, covering the "predictor" (regression) side of the framework.

#![forbid(unsafe_code)]

pub mod batch;
pub mod error;
pub mod logistic;
pub mod metrics;
pub mod model;
pub mod regression;
pub mod schedule;
pub mod sgd;
pub mod svm;

pub use error::LearningError;
pub use logistic::MulticlassLogistic;
pub use model::{minibatch_statistics, MinibatchStats, Model};
pub use schedule::LearningRate;
pub use sgd::{SgdConfig, SgdTrainer};

/// Result alias for fallible learning operations.
pub type Result<T> = std::result::Result<T, LearningError>;
