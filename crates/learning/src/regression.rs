//! Ridge (L2-regularized least-squares) regression for real-valued targets.
//!
//! Crowd-ML is presented as a framework for "classifiers or predictors"; the
//! regression case (predicting a real value such as a temperature setting) uses the
//! squared loss `½(w'x − y)²`. Regression targets are real numbers rather than
//! class labels, so this module has its own small trainer instead of implementing
//! the classification-oriented [`crate::model::Model`] trait. It is exercised by
//! the quickstart example and tests but not by the paper's figures, which are all
//! classification tasks.

use crate::error::LearningError;
use crate::schedule::LearningRate;
use crate::Result;
use crowd_linalg::ops::project_l2_ball;
use crowd_linalg::Vector;

/// A labeled regression sample.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionSample {
    /// Feature vector.
    pub features: Vector,
    /// Real-valued target.
    pub target: f64,
}

impl RegressionSample {
    /// Creates a regression sample.
    pub fn new(features: Vector, target: f64) -> Self {
        RegressionSample { features, target }
    }
}

/// Ridge regression trained by (projected) stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct RidgeRegression {
    input_dim: usize,
    lambda: f64,
    radius: f64,
}

impl RidgeRegression {
    /// Creates a ridge-regression model with regularization `lambda ≥ 0` and
    /// parameter-ball radius `radius > 0`.
    pub fn new(input_dim: usize, lambda: f64, radius: f64) -> Result<Self> {
        if input_dim == 0 {
            return Err(LearningError::InvalidHyperparameter {
                name: "input_dim",
                value: 0.0,
            });
        }
        if lambda < 0.0 || !lambda.is_finite() {
            return Err(LearningError::InvalidHyperparameter {
                name: "lambda",
                value: lambda,
            });
        }
        if radius <= 0.0 || !radius.is_finite() {
            return Err(LearningError::InvalidHyperparameter {
                name: "radius",
                value: radius,
            });
        }
        Ok(RidgeRegression {
            input_dim,
            lambda,
            radius,
        })
    }

    /// Feature dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Predicted value `w'x`.
    pub fn predict(&self, params: &Vector, x: &Vector) -> Result<f64> {
        params.dot(x).map_err(|e| LearningError::ShapeMismatch {
            reason: e.to_string(),
        })
    }

    /// Squared loss `½(w'x − y)²` plus the regularization term.
    pub fn loss(&self, params: &Vector, sample: &RegressionSample) -> Result<f64> {
        let err = self.predict(params, &sample.features)? - sample.target;
        Ok(0.5 * err * err + 0.5 * self.lambda * params.norm_l2_squared())
    }

    /// Gradient of the regularized squared loss.
    pub fn gradient(&self, params: &Vector, sample: &RegressionSample) -> Result<Vector> {
        let mut g = Vector::zeros(self.input_dim);
        self.gradient_into(params, sample, &mut g)?;
        Ok(g)
    }

    /// Writes the gradient of the regularized squared loss into `out`
    /// (overwriting it) without allocating.
    pub fn gradient_into(
        &self,
        params: &Vector,
        sample: &RegressionSample,
        out: &mut Vector,
    ) -> Result<()> {
        if out.len() != self.input_dim {
            return Err(LearningError::ShapeMismatch {
                reason: format!(
                    "gradient scratch has length {}, expected {}",
                    out.len(),
                    self.input_dim
                ),
            });
        }
        let err = self.predict(params, &sample.features)? - sample.target;
        for (g, &v) in out.iter_mut().zip(sample.features.iter()) {
            *g = v * err;
        }
        if self.lambda > 0.0 {
            out.axpy(self.lambda, params)
                .map_err(|e| LearningError::ShapeMismatch {
                    reason: e.to_string(),
                })?;
        }
        Ok(())
    }

    /// Trains with projected SGD for `passes` passes over the data, returning the
    /// learned parameter vector.
    pub fn fit(
        &self,
        data: &[RegressionSample],
        schedule: &LearningRate,
        passes: usize,
    ) -> Result<Vector> {
        if data.is_empty() {
            return Err(LearningError::EmptyData);
        }
        let mut w = Vector::zeros(self.input_dim);
        let mut g = Vector::zeros(self.input_dim);
        let mut schedule_state = schedule.clone();
        let mut t = 0usize;
        for _ in 0..passes.max(1) {
            for sample in data {
                t += 1;
                self.gradient_into(&w, sample, &mut g)?;
                let eta = schedule_state.rate(t, &g);
                w.axpy(-eta, &g).map_err(|e| LearningError::ShapeMismatch {
                    reason: e.to_string(),
                })?;
                project_l2_ball(&mut w, self.radius);
            }
        }
        if !w.is_finite() {
            return Err(LearningError::NumericalFailure {
                context: "ridge regression".into(),
            });
        }
        Ok(w)
    }

    /// Mean squared error of `params` over `data`.
    pub fn mean_squared_error(&self, params: &Vector, data: &[RegressionSample]) -> Result<f64> {
        if data.is_empty() {
            return Err(LearningError::EmptyData);
        }
        let mut sum = 0.0;
        for s in data {
            let err = self.predict(params, &s.features)? - s.target;
            sum += err * err;
        }
        Ok(sum / data.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_linalg::random::{normal_vector, standard_normal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn linear_data(n: usize, seed: u64) -> (Vec<RegressionSample>, Vector) {
        let mut rng = StdRng::seed_from_u64(seed);
        let true_w = Vector::from_vec(vec![1.5, -2.0, 0.5]);
        let data = (0..n)
            .map(|_| {
                let x = normal_vector(&mut rng, 3);
                let y = true_w.dot(&x).unwrap() + 0.01 * standard_normal(&mut rng);
                RegressionSample::new(x, y)
            })
            .collect();
        (data, true_w)
    }

    #[test]
    fn construction_validation() {
        assert!(RidgeRegression::new(0, 0.0, 1.0).is_err());
        assert!(RidgeRegression::new(3, -1.0, 1.0).is_err());
        assert!(RidgeRegression::new(3, 0.0, 0.0).is_err());
        assert!(RidgeRegression::new(3, 0.1, 10.0).is_ok());
    }

    #[test]
    fn recovers_linear_relationship() {
        let (data, true_w) = linear_data(2000, 0);
        let model = RidgeRegression::new(3, 0.0, 100.0).unwrap();
        let w = model
            .fit(&data, &LearningRate::inv_sqrt(0.1).unwrap(), 3)
            .unwrap();
        assert!(
            w.distance(&true_w).unwrap() < 0.1,
            "learned {:?}",
            w.as_slice()
        );
        let mse = model.mean_squared_error(&w, &data).unwrap();
        assert!(mse < 0.01, "mse {mse}");
    }

    #[test]
    fn regularization_shrinks_weights() {
        let (data, _) = linear_data(500, 1);
        let schedule = LearningRate::inv_sqrt(0.1).unwrap();
        let plain = RidgeRegression::new(3, 0.0, 100.0).unwrap();
        let ridge = RidgeRegression::new(3, 1.0, 100.0).unwrap();
        let w_plain = plain.fit(&data, &schedule, 2).unwrap();
        let w_ridge = ridge.fit(&data, &schedule, 2).unwrap();
        assert!(w_ridge.norm_l2() < w_plain.norm_l2());
    }

    #[test]
    fn projection_bounds_parameters() {
        let (data, _) = linear_data(300, 2);
        let model = RidgeRegression::new(3, 0.0, 0.5).unwrap();
        let w = model
            .fit(&data, &LearningRate::constant(0.5).unwrap(), 2)
            .unwrap();
        assert!(w.norm_l2() <= 0.5 + 1e-9);
    }

    #[test]
    fn error_paths() {
        let model = RidgeRegression::new(3, 0.0, 1.0).unwrap();
        assert!(model
            .fit(&[], &LearningRate::constant(0.1).unwrap(), 1)
            .is_err());
        assert!(model.mean_squared_error(&Vector::zeros(3), &[]).is_err());
        let bad = RegressionSample::new(Vector::zeros(2), 1.0);
        assert!(model.gradient(&Vector::zeros(3), &bad).is_err());
    }
}
