//! Stochastic-gradient training over a local dataset.
//!
//! [`SgdTrainer`] implements the projected minibatch SGD update of Eq. (3):
//! `w(t+1) ← Π_W[w(t) − η(t)·g̃(t)]`, where `g̃` is the averaged minibatch gradient
//! plus regularization. It is used directly by the "Decentralized (SGD)" and
//! "Centralized (SGD)" baselines, and the Crowd-ML server applies exactly the same
//! update to gradients that arrive from devices (see `crowd-core`).

use crate::error::LearningError;
use crate::metrics::{error_rate, ErrorCurve};
use crate::model::{minibatch_statistics_into, Model};
use crate::schedule::LearningRate;
use crate::Result;
use crowd_data::{Dataset, Sample};
use crowd_linalg::ops::project_l2_ball;
use crowd_linalg::Vector;
use rand::Rng;

/// Hyperparameters of a (local) SGD run.
#[derive(Debug, Clone, PartialEq)]
pub struct SgdConfig {
    /// Learning-rate schedule η(t).
    pub schedule: LearningRate,
    /// L2 regularization strength λ (Eq. 2).
    pub lambda: f64,
    /// Radius `R` of the parameter ball `W` for the projection `Π_W`.
    pub radius: f64,
    /// Minibatch size `b`.
    pub minibatch_size: usize,
    /// Number of passes over the data.
    pub passes: f64,
    /// Evaluate the test error every `eval_every` consumed samples when producing
    /// an error curve.
    pub eval_every: usize,
}

impl SgdConfig {
    /// A reasonable default configuration matching the paper's settings:
    /// `η(t) = c/√t` with `c = 1`, λ = 0, radius 100, minibatch 1, one pass.
    pub fn new() -> Self {
        SgdConfig {
            schedule: LearningRate::InvSqrt { c: 1.0 },
            lambda: 0.0,
            radius: 100.0,
            minibatch_size: 1,
            passes: 1.0,
            eval_every: 1000,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.lambda < 0.0 || !self.lambda.is_finite() {
            return Err(LearningError::InvalidHyperparameter {
                name: "lambda",
                value: self.lambda,
            });
        }
        if self.radius <= 0.0 || !self.radius.is_finite() {
            return Err(LearningError::InvalidHyperparameter {
                name: "radius",
                value: self.radius,
            });
        }
        if self.minibatch_size == 0 {
            return Err(LearningError::InvalidHyperparameter {
                name: "minibatch_size",
                value: 0.0,
            });
        }
        if self.passes <= 0.0 || !self.passes.is_finite() {
            return Err(LearningError::InvalidHyperparameter {
                name: "passes",
                value: self.passes,
            });
        }
        if self.eval_every == 0 {
            return Err(LearningError::InvalidHyperparameter {
                name: "eval_every",
                value: 0.0,
            });
        }
        Ok(())
    }
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig::new()
    }
}

/// Outcome of an SGD run: the learned parameters plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct SgdOutcome {
    /// Final parameter vector.
    pub params: Vector,
    /// Number of SGD updates applied.
    pub updates: usize,
    /// Number of samples consumed (updates × minibatch size, modulo the final
    /// partial minibatch).
    pub samples_consumed: usize,
    /// Error curve on the evaluation set (empty when no evaluation set was given).
    pub curve: ErrorCurve,
    /// 0/1 mistake sequence of online predictions made before each update
    /// (the quantity Fig. 3 time-averages).
    pub online_mistakes: Vec<bool>,
}

/// Minibatch SGD trainer over a single local dataset.
#[derive(Debug, Clone)]
pub struct SgdTrainer<M: Model> {
    model: M,
    config: SgdConfig,
}

impl<M: Model> SgdTrainer<M> {
    /// Creates a trainer, validating the configuration.
    pub fn new(model: M, config: SgdConfig) -> Result<Self> {
        config.validate()?;
        Ok(SgdTrainer { model, config })
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The configuration.
    pub fn config(&self) -> &SgdConfig {
        &self.config
    }

    /// Runs SGD over `train`, optionally evaluating on `eval` every
    /// `config.eval_every` consumed samples.
    ///
    /// Sample order is re-shuffled every pass using `rng`. The number of consumed
    /// samples is `⌈passes × |train|⌉`, allowing fractional passes.
    pub fn train<R: Rng + ?Sized>(
        &self,
        train: &Dataset,
        eval: Option<&Dataset>,
        rng: &mut R,
    ) -> Result<SgdOutcome> {
        if train.is_empty() {
            return Err(LearningError::EmptyData);
        }
        let total_samples = ((train.len() as f64) * self.config.passes).ceil() as usize;
        let mut params = self.model.init_params();
        let mut schedule = self.config.schedule.clone();
        let mut curve = ErrorCurve::new();
        let mut online_mistakes = Vec::new();

        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut pos = train.len(); // force a shuffle on the first iteration
        let mut consumed = 0usize;
        let mut updates = 0usize;
        let mut batch: Vec<Sample> = Vec::with_capacity(self.config.minibatch_size);
        let mut next_eval = self.config.eval_every;
        // One per-sample gradient scratch for the whole run: the inner loop
        // never allocates a parameter-sized vector per sample.
        let mut grad_scratch = Vector::zeros(self.model.param_dim());

        while consumed < total_samples {
            if pos >= order.len() {
                // New pass: reshuffle.
                for i in (1..order.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    order.swap(i, j);
                }
                pos = 0;
            }
            let sample = train.get(order[pos]).clone();
            pos += 1;
            consumed += 1;

            // Record the online prediction made with the *current* parameters.
            let pred = self.model.predict(&params, &sample.features)?;
            online_mistakes.push(pred != sample.label);

            batch.push(sample);
            if batch.len() >= self.config.minibatch_size || consumed == total_samples {
                let stats = minibatch_statistics_into(
                    &self.model,
                    &params,
                    &batch,
                    self.config.lambda,
                    &[],
                    &mut grad_scratch,
                )?;
                updates += 1;
                let eta = schedule.rate(updates, &stats.gradient);
                params
                    .axpy(-eta, &stats.gradient)
                    .map_err(|e| LearningError::ShapeMismatch {
                        reason: e.to_string(),
                    })?;
                project_l2_ball(&mut params, self.config.radius);
                batch.clear();
            }

            if let Some(eval_set) = eval {
                if consumed >= next_eval || consumed == total_samples {
                    curve.push(consumed, error_rate(&self.model, &params, eval_set)?);
                    next_eval = consumed + self.config.eval_every;
                }
            }
        }

        if !params.is_finite() {
            return Err(LearningError::NumericalFailure {
                context: "sgd training".into(),
            });
        }

        Ok(SgdOutcome {
            params,
            updates,
            samples_consumed: consumed,
            curve,
            online_mistakes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::MulticlassLogistic;
    use crowd_data::synthetic::GaussianMixtureSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn task(seed: u64) -> (Dataset, Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        GaussianMixtureSpec::new(10, 4)
            .with_train_size(800)
            .with_test_size(200)
            .with_mean_scale(2.5)
            .with_noise_std(0.6)
            .generate(&mut rng)
            .unwrap()
    }

    #[test]
    fn config_validation() {
        let mut c = SgdConfig::new();
        assert!(c.validate().is_ok());
        c.lambda = -1.0;
        assert!(c.validate().is_err());
        c = SgdConfig::new();
        c.radius = 0.0;
        assert!(c.validate().is_err());
        c = SgdConfig::new();
        c.minibatch_size = 0;
        assert!(c.validate().is_err());
        c = SgdConfig::new();
        c.passes = 0.0;
        assert!(c.validate().is_err());
        c = SgdConfig::new();
        c.eval_every = 0;
        assert!(c.validate().is_err());
        assert_eq!(SgdConfig::default(), SgdConfig::new());
    }

    #[test]
    fn learns_a_separable_task() {
        let (train, test) = task(0);
        let model = MulticlassLogistic::new(10, 4).unwrap();
        let config = SgdConfig {
            schedule: LearningRate::inv_sqrt(2.0).unwrap(),
            passes: 3.0,
            ..SgdConfig::new()
        };
        let trainer = SgdTrainer::new(model, config).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = trainer.train(&train, Some(&test), &mut rng).unwrap();
        let err = error_rate(trainer.model(), &outcome.params, &test).unwrap();
        assert!(err < 0.15, "test error {err}");
        assert!(!outcome.curve.is_empty());
        assert_eq!(outcome.samples_consumed, 2400);
        assert_eq!(outcome.online_mistakes.len(), 2400);
    }

    #[test]
    fn minibatch_reduces_update_count() {
        let (train, _) = task(2);
        let model = MulticlassLogistic::new(10, 4).unwrap();
        let mut config = SgdConfig::new();
        config.minibatch_size = 20;
        config.passes = 1.0;
        let trainer = SgdTrainer::new(model, config).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = trainer.train(&train, None, &mut rng).unwrap();
        assert_eq!(outcome.samples_consumed, 800);
        assert_eq!(outcome.updates, 40);
        assert!(outcome.curve.is_empty());
    }

    #[test]
    fn fractional_passes_consume_partial_data() {
        let (train, _) = task(4);
        let model = MulticlassLogistic::new(10, 4).unwrap();
        let mut config = SgdConfig::new();
        config.passes = 0.25;
        let trainer = SgdTrainer::new(model, config).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = trainer.train(&train, None, &mut rng).unwrap();
        assert_eq!(outcome.samples_consumed, 200);
    }

    #[test]
    fn projection_keeps_parameters_in_ball() {
        let (train, _) = task(6);
        let model = MulticlassLogistic::new(10, 4).unwrap();
        let mut config = SgdConfig::new();
        config.radius = 0.5;
        config.schedule = LearningRate::constant(5.0).unwrap();
        let trainer = SgdTrainer::new(model, config).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let outcome = trainer.train(&train, None, &mut rng).unwrap();
        assert!(outcome.params.norm_l2() <= 0.5 + 1e-9);
    }

    #[test]
    fn empty_training_set_rejected() {
        let model = MulticlassLogistic::new(3, 2).unwrap();
        let trainer = SgdTrainer::new(model, SgdConfig::new()).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        assert!(trainer
            .train(&Dataset::empty(3, 2).unwrap(), None, &mut rng)
            .is_err());
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let (train, test) = task(9);
        let model = MulticlassLogistic::new(10, 4).unwrap();
        let trainer = SgdTrainer::new(model, SgdConfig::new()).unwrap();
        let a = trainer
            .train(&train, Some(&test), &mut StdRng::seed_from_u64(42))
            .unwrap();
        let b = trainer
            .train(&train, Some(&test), &mut StdRng::seed_from_u64(42))
            .unwrap();
        assert_eq!(a.params, b.params);
        assert_eq!(a.curve, b.curve);
    }
}
