//! One-vs-rest linear SVM with hinge loss.
//!
//! Section III-A of the paper notes that the framework covers "regression, logistic
//! regression, and Support Vector Machine" by choosing the loss `l`. This module
//! provides the SVM instantiation: each class has its own weight vector, the loss
//! is the sum of one-vs-rest hinge losses, and the subgradient is bounded when
//! features are L1-normalized so the same clipping/sensitivity machinery applies.

use crate::error::LearningError;
use crate::model::{Model, SampleEval};
use crate::Result;
use crowd_linalg::Vector;

/// One-vs-rest multiclass linear SVM with hinge loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MulticlassHinge {
    input_dim: usize,
    num_classes: usize,
}

impl MulticlassHinge {
    /// Creates a hinge-loss model for `input_dim`-dimensional features and
    /// `num_classes ≥ 2` classes.
    pub fn new(input_dim: usize, num_classes: usize) -> Result<Self> {
        if input_dim == 0 {
            return Err(LearningError::InvalidHyperparameter {
                name: "input_dim",
                value: 0.0,
            });
        }
        if num_classes < 2 {
            return Err(LearningError::InvalidHyperparameter {
                name: "num_classes",
                value: num_classes as f64,
            });
        }
        Ok(MulticlassHinge {
            input_dim,
            num_classes,
        })
    }

    fn check_params(&self, params: &Vector) -> Result<()> {
        if params.len() != self.param_dim() {
            return Err(LearningError::ShapeMismatch {
                reason: format!(
                    "parameter vector has length {}, expected {}",
                    params.len(),
                    self.param_dim()
                ),
            });
        }
        Ok(())
    }
}

impl Model for MulticlassHinge {
    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn param_dim(&self) -> usize {
        self.input_dim * self.num_classes
    }

    fn scores(&self, params: &Vector, x: &Vector) -> Result<Vec<f64>> {
        self.check_params(params)?;
        self.validate(x, 0)?;
        let d = self.input_dim;
        let ps = params.as_slice();
        let xs = x.as_slice();
        Ok((0..self.num_classes)
            .map(|k| crowd_linalg::kernels::dot(&ps[k * d..(k + 1) * d], xs))
            .collect())
    }

    fn loss(&self, params: &Vector, x: &Vector, y: usize) -> Result<f64> {
        self.validate(x, y)?;
        let scores = self.scores(params, x)?;
        // One-vs-rest: the true class should score ≥ +1, every other class ≤ −1.
        let mut loss = 0.0;
        for (k, &s) in scores.iter().enumerate() {
            let t = if k == y { 1.0 } else { -1.0 };
            loss += (1.0 - t * s).max(0.0);
        }
        Ok(loss)
    }

    fn gradient_into(&self, params: &Vector, x: &Vector, y: usize, out: &mut Vector) -> Result<()> {
        self.validate(x, y)?;
        let scores = self.scores(params, x)?;
        self.scatter_subgradient(&scores, x, y, out)
    }

    fn evaluate_into(
        &self,
        params: &Vector,
        x: &Vector,
        y: usize,
        out: &mut Vector,
    ) -> Result<SampleEval> {
        self.validate(x, y)?;
        // One scores pass feeds prediction, loss, and subgradient; the values
        // match the standalone methods exactly.
        let scores = self.scores(params, x)?;
        let predicted = crowd_linalg::ops::argmax(&scores).ok_or(LearningError::ShapeMismatch {
            reason: "model produced no scores".into(),
        })?;
        let mut loss = 0.0;
        for (k, &s) in scores.iter().enumerate() {
            let t = if k == y { 1.0 } else { -1.0 };
            loss += (1.0 - t * s).max(0.0);
        }
        self.scatter_subgradient(&scores, x, y, out)?;
        Ok(SampleEval { predicted, loss })
    }
}

impl MulticlassHinge {
    /// Writes the one-vs-rest hinge subgradient into `out` given the scores.
    fn scatter_subgradient(
        &self,
        scores: &[f64],
        x: &Vector,
        y: usize,
        out: &mut Vector,
    ) -> Result<()> {
        if out.len() != self.param_dim() {
            return Err(LearningError::ShapeMismatch {
                reason: format!(
                    "gradient scratch has length {}, expected {}",
                    out.len(),
                    self.param_dim()
                ),
            });
        }
        let d = self.input_dim;
        out.set_zero();
        let grad = out.as_mut_slice();
        for (k, &s) in scores.iter().enumerate() {
            let t = if k == y { 1.0 } else { -1.0 };
            if 1.0 - t * s > 0.0 {
                let row = &mut grad[k * d..(k + 1) * d];
                for (g, &v) in row.iter_mut().zip(x.as_slice().iter()) {
                    *g += -t * v;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::finite_difference_gradient;
    use crowd_linalg::random::normal_vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        assert!(MulticlassHinge::new(0, 3).is_err());
        assert!(MulticlassHinge::new(3, 1).is_err());
        assert!(MulticlassHinge::new(3, 3).is_ok());
    }

    #[test]
    fn zero_weights_loss_is_num_classes() {
        // With w = 0 every margin is 0, so each of the C hinge terms is 1.
        let m = MulticlassHinge::new(4, 5).unwrap();
        let w = m.init_params();
        let x = Vector::from_vec(vec![0.1, 0.2, 0.3, 0.4]);
        assert!((m.loss(&w, &x, 2).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences_away_from_kinks() {
        let m = MulticlassHinge::new(3, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        // Random smooth points are almost surely away from hinge kinks.
        for trial in 0..5 {
            let w = normal_vector(&mut rng, m.param_dim());
            let x = normal_vector(&mut rng, 3);
            let y = trial % 4;
            let analytic = m.gradient(&w, &x, y).unwrap();
            let numeric = finite_difference_gradient(&m, &w, &x, y, 1e-6).unwrap();
            assert!(
                analytic.distance(&numeric).unwrap() < 1e-4,
                "trial {trial} mismatch"
            );
        }
    }

    #[test]
    fn confident_correct_prediction_has_zero_loss_and_gradient() {
        let m = MulticlassHinge::new(2, 2).unwrap();
        // Class 0 weights strongly positive on feature 0, class 1 strongly negative.
        let w = Vector::from_vec(vec![5.0, 0.0, -5.0, 0.0]);
        let x = Vector::from_vec(vec![1.0, 0.0]);
        assert_eq!(m.loss(&w, &x, 0).unwrap(), 0.0);
        assert_eq!(m.gradient(&w, &x, 0).unwrap().norm_l1(), 0.0);
        assert_eq!(m.predict(&w, &x).unwrap(), 0);
    }

    #[test]
    fn subgradient_l1_bounded_for_normalized_features() {
        // Each active hinge contributes at most ‖x‖₁ ≤ 1 per class; with all C
        // hinges active the bound is C, but for the averaged two-class case used in
        // the privacy analysis the 4/b bound holds. Here we check the per-class
        // contribution bound.
        let m = MulticlassHinge::new(5, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let w = normal_vector(&mut rng, m.param_dim());
            let mut x = normal_vector(&mut rng, 5);
            crowd_linalg::ops::normalize_l1(&mut x);
            let g = m.gradient(&w, &x, 1).unwrap();
            assert!(g.norm_l1() <= 3.0 + 1e-9);
        }
    }

    #[test]
    fn shape_errors() {
        let m = MulticlassHinge::new(3, 2).unwrap();
        assert!(m.scores(&Vector::zeros(5), &Vector::zeros(3)).is_err());
        assert!(m.loss(&m.init_params(), &Vector::zeros(2), 0).is_err());
        assert!(m.gradient(&m.init_params(), &Vector::zeros(3), 7).is_err());
    }
}
