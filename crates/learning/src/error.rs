//! Error type for the learning crate.

use std::fmt;

/// Errors produced by model construction, training, or evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum LearningError {
    /// A feature vector, parameter vector, or label had an unexpected shape.
    ShapeMismatch {
        /// Description of the inconsistency.
        reason: String,
    },
    /// A hyperparameter was outside its valid domain.
    InvalidHyperparameter {
        /// Name of the hyperparameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// Training was requested on an empty dataset or minibatch.
    EmptyData,
    /// A numerical failure (NaN/Inf) was detected during training.
    NumericalFailure {
        /// Where the failure was detected.
        context: String,
    },
}

impl fmt::Display for LearningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearningError::ShapeMismatch { reason } => write!(f, "shape mismatch: {reason}"),
            LearningError::InvalidHyperparameter { name, value } => {
                write!(f, "invalid hyperparameter {name} = {value}")
            }
            LearningError::EmptyData => write!(f, "operation requires at least one sample"),
            LearningError::NumericalFailure { context } => {
                write!(f, "numerical failure during {context}")
            }
        }
    }
}

impl std::error::Error for LearningError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(LearningError::ShapeMismatch {
            reason: "dim".into()
        }
        .to_string()
        .contains("dim"));
        assert!(LearningError::InvalidHyperparameter {
            name: "lambda",
            value: -1.0
        }
        .to_string()
        .contains("lambda"));
        assert!(LearningError::EmptyData.to_string().contains("sample"));
        assert!(LearningError::NumericalFailure {
            context: "sgd".into()
        }
        .to_string()
        .contains("sgd"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&LearningError::EmptyData);
    }
}
