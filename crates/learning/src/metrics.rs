//! Evaluation metrics: test error, confusion matrices, and the error curves the
//! paper plots.

use crate::error::LearningError;
use crate::model::Model;
use crate::Result;
use crowd_data::Dataset;
use crowd_linalg::Vector;

/// Misclassification rate of `params` on `data` (the "test error" of Figs. 4–9).
pub fn error_rate<M: Model + ?Sized>(model: &M, params: &Vector, data: &Dataset) -> Result<f64> {
    if data.is_empty() {
        return Err(LearningError::EmptyData);
    }
    let mut errors = 0usize;
    for s in data.iter() {
        if model.predict(params, &s.features)? != s.label {
            errors += 1;
        }
    }
    Ok(errors as f64 / data.len() as f64)
}

/// Classification accuracy, `1 − error_rate`.
pub fn accuracy<M: Model + ?Sized>(model: &M, params: &Vector, data: &Dataset) -> Result<f64> {
    Ok(1.0 - error_rate(model, params, data)?)
}

/// Mean per-sample loss of `params` on `data` (without regularization).
pub fn mean_loss<M: Model + ?Sized>(model: &M, params: &Vector, data: &Dataset) -> Result<f64> {
    if data.is_empty() {
        return Err(LearningError::EmptyData);
    }
    let mut sum = 0.0;
    for s in data.iter() {
        sum += model.loss(params, &s.features, s.label)?;
    }
    Ok(sum / data.len() as f64)
}

/// A `C × C` confusion matrix: `matrix[true][predicted]` counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Computes the confusion matrix of `params` on `data`.
    pub fn compute<M: Model + ?Sized>(model: &M, params: &Vector, data: &Dataset) -> Result<Self> {
        let c = model.num_classes();
        let mut counts = vec![vec![0usize; c]; c];
        for s in data.iter() {
            let pred = model.predict(params, &s.features)?;
            counts[s.label][pred] += 1;
        }
        Ok(ConfusionMatrix { counts })
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.counts.len()
    }

    /// Count of samples with true class `t` predicted as class `p`.
    pub fn count(&self, t: usize, p: usize) -> usize {
        self.counts[t][p]
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.counts
            .iter()
            .map(|row| row.iter().sum::<usize>())
            .sum()
    }

    /// Overall accuracy from the diagonal.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.num_classes()).map(|k| self.counts[k][k]).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall (`None` when the class has no true samples).
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row_total: usize = self.counts[class].iter().sum();
        if row_total == 0 {
            None
        } else {
            Some(self.counts[class][class] as f64 / row_total as f64)
        }
    }

    /// Per-class precision (`None` when the class was never predicted).
    pub fn precision(&self, class: usize) -> Option<f64> {
        let col_total: usize = self.counts.iter().map(|row| row[class]).sum();
        if col_total == 0 {
            None
        } else {
            Some(self.counts[class][class] as f64 / col_total as f64)
        }
    }
}

/// The time-averaged online error of Fig. 3:
/// `Err(t) = (1/t) Σ_{i ≤ t} I[y_i ≠ ŷ_i]`, computed from a 0/1 mistake sequence.
pub fn time_averaged_error(mistakes: &[bool]) -> Vec<f64> {
    let mut out = Vec::with_capacity(mistakes.len());
    let mut errors = 0usize;
    for (i, &m) in mistakes.iter().enumerate() {
        if m {
            errors += 1;
        }
        out.push(errors as f64 / (i + 1) as f64);
    }
    out
}

/// One point of an error-vs-iteration curve (the series plotted in Figs. 4–9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Iteration count (number of samples consumed so far).
    pub iteration: usize,
    /// Error measured at that iteration.
    pub error: f64,
}

/// An error-vs-iteration curve with convenience accessors used by the experiment
/// harness and EXPERIMENTS.md reporting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ErrorCurve {
    points: Vec<CurvePoint>,
}

impl ErrorCurve {
    /// Creates an empty curve.
    pub fn new() -> Self {
        ErrorCurve { points: Vec::new() }
    }

    /// Appends a measurement.
    pub fn push(&mut self, iteration: usize, error: f64) {
        self.points.push(CurvePoint { iteration, error });
    }

    /// The recorded points.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no points are recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last recorded error (the curve's asymptote proxy).
    pub fn final_error(&self) -> Option<f64> {
        self.points.last().map(|p| p.error)
    }

    /// The mean of the last `k` recorded errors, a more stable asymptote estimate.
    pub fn tail_mean(&self, k: usize) -> Option<f64> {
        if self.points.is_empty() || k == 0 {
            return None;
        }
        let start = self.points.len().saturating_sub(k);
        let tail = &self.points[start..];
        Some(tail.iter().map(|p| p.error).sum::<f64>() / tail.len() as f64)
    }

    /// The first iteration at which the error drops to or below `threshold`.
    pub fn iterations_to_reach(&self, threshold: f64) -> Option<usize> {
        self.points
            .iter()
            .find(|p| p.error <= threshold)
            .map(|p| p.iteration)
    }

    /// Averages several curves point-wise (all curves must have the same length;
    /// iterations are taken from the first curve). Used for the "averaged over 10
    /// trials" reporting in §V-C.
    pub fn average(curves: &[ErrorCurve]) -> Result<ErrorCurve> {
        if curves.is_empty() {
            return Err(LearningError::EmptyData);
        }
        let len = curves[0].len();
        if curves.iter().any(|c| c.len() != len) {
            return Err(LearningError::ShapeMismatch {
                reason: "error curves have different lengths".into(),
            });
        }
        let mut out = ErrorCurve::new();
        for i in 0..len {
            let mean = curves.iter().map(|c| c.points[i].error).sum::<f64>() / curves.len() as f64;
            out.push(curves[0].points[i].iteration, mean);
        }
        Ok(out)
    }

    /// Renders the curve as CSV lines `iteration,error` (used by the figure
    /// binaries).
    pub fn to_csv(&self) -> String {
        let mut s = String::from("iteration,error\n");
        for p in &self.points {
            s.push_str(&format!("{},{:.6}\n", p.iteration, p.error));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::MulticlassLogistic;
    use crowd_data::Sample;

    fn dataset() -> Dataset {
        Dataset::new(
            vec![
                Sample::new(Vector::from_vec(vec![1.0, 0.0]), 0),
                Sample::new(Vector::from_vec(vec![0.9, 0.1]), 0),
                Sample::new(Vector::from_vec(vec![0.0, 1.0]), 1),
                Sample::new(Vector::from_vec(vec![0.1, 0.9]), 1),
            ],
            2,
        )
        .unwrap()
    }

    fn good_params() -> Vector {
        // Class 0 favours feature 0, class 1 favours feature 1.
        Vector::from_vec(vec![2.0, -2.0, -2.0, 2.0])
    }

    #[test]
    fn error_rate_and_accuracy() {
        let model = MulticlassLogistic::new(2, 2).unwrap();
        let data = dataset();
        assert_eq!(error_rate(&model, &good_params(), &data).unwrap(), 0.0);
        assert_eq!(accuracy(&model, &good_params(), &data).unwrap(), 1.0);
        // Zero weights: every sample predicted as class 0, so half are wrong.
        let w0 = model.init_params();
        assert_eq!(error_rate(&model, &w0, &data).unwrap(), 0.5);
        assert!(error_rate(&model, &w0, &Dataset::empty(2, 2).unwrap()).is_err());
        assert!(mean_loss(&model, &good_params(), &data).unwrap() < 0.2);
    }

    #[test]
    fn confusion_matrix_counts() {
        let model = MulticlassLogistic::new(2, 2).unwrap();
        let data = dataset();
        let cm = ConfusionMatrix::compute(&model, &good_params(), &data).unwrap();
        assert_eq!(cm.num_classes(), 2);
        assert_eq!(cm.total(), 4);
        assert_eq!(cm.count(0, 0), 2);
        assert_eq!(cm.count(1, 1), 2);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.recall(0), Some(1.0));
        assert_eq!(cm.precision(1), Some(1.0));

        let w0 = model.init_params();
        let cm0 = ConfusionMatrix::compute(&model, &w0, &data).unwrap();
        assert_eq!(cm0.count(1, 0), 2);
        assert_eq!(cm0.precision(1), None);
        assert_eq!(cm0.accuracy(), 0.5);
    }

    #[test]
    fn time_averaged_error_matches_fig3_definition() {
        let mistakes = [true, false, false, true];
        let curve = time_averaged_error(&mistakes);
        assert_eq!(curve, vec![1.0, 0.5, 1.0 / 3.0, 0.5]);
        assert!(time_averaged_error(&[]).is_empty());
    }

    #[test]
    fn error_curve_accessors() {
        let mut c = ErrorCurve::new();
        assert!(c.is_empty());
        assert_eq!(c.final_error(), None);
        c.push(10, 0.5);
        c.push(20, 0.3);
        c.push(30, 0.1);
        assert_eq!(c.len(), 3);
        assert_eq!(c.final_error(), Some(0.1));
        assert_eq!(c.iterations_to_reach(0.3), Some(20));
        assert_eq!(c.iterations_to_reach(0.05), None);
        assert!((c.tail_mean(2).unwrap() - 0.2).abs() < 1e-12);
        assert!(c.to_csv().contains("20,0.300000"));
    }

    #[test]
    fn curve_averaging() {
        let mut a = ErrorCurve::new();
        a.push(1, 0.4);
        a.push(2, 0.2);
        let mut b = ErrorCurve::new();
        b.push(1, 0.6);
        b.push(2, 0.4);
        let avg = ErrorCurve::average(&[a.clone(), b]).unwrap();
        assert_eq!(avg.points()[0].error, 0.5);
        assert!((avg.points()[1].error - 0.3).abs() < 1e-12);
        assert!(ErrorCurve::average(&[]).is_err());
        let mut short = ErrorCurve::new();
        short.push(1, 0.1);
        assert!(ErrorCurve::average(&[a, short]).is_err());
    }
}
