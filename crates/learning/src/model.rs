//! The [`Model`] trait: per-sample losses, gradients, and predictions over a flat
//! parameter vector.
//!
//! All models expose their parameters as a single flat [`Vector`] so the server
//! update (Eq. 3), the L2-ball projection, and the Laplace gradient perturbation
//! (Eq. 10) operate uniformly regardless of the model family. Multiclass models
//! store their `C × D` weight matrix row-major in that vector.

use crate::error::LearningError;
use crate::Result;
use crowd_data::Sample;
use crowd_linalg::Vector;

/// A differentiable classification model with a flat parameter vector.
pub trait Model: Send + Sync {
    /// Feature dimensionality `D`.
    fn input_dim(&self) -> usize;

    /// Number of classes `C`.
    fn num_classes(&self) -> usize;

    /// Length of the flat parameter vector.
    fn param_dim(&self) -> usize;

    /// Initial parameter vector (zeros unless a model overrides it).
    fn init_params(&self) -> Vector {
        Vector::zeros(self.param_dim())
    }

    /// Per-class decision scores for a feature vector.
    fn scores(&self, params: &Vector, x: &Vector) -> Result<Vec<f64>>;

    /// Predicted class label (argmax of scores; Table I's `argmax_k w_k'x`).
    fn predict(&self, params: &Vector, x: &Vector) -> Result<usize> {
        let scores = self.scores(params, x)?;
        crowd_linalg::ops::argmax(&scores).ok_or(LearningError::ShapeMismatch {
            reason: "model produced no scores".into(),
        })
    }

    /// Per-sample loss `l(h(x; w), y)` (without the regularization term).
    fn loss(&self, params: &Vector, x: &Vector, y: usize) -> Result<f64>;

    /// Per-sample (sub)gradient `∇_w l(h(x; w), y)` (without regularization).
    ///
    /// Allocates a fresh vector per call; hot loops should prefer
    /// [`Model::gradient_into`] with a reused scratch vector.
    fn gradient(&self, params: &Vector, x: &Vector, y: usize) -> Result<Vector> {
        let mut out = Vector::zeros(self.param_dim());
        self.gradient_into(params, x, y, &mut out)?;
        Ok(out)
    }

    /// Writes the per-sample (sub)gradient into `out` (overwriting it) without
    /// allocating. `out` must have length [`Model::param_dim`].
    fn gradient_into(&self, params: &Vector, x: &Vector, y: usize, out: &mut Vector) -> Result<()>;

    /// Fused per-sample evaluation: prediction, loss, and gradient from one
    /// scores computation, with the gradient written into `out`.
    ///
    /// The default computes the three quantities separately (three score
    /// passes); models override it to share one. Either way the results are
    /// bitwise identical to the individual methods — the fused path reuses the
    /// exact same scores, it does not reassociate anything.
    fn evaluate_into(
        &self,
        params: &Vector,
        x: &Vector,
        y: usize,
        out: &mut Vector,
    ) -> Result<SampleEval> {
        let predicted = self.predict(params, x)?;
        let loss = self.loss(params, x, y)?;
        self.gradient_into(params, x, y, out)?;
        Ok(SampleEval { predicted, loss })
    }

    /// Validates that a feature/label pair is compatible with the model.
    fn validate(&self, x: &Vector, y: usize) -> Result<()> {
        if x.len() != self.input_dim() {
            return Err(LearningError::ShapeMismatch {
                reason: format!(
                    "feature dimension {} does not match model input dimension {}",
                    x.len(),
                    self.input_dim()
                ),
            });
        }
        if y >= self.num_classes() {
            return Err(LearningError::ShapeMismatch {
                reason: format!("label {y} out of range for {} classes", self.num_classes()),
            });
        }
        Ok(())
    }
}

/// Per-sample outcome of a fused [`Model::evaluate_into`] pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleEval {
    /// The predicted class label (argmax of the scores).
    pub predicted: usize,
    /// The per-sample loss `l(h(x; w), y)`.
    pub loss: f64,
}

/// The statistics a device computes over one minibatch in Device Routine 2:
/// the averaged regularized gradient `g̃ = (1/n) Σ ∇l + λw`, the number of
/// processed samples `n_s`, the misclassification count `n_e`, and the per-class
/// label counts `n_y^k`.
#[derive(Debug, Clone, PartialEq)]
pub struct MinibatchStats {
    /// Averaged regularized gradient over the minibatch.
    pub gradient: Vector,
    /// Number of samples in the minibatch (`n_s`).
    pub num_samples: usize,
    /// Number of misclassified samples under the current parameters (`n_e`).
    pub num_errors: usize,
    /// Per-class label counts (`n_y^k`, length `C`).
    pub label_counts: Vec<u64>,
    /// Average per-sample loss over the minibatch (not transmitted; used for
    /// diagnostics and tests).
    pub mean_loss: f64,
}

/// Computes the Device Routine 2 statistics for a minibatch: predictions, error and
/// label counts, and the averaged gradient `g̃ = (1/n) Σ_i ∇l(x_i, y_i) + λ w`.
///
/// `holdout` optionally marks samples (by index) that are used only for error
/// estimation — their gradients are excluded from the average, matching Remark 2
/// of the paper.
pub fn minibatch_statistics<M: Model + ?Sized>(
    model: &M,
    params: &Vector,
    samples: &[Sample],
    lambda: f64,
    holdout: &[usize],
) -> Result<MinibatchStats> {
    let mut scratch = Vector::zeros(model.param_dim());
    minibatch_statistics_into(model, params, samples, lambda, holdout, &mut scratch)
}

/// [`minibatch_statistics`] with a caller-provided per-sample gradient scratch
/// vector (length [`Model::param_dim`]), so training loops that process many
/// minibatches allocate the scratch once instead of once per sample.
pub fn minibatch_statistics_into<M: Model + ?Sized>(
    model: &M,
    params: &Vector,
    samples: &[Sample],
    lambda: f64,
    holdout: &[usize],
    scratch: &mut Vector,
) -> Result<MinibatchStats> {
    if samples.is_empty() {
        return Err(LearningError::EmptyData);
    }
    if lambda < 0.0 || !lambda.is_finite() {
        return Err(LearningError::InvalidHyperparameter {
            name: "lambda",
            value: lambda,
        });
    }
    let mut grad_sum = Vector::zeros(model.param_dim());
    let mut num_errors = 0usize;
    let mut label_counts = vec![0u64; model.num_classes()];
    let mut loss_sum = 0.0;
    let mut grad_count = 0usize;

    for (i, s) in samples.iter().enumerate() {
        model.validate(&s.features, s.label)?;
        label_counts[s.label] += 1;
        let eval = model.evaluate_into(params, &s.features, s.label, scratch)?;
        if eval.predicted != s.label {
            num_errors += 1;
        }
        loss_sum += eval.loss;
        if holdout.contains(&i) {
            continue;
        }
        grad_sum
            .axpy(1.0, scratch)
            .map_err(|e| LearningError::ShapeMismatch {
                reason: format!("gradient accumulation failed: {e}"),
            })?;
        grad_count += 1;
    }

    let mut gradient = grad_sum;
    if grad_count > 0 {
        gradient.scale(1.0 / grad_count as f64);
    }
    if lambda > 0.0 {
        gradient
            .axpy(lambda, params)
            .map_err(|e| LearningError::ShapeMismatch {
                reason: format!("regularization failed: {e}"),
            })?;
    }
    if !gradient.is_finite() {
        return Err(LearningError::NumericalFailure {
            context: "minibatch gradient".into(),
        });
    }

    Ok(MinibatchStats {
        gradient,
        num_samples: samples.len(),
        num_errors,
        label_counts,
        mean_loss: loss_sum / samples.len() as f64,
    })
}

/// Numerically estimates the gradient of `model.loss` at `(params, x, y)` by
/// central finite differences. Used by tests and the Table I verification bench to
/// confirm the closed-form gradients.
pub fn finite_difference_gradient<M: Model + ?Sized>(
    model: &M,
    params: &Vector,
    x: &Vector,
    y: usize,
    step: f64,
) -> Result<Vector> {
    let mut grad = Vector::zeros(params.len());
    for i in 0..params.len() {
        let mut plus = params.clone();
        plus[i] += step;
        let mut minus = params.clone();
        minus[i] -= step;
        let f_plus = model.loss(&plus, x, y)?;
        let f_minus = model.loss(&minus, x, y)?;
        grad[i] = (f_plus - f_minus) / (2.0 * step);
    }
    Ok(grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::MulticlassLogistic;
    use crowd_linalg::Vector;

    fn samples() -> Vec<Sample> {
        vec![
            Sample::new(Vector::from_vec(vec![0.5, 0.5]), 0),
            Sample::new(Vector::from_vec(vec![-0.5, 0.5]), 1),
            Sample::new(Vector::from_vec(vec![0.25, -0.75]), 2),
            Sample::new(Vector::from_vec(vec![0.9, 0.1]), 0),
        ]
    }

    #[test]
    fn minibatch_stats_counts_and_shape() {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let w = model.init_params();
        let stats = minibatch_statistics(&model, &w, &samples(), 0.0, &[]).unwrap();
        assert_eq!(stats.num_samples, 4);
        assert_eq!(stats.label_counts, vec![2, 1, 1]);
        assert_eq!(stats.gradient.len(), model.param_dim());
        assert!(stats.mean_loss > 0.0);
        // With zero weights every class ties, argmax picks class 0, so labels 1 and
        // 2 are errors.
        assert_eq!(stats.num_errors, 2);
    }

    #[test]
    fn empty_minibatch_and_bad_lambda_rejected() {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let w = model.init_params();
        assert_eq!(
            minibatch_statistics(&model, &w, &[], 0.0, &[]),
            Err(LearningError::EmptyData)
        );
        assert!(minibatch_statistics(&model, &w, &samples(), -0.1, &[]).is_err());
        assert!(minibatch_statistics(&model, &w, &samples(), f64::NAN, &[]).is_err());
    }

    #[test]
    fn holdout_excludes_gradient_but_not_error_counting() {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let w = model.init_params();
        let all = minibatch_statistics(&model, &w, &samples(), 0.0, &[]).unwrap();
        let held = minibatch_statistics(&model, &w, &samples(), 0.0, &[0, 1, 2, 3]).unwrap();
        // All gradients held out: averaged gradient is zero, errors still counted.
        assert_eq!(held.gradient.norm_l1(), 0.0);
        assert_eq!(held.num_errors, all.num_errors);
        assert_eq!(held.num_samples, 4);
    }

    #[test]
    fn regularization_adds_lambda_w() {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let mut w = model.init_params();
        for i in 0..w.len() {
            w[i] = 0.1 * (i as f64 + 1.0);
        }
        let without = minibatch_statistics(&model, &w, &samples(), 0.0, &[]).unwrap();
        let with = minibatch_statistics(&model, &w, &samples(), 0.5, &[]).unwrap();
        let diff = &with.gradient - &without.gradient;
        let expected = w.scaled(0.5);
        assert!((diff.distance(&expected).unwrap()) < 1e-12);
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        let model = MulticlassLogistic::new(3, 2).unwrap();
        assert!(model.validate(&Vector::zeros(3), 1).is_ok());
        assert!(model.validate(&Vector::zeros(2), 1).is_err());
        assert!(model.validate(&Vector::zeros(3), 2).is_err());
    }
}
