//! Communication cost (§IV-B2): the paper argues Crowd-ML transmits `N/b`
//! gradients instead of `N` raw samples, a `b/2` reduction. These benches
//! measure the per-message encode/decode cost of the wire protocol for the
//! checkin payload (the dominant message) at several gradient
//! dimensionalities, and — since PR 4 — compare the dense encoding against the
//! sparse one at 95% sparsity, plus the pooled encode path against the
//! allocating one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd_proto::auth::AuthToken;
use crowd_proto::codec::{decode, encode, encode_into};
use crowd_proto::message::{CheckinRequest, CheckoutResponse, GradientPayload, Message};
use std::hint::black_box;

fn checkin_with(gradient: GradientPayload) -> Message {
    Message::CheckinRequest(CheckinRequest {
        device_id: 42,
        token: AuthToken::derive(42, 7),
        checkout_iteration: 1000,
        nonce: 0,
        round_id: 0,
        gradient,
        num_samples: 20,
        error_count: 3,
        label_counts: vec![2; 10],
    })
}

fn dense_gradient(dim: usize) -> GradientPayload {
    GradientPayload::Dense((0..dim).map(|i| i as f64 * 1e-3 + 1e-6).collect())
}

/// A gradient with 95% exact zeros, auto-encoded (which picks sparse).
fn sparse_gradient(dim: usize) -> GradientPayload {
    let mut values = vec![0.0; dim];
    for i in (0..dim).step_by(20) {
        values[i] = i as f64 * 1e-3 + 1e-6;
    }
    let payload = GradientPayload::from_dense_auto(values);
    assert!(matches!(payload, GradientPayload::Sparse { .. }));
    payload
}

/// A quantized gradient (wire v5): i16 levels plus a shared scale.
fn quantized_gradient(dim: usize) -> GradientPayload {
    let levels = (0..dim).map(|i| (i % 1000) as i16 - 500).collect();
    GradientPayload::Quantized {
        scale: 1e-4,
        levels,
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut encode_group = c.benchmark_group("encode_checkin");
    for &dim in &[50usize, 500, 5000] {
        let msg = checkin_with(dense_gradient(dim));
        encode_group.bench_with_input(BenchmarkId::new("dense", dim), &msg, |bench, msg| {
            bench.iter(|| black_box(encode(black_box(msg))))
        });
        let msg = checkin_with(sparse_gradient(dim));
        encode_group.bench_with_input(BenchmarkId::new("sparse95", dim), &msg, |bench, msg| {
            bench.iter(|| black_box(encode(black_box(msg))))
        });
    }
    encode_group.finish();

    let mut decode_group = c.benchmark_group("decode_checkin");
    for &dim in &[50usize, 500, 5000] {
        let bytes = encode(&checkin_with(dense_gradient(dim)));
        decode_group.bench_with_input(BenchmarkId::new("dense", dim), &bytes, |bench, bytes| {
            bench.iter(|| black_box(decode(black_box(bytes)).unwrap()))
        });
        let bytes = encode(&checkin_with(sparse_gradient(dim)));
        decode_group.bench_with_input(BenchmarkId::new("sparse95", dim), &bytes, |bench, bytes| {
            bench.iter(|| black_box(decode(black_box(bytes)).unwrap()))
        });
    }
    decode_group.finish();

    // The acceptance gate for the sparse transport: encode+decode of a
    // 95%-sparse checkin must beat the dense round trip.
    let mut roundtrip_group = c.benchmark_group("roundtrip_checkin_d5000");
    let dense = checkin_with(dense_gradient(5000));
    roundtrip_group.bench_function("dense", |bench| {
        bench.iter(|| {
            let bytes = encode(black_box(&dense));
            black_box(decode(&bytes).unwrap())
        })
    });
    let sparse = checkin_with(sparse_gradient(5000));
    roundtrip_group.bench_function("sparse95", |bench| {
        bench.iter(|| {
            let bytes = encode(black_box(&sparse));
            black_box(decode(&bytes).unwrap())
        })
    });
    // The quantized transport ships 2-byte levels instead of 8-byte doubles;
    // the round trip should be no slower than dense while ~4× smaller.
    let quantized = checkin_with(quantized_gradient(5000));
    roundtrip_group.bench_function("quantized", |bench| {
        bench.iter(|| {
            let bytes = encode(black_box(&quantized));
            black_box(decode(&bytes).unwrap())
        })
    });
    roundtrip_group.finish();

    // Pooled encode (reused buffer) vs allocating encode.
    let mut encode_path = c.benchmark_group("encode_path_d5000");
    let msg = checkin_with(dense_gradient(5000));
    encode_path.bench_function("alloc", |bench| {
        bench.iter(|| black_box(encode(black_box(&msg))))
    });
    encode_path.bench_function("reused_buffer", |bench| {
        let mut scratch: Vec<u8> = Vec::new();
        bench.iter(|| {
            scratch.clear();
            encode_into(black_box(&msg), &mut scratch);
            black_box(scratch.len())
        })
    });
    encode_path.finish();

    c.bench_function("roundtrip_checkout_response_d500", |bench| {
        let msg = Message::CheckoutResponse(CheckoutResponse {
            iteration: 5,
            params: vec![0.5; 500],
            stopped: false,
            round: None,
        });
        bench.iter(|| {
            let bytes = encode(black_box(&msg));
            black_box(decode(&bytes).unwrap())
        })
    });
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
