//! Communication cost (§IV-B2): the paper argues Crowd-ML transmits `N/b`
//! gradients instead of `N` raw samples, a `b/2` reduction. These benches measure
//! the per-message encode/decode cost of the wire protocol for the checkin payload
//! (the dominant message) at several gradient dimensionalities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd_proto::auth::AuthToken;
use crowd_proto::codec::{decode, encode};
use crowd_proto::message::{CheckinRequest, CheckoutResponse, Message};
use std::hint::black_box;

fn checkin_message(dim: usize) -> Message {
    Message::CheckinRequest(CheckinRequest {
        device_id: 42,
        token: AuthToken::derive(42, 7),
        checkout_iteration: 1000,
        gradient: (0..dim).map(|i| i as f64 * 1e-3).collect(),
        num_samples: 20,
        error_count: 3,
        label_counts: vec![2; 10],
    })
}

fn bench_codec(c: &mut Criterion) {
    let mut encode_group = c.benchmark_group("encode_checkin");
    for &dim in &[50usize, 500, 5000] {
        let msg = checkin_message(dim);
        encode_group.bench_with_input(BenchmarkId::from_parameter(dim), &msg, |bench, msg| {
            bench.iter(|| black_box(encode(black_box(msg))))
        });
    }
    encode_group.finish();

    let mut decode_group = c.benchmark_group("decode_checkin");
    for &dim in &[50usize, 500, 5000] {
        let bytes = encode(&checkin_message(dim));
        decode_group.bench_with_input(BenchmarkId::from_parameter(dim), &bytes, |bench, bytes| {
            bench.iter(|| black_box(decode(black_box(bytes)).unwrap()))
        });
    }
    decode_group.finish();

    c.bench_function("roundtrip_checkout_response_d500", |bench| {
        let msg = Message::CheckoutResponse(CheckoutResponse {
            iteration: 5,
            params: vec![0.5; 500],
            stopped: false,
        });
        bench.iter(|| {
            let bytes = encode(black_box(&msg));
            black_box(decode(&bytes).unwrap())
        })
    });
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
