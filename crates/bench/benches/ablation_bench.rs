//! Ablations over the design choices called out in DESIGN.md §5.
//!
//! * minibatch size vs the per-checkin work a device performs at fixed ε (the
//!   Eq. 13 trade-off): larger b amortizes the Laplace draw over more samples;
//! * learning-rate schedule: the paper's `c/√t` vs AdaGrad (Remark 3);
//! * Laplace vs Gaussian gradient perturbation (footnote 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd_core::config::{DeviceConfig, PrivacyConfig};
use crowd_core::device::Device;
use crowd_data::Sample;
use crowd_dp::{Epsilon, GaussianMechanism, LaplaceMechanism};
use crowd_learning::model::Model;
use crowd_learning::{LearningRate, MulticlassLogistic};
use crowd_linalg::ops::normalize_l1;
use crowd_linalg::random::normal_vector;
use crowd_linalg::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_minibatch_ablation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let dim = 50;
    let classes = 10;
    let model = MulticlassLogistic::new(dim, classes).unwrap();
    let params = model.init_params();

    let mut group = c.benchmark_group("device_checkin_cost_vs_minibatch");
    for &b in &[1usize, 4, 16, 64] {
        let samples: Vec<Sample> = (0..b)
            .map(|_| {
                let mut x = normal_vector(&mut rng, dim);
                normalize_l1(&mut x);
                Sample::new(x, rng.gen_range(0..classes))
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(b),
            &samples,
            |bench, samples| {
                bench.iter_batched(
                    || {
                        let mut device = Device::new(
                            0,
                            DeviceConfig::new(samples.len()),
                            PrivacyConfig::with_total_epsilon(10.0),
                        )
                        .unwrap();
                        for s in samples {
                            device.observe(s.clone());
                        }
                        device.begin_checkout().unwrap();
                        (device, StdRng::seed_from_u64(7))
                    },
                    |(mut device, mut rng)| {
                        black_box(
                            device
                                .compute_checkin(&model, &params, 0, 0.0, &mut rng)
                                .unwrap(),
                        )
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_schedule_ablation(c: &mut Criterion) {
    let gradient = Vector::filled(500, 0.01);
    let mut group = c.benchmark_group("learning_rate_schedule");
    group.bench_function("inv_sqrt", |bench| {
        let mut schedule = LearningRate::inv_sqrt(1.0).unwrap();
        let mut t = 0usize;
        bench.iter(|| {
            t += 1;
            black_box(schedule.rate(t, &gradient))
        })
    });
    group.bench_function("adagrad", |bench| {
        let mut schedule = LearningRate::adagrad(1.0, 1e-8).unwrap();
        let mut t = 0usize;
        bench.iter(|| {
            t += 1;
            black_box(schedule.rate(t, &gradient))
        })
    });
    group.finish();
}

fn bench_mechanism_ablation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let gradient = Vector::zeros(500);
    let eps = Epsilon::finite(10.0).unwrap();
    let mut group = c.benchmark_group("gradient_mechanism");
    group.bench_function("laplace", |bench| {
        let mechanism = LaplaceMechanism::new(eps, 0.2).unwrap();
        bench.iter(|| black_box(mechanism.perturb_vector(&mut rng, &gradient)))
    });
    group.bench_function("gaussian", |bench| {
        let mechanism = GaussianMechanism::new(eps, 1e-5, 0.2).unwrap();
        bench.iter(|| black_box(mechanism.perturb_vector(&mut rng, &gradient)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_minibatch_ablation,
    bench_schedule_ablation,
    bench_mechanism_ablation
);
criterion_main!(benches);
