//! Cost of the privacy mechanisms (§IV-B1): Laplace gradient perturbation per
//! minibatch, discrete Laplace counter perturbation, and the exponential-mechanism
//! label flip used by the centralized baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd_dp::{
    DiscreteLaplaceMechanism, Epsilon, ExponentialMechanism, GaussianMechanism, LaplaceMechanism,
};
use crowd_linalg::Vector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_mechanisms(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let eps = Epsilon::finite(10.0).unwrap();

    let mut group = c.benchmark_group("laplace_gradient_perturbation");
    for &dim in &[50usize, 500, 1000] {
        let mechanism = LaplaceMechanism::new(eps, 4.0 / 20.0).unwrap();
        let gradient = Vector::zeros(dim);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bench, _| {
            bench.iter(|| black_box(mechanism.perturb_vector(&mut rng, black_box(&gradient))))
        });
    }
    group.finish();

    c.bench_function("gaussian_gradient_perturbation_d500", |bench| {
        let mechanism = GaussianMechanism::new(eps, 1e-5, 0.2).unwrap();
        let gradient = Vector::zeros(500);
        bench.iter(|| black_box(mechanism.perturb_vector(&mut rng, black_box(&gradient))))
    });

    c.bench_function("discrete_laplace_counter", |bench| {
        let mechanism = DiscreteLaplaceMechanism::new(eps);
        bench.iter(|| black_box(mechanism.perturb_count(&mut rng, black_box(17))))
    });

    c.bench_function("exponential_label_flip_c10", |bench| {
        let mechanism = ExponentialMechanism::new(eps, 1.0).unwrap();
        bench.iter(|| black_box(mechanism.perturb_label(&mut rng, black_box(3), 10).unwrap()))
    });
}

criterion_group!(benches, bench_mechanisms);
criterion_main!(benches);
