//! Throughput of the discrete-event simulation and of a full small Crowd-ML run,
//! used to size the `--full` figure reproductions and to check that simulation
//! overhead (event queue, delay sampling) stays negligible next to the learning
//! math.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd_core::config::CrowdMlConfig;
use crowd_core::simulation::{run_crowd_ml, SimulationConfig};
use crowd_data::partition::{partition, PartitionStrategy};
use crowd_data::synthetic::GaussianMixtureSpec;
use crowd_learning::MulticlassLogistic;
use crowd_sim::{DelayModel, EventQueue};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_schedule_pop");
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| {
                let mut queue = EventQueue::new();
                for i in 0..n {
                    queue.schedule((n - i) as f64, i);
                }
                while let Some(e) = queue.pop() {
                    black_box(e.payload);
                }
            })
        });
    }
    group.finish();

    c.bench_function("uniform_delay_sampling", |bench| {
        let mut rng = StdRng::seed_from_u64(0);
        let model = DelayModel::Uniform { max: 100.0 };
        bench.iter(|| black_box(model.sample(&mut rng)))
    });
}

fn bench_crowd_run(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let (train, test) = GaussianMixtureSpec::new(20, 5)
        .with_train_size(2000)
        .with_test_size(200)
        .generate(&mut rng)
        .unwrap();
    let parts = partition(&train, 50, PartitionStrategy::Iid, &mut rng).unwrap();
    let model = MulticlassLogistic::new(20, 5).unwrap();
    let config = CrowdMlConfig::default_non_private();
    let sim = SimulationConfig::new().with_eval_every(10_000);

    c.bench_function("crowd_ml_simulation_2000_samples_50_devices", |bench| {
        bench.iter(|| {
            let mut run_rng = StdRng::seed_from_u64(2);
            black_box(run_crowd_ml(&model, &parts, &test, &config, &sim, &mut run_rng).unwrap())
        })
    });
}

criterion_group!(benches, bench_event_queue, bench_crowd_run);
criterion_main!(benches);
