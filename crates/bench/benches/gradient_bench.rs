//! Device-side computation cost (§IV-B1): per-sample gradients and averaged
//! minibatch gradients for the paper's multiclass logistic regression at the
//! MNIST-like dimensionality (D = 50, C = 10).
//!
//! The scalability analysis claims the per-device load is "a gradient per sample,
//! a vector summation per sample, and Laplace noise per minibatch" — cheap enough
//! for a low-end device. These benches measure exactly those operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd_data::Sample;
use crowd_learning::model::{minibatch_statistics, Model};
use crowd_learning::MulticlassLogistic;
use crowd_linalg::ops::normalize_l1;
use crowd_linalg::random::normal_vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn make_batch(rng: &mut StdRng, dim: usize, classes: usize, b: usize) -> Vec<Sample> {
    (0..b)
        .map(|_| {
            let mut x = normal_vector(rng, dim);
            normalize_l1(&mut x);
            Sample::new(x, rng.gen_range(0..classes))
        })
        .collect()
}

fn bench_gradients(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let dim = 50;
    let classes = 10;
    let model = MulticlassLogistic::new(dim, classes).unwrap();
    let w = normal_vector(&mut rng, model.param_dim());
    let sample = make_batch(&mut rng, dim, classes, 1).pop().unwrap();

    // The allocating per-sample gradient vs the `gradient_into` fast path
    // writing into one reused scratch vector (the acceptance comparison for
    // the allocation-free kernels).
    let mut grad_group = c.benchmark_group("per_sample_gradient_d50_c10");
    grad_group.bench_function("alloc", |bench| {
        bench.iter(|| {
            black_box(
                model
                    .gradient(black_box(&w), black_box(&sample.features), sample.label)
                    .unwrap(),
            )
        })
    });
    grad_group.bench_function("into", |bench| {
        let mut scratch = crowd_linalg::Vector::zeros(model.param_dim());
        bench.iter(|| {
            model
                .gradient_into(
                    black_box(&w),
                    black_box(&sample.features),
                    sample.label,
                    &mut scratch,
                )
                .unwrap();
            black_box(scratch.as_slice()[0])
        })
    });
    // The fused pass computes prediction, loss, and gradient from one scores
    // evaluation — what the minibatch loop actually runs per sample.
    grad_group.bench_function("fused_evaluate", |bench| {
        let mut scratch = crowd_linalg::Vector::zeros(model.param_dim());
        bench.iter(|| {
            black_box(
                model
                    .evaluate_into(
                        black_box(&w),
                        black_box(&sample.features),
                        sample.label,
                        &mut scratch,
                    )
                    .unwrap(),
            )
        })
    });
    // The unfused baseline the fused pass replaces: three independent scores
    // evaluations (predict, loss, gradient) per sample.
    grad_group.bench_function("separate_passes", |bench| {
        let mut scratch = crowd_linalg::Vector::zeros(model.param_dim());
        bench.iter(|| {
            let predicted = model.predict(black_box(&w), &sample.features).unwrap();
            let loss = model
                .loss(black_box(&w), &sample.features, sample.label)
                .unwrap();
            model
                .gradient_into(black_box(&w), &sample.features, sample.label, &mut scratch)
                .unwrap();
            black_box((predicted, loss, scratch.as_slice()[0]))
        })
    });
    grad_group.finish();

    c.bench_function("per_sample_prediction_d50_c10", |bench| {
        bench.iter(|| black_box(model.predict(black_box(&w), &sample.features).unwrap()))
    });

    let mut group = c.benchmark_group("averaged_minibatch_gradient");
    for &b in &[1usize, 10, 20, 64] {
        let batch = make_batch(&mut rng, dim, classes, b);
        group.bench_with_input(BenchmarkId::from_parameter(b), &batch, |bench, batch| {
            bench.iter(|| {
                black_box(minibatch_statistics(&model, &w, black_box(batch), 0.0, &[]).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gradients);
criterion_main!(benches);
