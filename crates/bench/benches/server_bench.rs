//! Server-side computation cost (§IV-B1): the paper argues Crowd-ML "puts minimal
//! load on the server which is the SGD update (3)". This bench measures one
//! checkout and one checkin (projected update + counter accumulation) at the
//! MNIST-like parameter dimensionality (500 parameters) and a larger model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd_core::config::ServerConfig;
use crowd_core::device::CheckinPayload;
use crowd_core::server::Server;
use crowd_learning::MulticlassLogistic;
use crowd_linalg::Vector;
use std::hint::black_box;

fn payload(dim: usize, classes: usize) -> CheckinPayload {
    CheckinPayload {
        device_id: 1,
        checkout_iteration: 0,
        nonce: 0,
        gradient: Vector::filled(dim * classes, 0.01).into(),
        num_samples: 20,
        error_count: 2,
        label_counts: vec![2; classes],
    }
}

fn bench_server(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_checkin_update");
    for &(dim, classes) in &[(50usize, 10usize), (100, 10), (500, 10)] {
        let model = MulticlassLogistic::new(dim, classes).unwrap();
        let p = payload(dim, classes);
        group.bench_with_input(
            BenchmarkId::from_parameter(dim * classes),
            &p,
            |bench, p| {
                bench.iter_batched(
                    || Server::new(model, ServerConfig::new()).unwrap(),
                    |mut server| black_box(server.checkin(black_box(p)).unwrap()),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();

    c.bench_function("server_checkout_d50_c10", |bench| {
        let model = MulticlassLogistic::new(50, 10).unwrap();
        let server = Server::new(model, ServerConfig::new()).unwrap();
        bench.iter(|| black_box(server.checkout()))
    });
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
