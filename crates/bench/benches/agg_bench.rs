//! Server throughput comparison: the original single-mutex path (every
//! checkout clones the parameter vector under the global lock and every
//! checkin serializes a full projected SGD update behind it) versus the
//! `crowd-agg` sharded runtime, varying device concurrency, shard count, and
//! epoch size.
//!
//! Each measured iteration runs `threads` devices through rounds of the
//! protocol's natural unit of work — one checkout followed by a window of
//! checkins — until `threads × CHECKINS_PER_DEVICE` checkins have been applied,
//! so ms/iter is directly comparable across paths: lower is higher sustained
//! throughput. Two submission styles are timed for the runtime: `sync` (each
//! device blocks on its ack before the next checkin, the lockstep worst case
//! for batching — it pays the sharding machinery without amortizing anything)
//! and `pipelined` (devices submit their round's window before collecting
//! acks, as a gateway or async device would), which lets large epochs amortize
//! the projection and bookkeeping of the update across many gradients while
//! checkouts ride the lock-free snapshot.

use criterion::{criterion_group, criterion_main, Criterion};
use crowd_agg::AggRuntime;
use crowd_core::config::{AggSettings, RoundSettings, ServerConfig};
use crowd_core::device::CheckinPayload;
use crowd_core::server::{PendingSubmission, Server};
use crowd_learning::MulticlassLogistic;
use crowd_linalg::Vector;
use parking_lot::Mutex;
use std::hint::black_box;
use std::sync::Arc;

// A large model (d = DIM·CLASSES = 100 000 parameters) so the per-request
// O(d) work — the thing sharding, batching, and snapshotting amortize —
// dominates the fixed per-request synchronization cost. 24 checkins per device
// keeps the totals (48 / 192) aligned with the benched epoch sizes, so no
// measured configuration depends on the idle-flush timer.
const DIM: usize = 1000;
const CLASSES: usize = 100;
const CHECKINS_PER_DEVICE: u64 = 24;
// Checkins per checkout round: a device that has buffered a few minibatches
// (or a gateway fronting co-located devices) uploads them against one
// parameter snapshot.
const ROUND: u64 = 4;

fn payload(device_id: u64, step: u64) -> CheckinPayload {
    CheckinPayload {
        device_id,
        checkout_iteration: step,
        nonce: 0,
        gradient: Vector::filled(DIM * CLASSES, 0.001).into(),
        num_samples: 20,
        error_count: 2,
        label_counts: vec![2; CLASSES],
    }
}

/// A 95%-zero gradient in its sparse representation: what a bandwidth-lean
/// device uploads, ingested by the shards via scatter-add.
fn sparse_payload(device_id: u64, step: u64) -> CheckinPayload {
    let dim = DIM * CLASSES;
    let mut grad = vec![0.0; dim];
    for i in (0..dim).step_by(20) {
        grad[i] = 0.001;
    }
    let gradient = crowd_linalg::GradientUpdate::from_dense_auto(Vector::from_vec(grad));
    assert!(gradient.is_sparse());
    CheckinPayload {
        device_id,
        checkout_iteration: step,
        nonce: 0,
        gradient,
        num_samples: 20,
        error_count: 2,
        label_counts: vec![2; CLASSES],
    }
}

fn new_server() -> Server<MulticlassLogistic> {
    let model = MulticlassLogistic::new(DIM, CLASSES).unwrap();
    Server::new(model, ServerConfig::new()).unwrap()
}

/// The pre-`crowd-agg` design: one global mutex around the whole server, so a
/// checkout copies the parameters under the same lock every update serializes
/// behind.
fn run_single_mutex(threads: u64) -> u64 {
    let server = Arc::new(Mutex::new(new_server()));
    let mut handles = Vec::new();
    for device in 0..threads {
        let server = Arc::clone(&server);
        handles.push(std::thread::spawn(move || {
            for round in 0..CHECKINS_PER_DEVICE / ROUND {
                let ticket = server.lock().checkout();
                black_box(ticket.iteration);
                for slot in 0..ROUND {
                    let p = payload(device, round * ROUND + slot);
                    let mut guard = server.lock();
                    black_box(guard.checkin(&p).unwrap());
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let iterations = server.lock().iteration();
    assert_eq!(iterations, threads * CHECKINS_PER_DEVICE);
    iterations
}

fn sharded_runtime(shards: usize, epoch: u64) -> AggRuntime<MulticlassLogistic> {
    let config = ServerConfig::new().with_agg(AggSettings {
        shard_count: shards,
        queue_bound: 4096,
        epoch_size: epoch,
        worker_threads: 2,
        retry_after_ms: 1,
        flush_idle_ms: 1,
    });
    let model = MulticlassLogistic::new(DIM, CLASSES).unwrap();
    AggRuntime::new(Server::new(model, config).unwrap()).unwrap()
}

/// Lockstep devices: checkout a snapshot each round, then block on each ack
/// before the next checkin.
fn run_sharded_sync(threads: u64, shards: usize, epoch: u64) -> u64 {
    let runtime = Arc::new(sharded_runtime(shards, epoch));
    let mut handles = Vec::new();
    for device in 0..threads {
        let runtime = Arc::clone(&runtime);
        handles.push(std::thread::spawn(move || {
            for round in 0..CHECKINS_PER_DEVICE / ROUND {
                black_box(runtime.snapshot().iteration);
                for slot in 0..ROUND {
                    let p = payload(device, round * ROUND + slot);
                    black_box(runtime.checkin(p).unwrap());
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let applied = runtime.stats().get("checkins_applied");
    assert_eq!(applied, threads * CHECKINS_PER_DEVICE);
    runtime.shutdown();
    applied
}

/// Pipelined devices: checkout a snapshot, submit the round's window, then
/// collect the acks. `sparse` switches the uploads to the 95%-zero sparse
/// representation, exercising the shard scatter-add path.
fn run_sharded_pipelined_with(threads: u64, shards: usize, epoch: u64, sparse: bool) -> u64 {
    let runtime = Arc::new(sharded_runtime(shards, epoch));
    let mut handles = Vec::new();
    for device in 0..threads {
        let runtime = Arc::clone(&runtime);
        handles.push(std::thread::spawn(move || {
            for round in 0..CHECKINS_PER_DEVICE / ROUND {
                black_box(runtime.snapshot().iteration);
                let tickets: Vec<_> = (0..ROUND)
                    .map(|slot| {
                        let step = round * ROUND + slot;
                        let p = if sparse {
                            sparse_payload(device, step)
                        } else {
                            payload(device, step)
                        };
                        runtime.submit(p).unwrap()
                    })
                    .collect();
                for ticket in tickets {
                    black_box(ticket.wait().unwrap());
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let applied = runtime.stats().get("checkins_applied");
    assert_eq!(applied, threads * CHECKINS_PER_DEVICE);
    runtime.shutdown();
    applied
}

fn run_sharded_pipelined(threads: u64, shards: usize, epoch: u64) -> u64 {
    run_sharded_pipelined_with(threads, shards, epoch, false)
}

/// One pipelined run's submit→ack latency distribution, read off the
/// crowd-scope registry and reported as extra `BENCH_JSON` entries
/// (`checkin_latency_p50_us` / `checkin_latency_p99_us`, values in ns like
/// every other entry). These feed `BENCH_runtime.json` so the perf
/// trajectory tracks tail latency, not just throughput; the bench gate
/// treats them like any other named entry.
fn report_checkin_latency_percentiles() {
    let runtime = Arc::new(sharded_runtime(8, 64));
    let mut handles = Vec::new();
    for device in 0..8u64 {
        let runtime = Arc::clone(&runtime);
        handles.push(std::thread::spawn(move || {
            for round in 0..CHECKINS_PER_DEVICE / ROUND {
                black_box(runtime.snapshot().iteration);
                let tickets: Vec<_> = (0..ROUND)
                    .map(|slot| {
                        runtime
                            .submit(payload(device, round * ROUND + slot))
                            .unwrap()
                    })
                    .collect();
                for ticket in tickets {
                    black_box(ticket.wait().unwrap());
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let snap = runtime.stats();
    runtime.shutdown();
    let bins = snap
        .histogram("checkin_latency_us")
        .expect("registry checkin latency histogram");
    println!(
        "bench {:<50} p50={}us p99={}us (n={})",
        "checkin_latency/pipelined_e64",
        bins.p50(),
        bins.p99(),
        bins.count()
    );
    let Some(path) = std::env::var_os("BENCH_JSON") else {
        return;
    };
    use std::io::Write;
    // Mirrors the vendored criterion shim's BENCH_JSON line format.
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        for (name, us) in [
            ("checkin_latency_p50_us", bins.p50()),
            ("checkin_latency_p99_us", bins.p99()),
        ] {
            let _ = writeln!(
                file,
                "{{\"name\":\"{name}\",\"ns_per_iter\":{:.1}}}",
                us as f64 * 1e3
            );
        }
    }
}

// The rounds bench uses a smaller model (d = 1 000) than the throughput
// benches: a cohort round is dominated by per-member mask generation and the
// finalization unmask+sum, both O(cohort · d), and this size keeps one round
// in the microsecond regime where the latency histogram has resolution.
const ROUND_DIM: usize = 100;
const ROUND_CLASSES: usize = 10;
const COHORT: u64 = 8;

fn rounds_runtime() -> AggRuntime<MulticlassLogistic> {
    let config = ServerConfig::new()
        .with_agg(AggSettings {
            shard_count: 4,
            queue_bound: 4096,
            epoch_size: 1,
            worker_threads: 2,
            retry_after_ms: 1,
            flush_idle_ms: 1,
        })
        .with_rounds(
            RoundSettings::new(COHORT)
                .with_select_fraction(1.0)
                .with_deadline_epochs(1_000_000),
        );
    let model = MulticlassLogistic::new(ROUND_DIM, ROUND_CLASSES).unwrap();
    AggRuntime::new(Server::new(model, config).unwrap()).unwrap()
}

/// One full cohort round: every member derives its net mask, masks a dense
/// gradient, and submits; the last submission completes the cohort and drives
/// finalization (mask cancellation, unmasked sum, projected update) inline.
fn run_one_round(runtime: &AggRuntime<MulticlassLogistic>) {
    let info = runtime.round_info().expect("rounds are enabled");
    let members = crowd_rounds::cohort(info.seed, info.population, info.select_fraction);
    let dim = ROUND_DIM * ROUND_CLASSES;
    let grad = vec![0.001f64; dim];
    for &d in &members {
        let mask_words = crowd_rounds::net_mask(info.seed, d, &members, dim);
        let words = crowd_rounds::mask(&grad, &mask_words);
        let submission = PendingSubmission {
            device_id: d,
            nonce: info.round_id,
            checkout_iteration: 0,
            words,
            num_samples: 2 * ROUND_CLASSES as u32,
            error_count: 2,
            label_counts: vec![2; ROUND_CLASSES],
        };
        black_box(runtime.submit_round(info.round_id, submission).unwrap());
    }
}

/// Server-side round-finalization latency percentiles off the crowd-scope
/// `round_finalize_us` histogram, reported as `BENCH_JSON` entries
/// (`round_finalize_p50_us` / `round_finalize_p99_us`, values in ns like
/// every other entry) so `BENCH_runtime.json` tracks finalization latency.
fn report_round_finalize_percentiles() {
    let runtime = rounds_runtime();
    for _ in 0..64 {
        run_one_round(&runtime);
    }
    let snap = runtime.stats();
    runtime.shutdown();
    let bins = snap
        .histogram("round_finalize_us")
        .expect("registry round finalize histogram");
    println!(
        "bench {:<50} p50={}us p99={}us (n={})",
        "round_finalize/latency_cohort8",
        bins.p50(),
        bins.p99(),
        bins.count()
    );
    let Some(path) = std::env::var_os("BENCH_JSON") else {
        return;
    };
    use std::io::Write;
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        for (name, us) in [
            ("round_finalize_p50_us", bins.p50()),
            ("round_finalize_p99_us", bins.p99()),
        ] {
            let _ = writeln!(
                file,
                "{{\"name\":\"{name}\",\"ns_per_iter\":{:.1}}}",
                us as f64 * 1e3
            );
        }
    }
}

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_finalize");
    group.bench_function(
        format!("cohort{COHORT}_d{}", ROUND_DIM * ROUND_CLASSES),
        |b| {
            let runtime = rounds_runtime();
            b.iter(|| run_one_round(&runtime));
            runtime.shutdown();
        },
    );
    group.finish();
    report_round_finalize_percentiles();
}

fn bench_agg(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkin_throughput");
    for &threads in &[2u64, 8] {
        group.bench_function(format!("single_mutex/devices{threads}"), |b| {
            b.iter(|| run_single_mutex(threads))
        });
        group.bench_function(format!("sharded_sync_e1/devices{threads}"), |b| {
            b.iter(|| run_sharded_sync(threads, 8, 1))
        });
        group.bench_function(
            format!("sharded_pipelined_e{threads}/devices{threads}"),
            |b| b.iter(|| run_sharded_pipelined(threads, 8, threads)),
        );
        group.bench_function(format!("sharded_pipelined_e64/devices{threads}"), |b| {
            b.iter(|| run_sharded_pipelined(threads, 8, 64))
        });
        // Same pipeline, sparse uploads: the shards scatter-add 5% of the
        // coordinates instead of folding all of them.
        group.bench_function(
            format!("sharded_pipelined_e64_sparse95/devices{threads}"),
            |b| b.iter(|| run_sharded_pipelined_with(threads, 8, 64, true)),
        );
    }
    // Shard-count sweep at fixed (high) concurrency.
    for &shards in &[1usize, 4, 16] {
        group.bench_function(format!("sharded_pipelined_e64/shards{shards}"), |b| {
            b.iter(|| run_sharded_pipelined(8, shards, 64))
        });
    }
    group.finish();
    report_checkin_latency_percentiles();
}

criterion_group!(benches, bench_agg, bench_rounds);
criterion_main!(benches);
