//! The SIMD kernel dispatch vs the scalar reference at the server-side hot
//! dimensionality (D = 5000, roughly the MNIST-like D·C parameter vector).
//!
//! `crowd_linalg::kernels::{dot, axpy, ...}` dispatch to the widest lane width
//! the CPU supports (honouring `CROWD_SIMD`); `kernels::scalar::*` is the
//! portable reference every SIMD path must match bitwise. The acceptance bar
//! for the vectorized kernels is dot/axpy at d=5000 running ≥1.5× faster than
//! the scalar reference when SIMD is active.

use criterion::{criterion_group, criterion_main, Criterion};
use crowd_linalg::kernels;
use crowd_linalg::random::normal_vector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let dim = 5000;
    let a = normal_vector(&mut rng, dim);
    let b = normal_vector(&mut rng, dim);

    let mut group = c.benchmark_group("kernels_d5000");
    group.bench_function("dot_scalar", |bench| {
        bench.iter(|| black_box(kernels::scalar::dot(black_box(a.as_slice()), b.as_slice())))
    });
    group.bench_function("dot_simd", |bench| {
        bench.iter(|| black_box(kernels::dot(black_box(a.as_slice()), b.as_slice())))
    });
    group.bench_function("sum_sq_scalar", |bench| {
        bench.iter(|| black_box(kernels::scalar::sum_sq(black_box(a.as_slice()))))
    });
    group.bench_function("sum_sq_simd", |bench| {
        bench.iter(|| black_box(kernels::sum_sq(black_box(a.as_slice()))))
    });
    group.bench_function("axpy_scalar", |bench| {
        let mut y = b.clone();
        bench.iter(|| {
            kernels::scalar::axpy(0.125, black_box(a.as_slice()), y.as_mut_slice());
            black_box(y.as_slice()[0])
        })
    });
    group.bench_function("axpy_simd", |bench| {
        let mut y = b.clone();
        bench.iter(|| {
            kernels::axpy(0.125, black_box(a.as_slice()), y.as_mut_slice());
            black_box(y.as_slice()[0])
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
