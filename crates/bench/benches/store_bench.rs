//! Persistence-subsystem benches: WAL append throughput and recovery time.
//!
//! The WAL append sits on the checkin write path (one append per epoch,
//! group-committed with the aggregation runtime's batching), so its cost
//! bounds the durable server's update rate; recovery time bounds how long a
//! restarted server is dark. Both are measured at several gradient
//! dimensionalities and WAL lengths, without fsync (the CI box measures the
//! code path, not its disk).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd_core::config::ServerConfig;
use crowd_core::device::CheckinPayload;
use crowd_core::server::EpochAggregate;
use crowd_learning::MulticlassLogistic;
use crowd_linalg::Vector;
use crowd_store::testutil::temp_dir;
use crowd_store::Store;
use std::hint::black_box;
use std::path::Path;

const CLASSES: usize = 4;

fn config(dir: &Path) -> ServerConfig {
    ServerConfig::new()
        .with_budget(0.1, f64::INFINITY)
        .with_data_dir(dir)
        // Periodic snapshots off: these benches isolate append and replay.
        .with_snapshot_every(0)
}

fn epoch(dim: usize, step: u64) -> EpochAggregate {
    EpochAggregate::from_payload(&CheckinPayload {
        device_id: step % 8,
        checkout_iteration: step,
        nonce: 0,
        gradient: Vector::from_vec((0..dim).map(|i| (i as f64 + 1.0) * 1e-4).collect()).into(),
        num_samples: 20,
        error_count: 2,
        label_counts: vec![5; CLASSES],
    })
}

fn bench_wal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    // dim is the feature dimension; the logged gradient has dim × CLASSES
    // entries, matching what a real checkin of that model would carry.
    for &dim in &[50usize, 500, 5000] {
        let param_dim = dim * CLASSES;
        let dir = temp_dir("bench");
        let (mut store, server, _) =
            Store::open(MulticlassLogistic::new(dim, CLASSES).unwrap(), config(&dir)).unwrap();
        let charges = server.epoch_charges(&epoch(param_dim, 0));
        let mut step = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(dim), &param_dim, |b, &pd| {
            b.iter(|| {
                let e = epoch(pd, step);
                step += 1;
                store
                    .log_epoch(black_box(step), black_box(&e), &charges)
                    .unwrap();
            })
        });
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_replay");
    let dim = 100;
    let param_dim = dim * CLASSES;
    // Recovery time scales with the WAL tail length (epochs since the last
    // snapshot); measure a short and a long tail.
    for &epochs in &[64u64, 512] {
        let dir = temp_dir("bench");
        {
            let (mut store, mut server, _) =
                Store::open(MulticlassLogistic::new(dim, CLASSES).unwrap(), config(&dir)).unwrap();
            for step in 0..epochs {
                let e = epoch(param_dim, step);
                let charges = server.epoch_charges(&e);
                store.log_epoch(server.iteration(), &e, &charges).unwrap();
                server.apply_aggregate(&e).unwrap();
            }
            // Drop without checkpoint: recovery must replay the whole tail.
        }
        group.bench_with_input(BenchmarkId::from_parameter(epochs), &epochs, |b, &n| {
            b.iter(|| {
                let (_store, server, report) =
                    Store::open(MulticlassLogistic::new(dim, CLASSES).unwrap(), config(&dir))
                        .unwrap();
                assert_eq!(report.replayed_epochs, n);
                black_box(server.iteration())
            })
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    // One atomic full-snapshot write for a mid-sized model with a populated
    // ledger — the periodic cost a durable server pays every
    // `snapshot_every_epochs`.
    c.bench_function("snapshot_write_d400", |b| {
        let dim = 100;
        let param_dim = dim * CLASSES;
        let dir = temp_dir("bench");
        let (mut store, mut server, _) =
            Store::open(MulticlassLogistic::new(dim, CLASSES).unwrap(), config(&dir)).unwrap();
        for step in 0..32 {
            server.apply_aggregate(&epoch(param_dim, step)).unwrap();
        }
        let state = server.export_state();
        b.iter(|| store.snapshot(black_box(&state)).unwrap());
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    });
}

criterion_group!(benches, bench_wal_append, bench_recovery, bench_snapshot);
criterion_main!(benches);
