//! Reactor-vs-threaded server scaling: checkins/sec as the device count
//! grows from 100 to 10k.
//!
//! Each measured iteration starts a fresh server, runs a whole simulated
//! fleet through one checkout+checkin round per device with the
//! single-threaded `FleetDriver` (every admitted device holds a persistent
//! connection, so N admitted devices are N concurrent server connections),
//! and shuts the server down. `ns_per_iter / devices` is therefore the
//! end-to-end cost per device round — checkins/sec is its reciprocal.
//!
//! The threaded server is only measured at fleet sizes it can realistically
//! hold: one OS thread per concurrent connection means a 2k-device fleet
//! would pin 2k server threads, which is exactly the wall the reactor's
//! fixed thread pool removes. The reactor side runs up to 10k devices
//! through a 4k-connection admission window (the container's 20k
//! file-descriptor budget, two ends per localhost connection).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd_core::config::ServerConfig;
use crowd_learning::MulticlassLogistic;
use crowd_net::{FleetConfig, FleetDriver, NetServer, ReactorServer};
use crowd_proto::auth::TokenRegistry;
use std::hint::black_box;

const SECRET: u64 = 99;

/// Cap on simultaneously open fleet connections; 2×4k fds on localhost
/// stays well inside the 20k descriptor budget.
const MAX_OPEN: usize = 4000;

fn fleet(devices: usize) -> FleetConfig {
    FleetConfig {
        devices,
        rounds: 1,
        dim: 12,
        classes: 3,
        auth_secret: SECRET,
        max_open: devices.min(MAX_OPEN),
        ..FleetConfig::default()
    }
}

fn bench_reactor_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("reactor_fleet");
    for &devices in &[100usize, 1000, 2000, 10_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(devices),
            &devices,
            |bench, &devices| {
                bench.iter(|| {
                    let model = MulticlassLogistic::new(4, 3).unwrap();
                    let tokens = TokenRegistry::with_derived_tokens(devices as u64, SECRET);
                    let handle = ReactorServer::start(model, ServerConfig::new(), tokens).unwrap();
                    let report = FleetDriver::run(handle.addr(), fleet(devices)).unwrap();
                    assert_eq!(report.failed_devices, 0, "{report:?}");
                    handle.shutdown();
                    black_box(report.acked)
                })
            },
        );
    }
    group.finish();
}

fn bench_threaded_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded_fleet");
    for &devices in &[100usize, 1000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(devices),
            &devices,
            |bench, &devices| {
                bench.iter(|| {
                    let model = MulticlassLogistic::new(4, 3).unwrap();
                    let tokens = TokenRegistry::with_derived_tokens(devices as u64, SECRET);
                    let handle = NetServer::start(model, ServerConfig::new(), tokens).unwrap();
                    let report = FleetDriver::run(handle.addr(), fleet(devices)).unwrap();
                    assert_eq!(report.failed_devices, 0, "{report:?}");
                    handle.shutdown();
                    black_box(report.acked)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reactor_fleet, bench_threaded_fleet);
criterion_main!(benches);
