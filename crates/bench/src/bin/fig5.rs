//! Reproduces Fig. 5: MNIST-like digit recognition with privacy ε⁻¹ = 0.1 and
//! minibatch sizes b ∈ {1, 10, 20}, no delay.
//!
//! Expected shape: Crowd-ML with b = 20 has the lowest asymptotic error (below
//! Central batch on perturbed data); Central (SGD) on feature/label-perturbed data
//! stays near chance regardless of b.

use crowd_bench::{run_privacy_minibatch_sweep, RunScale, SimulatedWorkload};

fn main() {
    let scale = RunScale::from_args();
    match run_privacy_minibatch_sweep(SimulatedWorkload::MnistLike, scale, 5) {
        Ok(report) => print!("{}", report.render()),
        Err(e) => {
            eprintln!("fig5 failed: {e}");
            std::process::exit(1);
        }
    }
}
