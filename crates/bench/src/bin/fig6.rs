//! Reproduces Fig. 6: impact of communication delays on Crowd-ML (MNIST-like,
//! privacy ε⁻¹ = 0.1, b ∈ {1, 20}, maximum delays ∈ {1Δ, 10Δ, 100Δ, 1000Δ}).
//!
//! Expected shape: with b = 1 large delays slow convergence noticeably; with
//! b = 20 even a 1000Δ delay barely affects the final error, which stays below the
//! Central (batch) reference.

use crowd_bench::{run_delay_sweep, RunScale, SimulatedWorkload};

fn main() {
    let scale = RunScale::from_args();
    match run_delay_sweep(SimulatedWorkload::MnistLike, scale, 6) {
        Ok(report) => print!("{}", report.render()),
        Err(e) => {
            eprintln!("fig6 failed: {e}");
            std::process::exit(1);
        }
    }
}
