//! Reproduces Fig. 8 (Appendix D): CIFAR-feature object recognition with privacy
//! ε⁻¹ = 0.1 and minibatch sizes b ∈ {1, 10, 20} — the Fig. 5 protocol on the
//! harder workload.

use crowd_bench::{run_privacy_minibatch_sweep, RunScale, SimulatedWorkload};

fn main() {
    let scale = RunScale::from_args();
    match run_privacy_minibatch_sweep(SimulatedWorkload::CifarFeatureLike, scale, 8) {
        Ok(report) => print!("{}", report.render()),
        Err(e) => {
            eprintln!("fig8 failed: {e}");
            std::process::exit(1);
        }
    }
}
