//! Reproduces Fig. 9 (Appendix D): impact of delays on Crowd-ML for the
//! CIFAR-feature workload (privacy ε⁻¹ = 0.1, b ∈ {1, 20},
//! delays ∈ {1Δ, 10Δ, 100Δ, 1000Δ}) — the Fig. 6 protocol on the harder workload.

use crowd_bench::{run_delay_sweep, RunScale, SimulatedWorkload};

fn main() {
    let scale = RunScale::from_args();
    match run_delay_sweep(SimulatedWorkload::CifarFeatureLike, scale, 9) {
        Ok(report) => print!("{}", report.render()),
        Err(e) => {
            eprintln!("fig9 failed: {e}");
            std::process::exit(1);
        }
    }
}
