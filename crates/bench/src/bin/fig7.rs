//! Reproduces Fig. 7 (Appendix D): CIFAR-feature object recognition, no privacy,
//! no delay — the Fig. 4 protocol on the harder 100-dimensional workload, so the
//! same ordering holds but every error level is higher (≈0.3 for the winners).

use crowd_bench::{run_no_privacy_comparison, RunScale, SimulatedWorkload};

fn main() {
    let scale = RunScale::from_args();
    match run_no_privacy_comparison(SimulatedWorkload::CifarFeatureLike, scale, 7) {
        Ok(report) => print!("{}", report.render()),
        Err(e) => {
            eprintln!("fig7 failed: {e}");
            std::process::exit(1);
        }
    }
}
