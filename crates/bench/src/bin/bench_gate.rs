//! Bench regression gate: compares a current quick-mode bench run against a
//! checked-in baseline and fails on large regressions.
//!
//! Usage: `bench_gate <BENCH_baseline.json> <current.json> [more-current.json…]`
//!
//! Both inputs are JSON-lines files as written by the vendored criterion's
//! `BENCH_JSON` hook — one `{"name": "...", "ns_per_iter": N}` object per
//! line. The gate always prints the full delta table (baseline, current,
//! ratio, verdict per tracked bench) and exits non-zero iff any bench present
//! in BOTH files regressed past the threshold.
//!
//! Threshold: `BENCH_GATE_RATIO` (default 2.5×). Deliberately tolerant —
//! quick-mode windows on shared CI runners are noisy, and the gate exists to
//! catch order-of-magnitude mistakes (an accidental clone in the codec hot
//! loop), not 10% drifts; the uploaded `BENCH_*.json` artifacts carry the
//! fine-grained trajectory. Benches only in the baseline (renamed/removed)
//! are reported but do not fail the gate; benches only in the current run are
//! reported as new. Refresh the baseline by re-running the bench-smoke
//! commands from the workflow and checking in the fresh file (see README,
//! "Chaos & CI").

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Default regression threshold: current/baseline above this fails the gate.
const DEFAULT_RATIO: f64 = 2.5;

/// Parses one `{"name":"…","ns_per_iter":N}` JSON line. Hand-rolled because
/// the workspace is offline (no serde); the format is machine-written, so the
/// parser only needs to be exact, not general.
fn parse_line(line: &str) -> Option<(String, f64)> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let name_key = line.find("\"name\"")?;
    let after = &line[name_key + "\"name\"".len()..];
    let colon = after.find(':')?;
    let rest = after[colon + 1..].trim_start();
    let rest = rest.strip_prefix('"')?;
    // The writer escapes only `"` and `\`; unescape them.
    let mut name = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some(escaped) => name.push(escaped),
                None => return None,
            },
            '"' => break,
            c => name.push(c),
        }
    }
    let ns_key = line.find("\"ns_per_iter\"")?;
    let after = &line[ns_key + "\"ns_per_iter\"".len()..];
    let colon = after.find(':')?;
    let number: String = after[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    let ns: f64 = number.parse().ok()?;
    if !(ns.is_finite() && ns > 0.0) {
        return None;
    }
    Some((name, ns))
}

/// Loads a JSON-lines bench file. A bench appearing multiple times (appended
/// runs) keeps its best (minimum) time — the least noisy estimate.
fn load(contents: &str) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    for line in contents.lines() {
        if let Some((name, ns)) = parse_line(line) {
            let slot = map.entry(name).or_insert(ns);
            if ns < *slot {
                *slot = ns;
            }
        }
    }
    map
}

fn human(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The comparison verdict: regressed bench names, in table order.
fn gate(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    ratio_limit: f64,
) -> Vec<String> {
    let mut regressed = Vec::new();
    println!(
        "{:<56} {:>12} {:>12} {:>8}  verdict",
        "benchmark", "baseline", "current", "ratio"
    );
    for (name, &base_ns) in baseline {
        match current.get(name) {
            Some(&cur_ns) => {
                let ratio = cur_ns / base_ns;
                let verdict = if ratio > ratio_limit {
                    regressed.push(name.clone());
                    "REGRESSED"
                } else if ratio < 1.0 / ratio_limit {
                    "improved"
                } else {
                    "ok"
                };
                println!(
                    "{:<56} {:>12} {:>12} {:>7.2}x  {}",
                    name,
                    human(base_ns),
                    human(cur_ns),
                    ratio,
                    verdict
                );
            }
            None => {
                println!(
                    "{:<56} {:>12} {:>12} {:>8}  missing from current (not gated)",
                    name,
                    human(base_ns),
                    "-",
                    "-"
                );
            }
        }
    }
    for (name, &cur_ns) in current {
        if !baseline.contains_key(name) {
            println!(
                "{:<56} {:>12} {:>12} {:>8}  new (add to baseline)",
                name,
                "-",
                human(cur_ns),
                "-"
            );
        }
    }
    regressed
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: bench_gate <baseline.json> <current.json> [more-current.json…]");
        return ExitCode::from(2);
    }
    let ratio_limit: f64 = std::env::var("BENCH_GATE_RATIO")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|r: &f64| r.is_finite() && *r > 1.0)
        .unwrap_or(DEFAULT_RATIO);
    let baseline = match std::fs::read_to_string(&args[0]) {
        Ok(contents) => load(&contents),
        Err(e) => {
            eprintln!("bench_gate: cannot read baseline {}: {e}", args[0]);
            return ExitCode::from(2);
        }
    };
    let mut current = BTreeMap::new();
    for path in &args[1..] {
        match std::fs::read_to_string(path) {
            Ok(contents) => {
                for (name, ns) in load(&contents) {
                    let slot = current.entry(name).or_insert(ns);
                    if ns < *slot {
                        *slot = ns;
                    }
                }
            }
            Err(e) => {
                eprintln!("bench_gate: cannot read current {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if baseline.is_empty() {
        eprintln!("bench_gate: baseline {} holds no benches", args[0]);
        return ExitCode::from(2);
    }
    println!(
        "bench_gate: {} baseline / {} current benches, fail ratio > {ratio_limit:.2}x",
        baseline.len(),
        current.len()
    );
    let regressed = gate(&baseline, &current, ratio_limit);
    if regressed.is_empty() {
        println!("bench_gate: OK — no bench regressed past {ratio_limit:.2}x");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_gate: FAIL — {} bench(es) regressed past {ratio_limit:.2}x: {}",
            regressed.len(),
            regressed.join(", ")
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_writer_format() {
        let (name, ns) =
            parse_line(r#"{"name":"codec/encode/5000","ns_per_iter":1234.5}"#).unwrap();
        assert_eq!(name, "codec/encode/5000");
        assert!((ns - 1234.5).abs() < 1e-9);
        // Escapes round-trip.
        let (name, _) = parse_line(r#"{"name":"with \"quote\" and \\","ns_per_iter":1}"#).unwrap();
        assert_eq!(name, "with \"quote\" and \\");
        // Garbage and non-positive timings are skipped, not crashed on.
        assert!(parse_line("not json").is_none());
        assert!(parse_line(r#"{"name":"x","ns_per_iter":-3}"#).is_none());
        assert!(parse_line(r#"{"name":"x","ns_per_iter":"nan"}"#).is_none());
        assert!(parse_line("").is_none());
    }

    #[test]
    fn duplicate_benches_keep_the_best_time() {
        let map = load(concat!(
            "{\"name\":\"a\",\"ns_per_iter\":300.0}\n",
            "{\"name\":\"a\",\"ns_per_iter\":100.0}\n",
            "{\"name\":\"a\",\"ns_per_iter\":200.0}\n",
        ));
        assert_eq!(map.get("a"), Some(&100.0));
    }

    #[test]
    fn gate_flags_only_regressions_past_the_ratio() {
        let baseline = load("{\"name\":\"fast\",\"ns_per_iter\":100.0}\n{\"name\":\"slow\",\"ns_per_iter\":100.0}\n{\"name\":\"gone\",\"ns_per_iter\":5.0}\n");
        let current = load("{\"name\":\"fast\",\"ns_per_iter\":240.0}\n{\"name\":\"slow\",\"ns_per_iter\":260.0}\n{\"name\":\"new\",\"ns_per_iter\":7.0}\n");
        // 2.4x passes at a 2.5x limit, 2.6x fails; missing/new entries never
        // fail the gate.
        let regressed = gate(&baseline, &current, 2.5);
        assert_eq!(regressed, vec!["slow".to_string()]);
        // A deliberately broken (too-fast) baseline makes everything regress.
        let broken = load(
            "{\"name\":\"fast\",\"ns_per_iter\":1.0}\n{\"name\":\"slow\",\"ns_per_iter\":1.0}\n",
        );
        let regressed = gate(&broken, &current, 2.5);
        assert_eq!(regressed.len(), 2);
    }
}
