//! Reproduces Fig. 3: activity recognition on a fleet of 7 devices.
//!
//! The paper runs 3-class logistic regression (λ = 0, b = 1, ε⁻¹ = 0) on
//! accelerometer-derived FFT features from 7 smartphones and plots the
//! time-averaged online misclassification error over the first 300 samples for
//! learning-rate constants c ∈ {1e-6, 1e-4, 1e-2, 1}. The expected shape: all
//! four curves converge quickly (within ~50 samples) and end up nearly identical.

use crowd_bench::RunScale;
use crowd_core::experiment::{CrowdMlExperiment, ExperimentConfig};
use crowd_core::report::series_to_csv;

fn main() {
    let scale = RunScale::from_args();
    // 7 devices as in the paper; ~300 total samples regardless of scale (the real
    // experiment is already small), more when --full is requested.
    let devices = 7usize;
    let samples_per_device = if scale.data_scale >= 1.0 { 100 } else { 43 };
    let total = devices * samples_per_device;

    println!("# Fig. 3: activity recognition, {devices} devices, {total} samples, b=1, eps^-1=0");
    println!("# time-averaged online error for learning-rate constants c");
    let mut finals = Vec::new();
    for &c in &[1e-6, 1e-4, 1e-2, 1.0] {
        let config = ExperimentConfig::builder()
            .devices(devices)
            .minibatch(1)
            .passes(1.0)
            .rate_constant(c)
            .eval_points(5)
            .seed(42)
            .build();
        let experiment = CrowdMlExperiment::activity(samples_per_device, 200, config);
        match experiment.run() {
            Ok(outcome) => {
                println!("\n## series: c={c:e}");
                let truncated: Vec<f64> = outcome.online_error.iter().copied().take(300).collect();
                print!("{}", series_to_csv("time_averaged_error", &truncated));
                finals.push((c, *truncated.last().unwrap_or(&1.0)));
            }
            Err(e) => {
                eprintln!("fig3 run failed for c={c}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("\n## summary");
    println!("c,final_time_averaged_error");
    for (c, err) in finals {
        println!("{c:e},{err:.4}");
    }
}
