//! Accuracy-vs-bytes ablation for the wire-v5 quantized gradient transport:
//! the same DP-noised SGD stream (ε⁻¹ = 0.1, b = 20) shipped as 8-byte doubles
//! vs stochastically rounded i16 levels, with the uplink bytes per checkin for
//! each transport reported alongside the error curves.

use crowd_bench::{run_quantization_ablation, RunScale, SimulatedWorkload};

fn main() {
    let scale = RunScale::from_args();
    match run_quantization_ablation(SimulatedWorkload::MnistLike, scale, 12) {
        Ok(report) => print!("{}", report.render()),
        Err(e) => {
            eprintln!("quant_ablation failed: {e}");
            std::process::exit(1);
        }
    }
}
