//! Reproduces Fig. 4: MNIST-like digit recognition, no privacy, no delay.
//!
//! Series: Central (batch) as a horizontal reference, Crowd-ML (SGD, b = 1), and
//! Decentralized (SGD). Expected shape: Crowd-ML converges to (roughly) the batch
//! error; the decentralized error stays far higher because each device only sees
//! `~N/M` samples.

use crowd_bench::{run_no_privacy_comparison, RunScale, SimulatedWorkload};

fn main() {
    let scale = RunScale::from_args();
    match run_no_privacy_comparison(SimulatedWorkload::MnistLike, scale, 4) {
        Ok(report) => print!("{}", report.render()),
        Err(e) => {
            eprintln!("fig4 failed: {e}");
            std::process::exit(1);
        }
    }
}
