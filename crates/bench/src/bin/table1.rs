//! Verifies Table I: the multiclass-logistic-regression prediction, risk, and
//! gradient formulas, plus the Appendix A sensitivity bound the privacy
//! calibration depends on.
//!
//! The binary checks, on random inputs:
//!
//! 1. the closed-form gradient of Table I matches central finite differences of
//!    the risk;
//! 2. the per-sample gradient matrix has L1 norm ≤ 2(1 − P_y) ≤ 2 when
//!    `‖x‖₁ ≤ 1`;
//! 3. the empirical sensitivity of the *averaged* gradient over minibatches
//!    differing in one sample never exceeds 4/b (Theorem 1's bound).

use crowd_data::Sample;
use crowd_learning::model::{finite_difference_gradient, minibatch_statistics, Model};
use crowd_learning::MulticlassLogistic;
use crowd_linalg::ops::normalize_l1;
use crowd_linalg::random::normal_vector;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let dim = 20;
    let classes = 10;
    let model = MulticlassLogistic::new(dim, classes).expect("valid model");

    println!("# Table I verification: multiclass logistic regression");
    println!("check,trials,max_observed,bound,pass");

    // 1. Gradient vs finite differences.
    let mut max_grad_diff: f64 = 0.0;
    let trials = 25;
    for _ in 0..trials {
        let w = normal_vector(&mut rng, model.param_dim());
        let mut x = normal_vector(&mut rng, dim);
        normalize_l1(&mut x);
        let y = rng.gen_range(0..classes);
        let analytic = model.gradient(&w, &x, y).expect("gradient");
        let numeric =
            finite_difference_gradient(&model, &w, &x, y, 1e-5).expect("finite differences");
        max_grad_diff = max_grad_diff.max(analytic.distance(&numeric).expect("same dim"));
    }
    println!(
        "gradient_matches_finite_difference,{trials},{max_grad_diff:.3e},1e-4,{}",
        max_grad_diff < 1e-4
    );

    // 2. Per-sample gradient L1 bound.
    let mut max_l1: f64 = 0.0;
    let trials = 500;
    for _ in 0..trials {
        let w = normal_vector(&mut rng, model.param_dim());
        let mut x = normal_vector(&mut rng, dim);
        normalize_l1(&mut x);
        let y = rng.gen_range(0..classes);
        max_l1 = max_l1.max(model.gradient(&w, &x, y).expect("gradient").norm_l1());
    }
    println!(
        "per_sample_gradient_l1,{trials},{max_l1:.4},2.0,{}",
        max_l1 <= 2.0 + 1e-9
    );

    // 3. Averaged-gradient sensitivity ≤ 4/b over neighbouring minibatches.
    for &b in &[1usize, 5, 20] {
        let bound = 4.0 / b as f64;
        let mut max_sensitivity: f64 = 0.0;
        let trials = 200;
        for _ in 0..trials {
            let w = normal_vector(&mut rng, model.param_dim());
            let mut batch: Vec<Sample> = (0..b)
                .map(|_| {
                    let mut x = normal_vector(&mut rng, dim);
                    normalize_l1(&mut x);
                    Sample::new(x, rng.gen_range(0..classes))
                })
                .collect();
            let g1 = minibatch_statistics(&model, &w, &batch, 0.0, &[])
                .expect("stats")
                .gradient;
            // Replace the first sample to get a neighbouring dataset.
            let mut x = normal_vector(&mut rng, dim);
            normalize_l1(&mut x);
            batch[0] = Sample::new(x, rng.gen_range(0..classes));
            let g2 = minibatch_statistics(&model, &w, &batch, 0.0, &[])
                .expect("stats")
                .gradient;
            max_sensitivity = max_sensitivity.max((&g1 - &g2).norm_l1());
        }
        println!(
            "averaged_gradient_sensitivity_b{b},{trials},{max_sensitivity:.4},{bound:.4},{}",
            max_sensitivity <= bound + 1e-9
        );
    }
}
