//! Shared harness code for the figure-regeneration binaries and Criterion benches.
//!
//! Every figure of the paper's evaluation (Figs. 3–9) has a binary in `src/bin/`
//! that prints the same series the paper plots. By default the binaries run a
//! scaled-down configuration (fewer devices, a fraction of the dataset, fewer
//! passes) so the whole suite finishes in minutes; passing `--full` switches to
//! the paper-scale parameters (M = 1000, full dataset, 5 passes).

#![forbid(unsafe_code)]

use crowd_core::config::PrivacyConfig;
use crowd_core::experiment::{CrowdMlExperiment, ExperimentConfig};
use crowd_core::privacy::Sanitizer;
use crowd_core::report::FigureReport;
use crowd_core::{CoreError, Result};
use crowd_data::Sample;
use crowd_learning::metrics::{error_rate, ErrorCurve};
use crowd_learning::{minibatch_statistics, LearningRate, Model, MulticlassLogistic};
use crowd_linalg::{QuantizedVector, Vector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which of the two simulated workloads a figure uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimulatedWorkload {
    /// The MNIST surrogate of §V-C (Figs. 4–6).
    MnistLike,
    /// The CIFAR-feature surrogate of Appendix D (Figs. 7–9).
    CifarFeatureLike,
}

impl SimulatedWorkload {
    /// Human-readable name used in report titles.
    pub fn name(self) -> &'static str {
        match self {
            SimulatedWorkload::MnistLike => "MNIST-like",
            SimulatedWorkload::CifarFeatureLike => "CIFAR-feature-like",
        }
    }
}

/// Scale settings shared by the figure binaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunScale {
    /// Fraction of the paper's dataset size to generate.
    pub data_scale: f64,
    /// Number of devices `M`.
    pub devices: usize,
    /// Passes over the training data.
    pub passes: f64,
    /// Curve evaluation points.
    pub eval_points: usize,
}

impl RunScale {
    /// The fast default used when no flag is passed: 10% of the data, 100 devices,
    /// 3 passes. The privacy figures need enough server updates for the Laplace
    /// noise to average out, so the quick scale cannot be made arbitrarily small
    /// without flattening the b-sweep of Figs. 5/8.
    pub fn quick() -> Self {
        RunScale {
            data_scale: 0.2,
            devices: 100,
            passes: 5.0,
            eval_points: 25,
        }
    }

    /// The paper-scale configuration selected by `--full`: full dataset,
    /// M = 1000 devices, 5 passes.
    pub fn full() -> Self {
        RunScale {
            data_scale: 1.0,
            devices: 1000,
            passes: 5.0,
            eval_points: 40,
        }
    }

    /// Parses the scale from command-line arguments (`--full` selects
    /// [`RunScale::full`]).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            RunScale::full()
        } else {
            RunScale::quick()
        }
    }
}

/// Builds the experiment for a simulated workload at the given scale and
/// parameters; `inverse_epsilon` follows the paper's ε⁻¹ convention and
/// `delay_delta` the Δ delay unit.
pub fn simulated_experiment(
    workload: SimulatedWorkload,
    scale: RunScale,
    minibatch: usize,
    inverse_epsilon: f64,
    delay_delta: f64,
    rate_constant: f64,
    seed: u64,
) -> Result<CrowdMlExperiment> {
    let privacy = PrivacyConfig::from_inverse_epsilon(inverse_epsilon)?;
    let config = ExperimentConfig::builder()
        .devices(scale.devices)
        .minibatch(minibatch)
        .passes(scale.passes)
        .privacy(privacy)
        .delay_delta(delay_delta)
        .rate_constant(rate_constant)
        .eval_points(scale.eval_points)
        .seed(seed)
        .build();
    Ok(match workload {
        SimulatedWorkload::MnistLike => CrowdMlExperiment::mnist_like(scale.data_scale, config),
        SimulatedWorkload::CifarFeatureLike => {
            CrowdMlExperiment::cifar_feature_like(scale.data_scale, config)
        }
    })
}

/// Runs the Fig. 4 / Fig. 7 protocol: Central (batch) vs Crowd-ML (SGD) vs
/// Decentralized (SGD), no privacy, no delay.
pub fn run_no_privacy_comparison(
    workload: SimulatedWorkload,
    scale: RunScale,
    seed: u64,
) -> Result<FigureReport> {
    let figure = match workload {
        SimulatedWorkload::MnistLike => "Fig. 4",
        SimulatedWorkload::CifarFeatureLike => "Fig. 7",
    };
    let mut report = FigureReport::new(format!(
        "{figure}: {} — Central (batch) vs Crowd-ML vs Decentralized, no privacy, no delay",
        workload.name()
    ));
    let experiment = simulated_experiment(workload, scale, 1, 0.0, 0.0, 1.0, seed)?;
    let crowd = experiment.run()?;
    report.add_curve("Crowd-ML (SGD)", crowd.curve);
    let decentral = experiment.run_decentralized(20)?;
    report.add_curve("Decentral (SGD)", decentral);
    let batch_error = experiment.run_central_batch()?;
    report.add_constant("Central (batch)", batch_error);
    Ok(report)
}

/// Runs the Fig. 5 / Fig. 8 protocol: privacy ε⁻¹ = 0.1, minibatch sizes
/// b ∈ {1, 10, 20}, Central (SGD) on perturbed inputs vs Crowd-ML vs Central
/// (batch).
pub fn run_privacy_minibatch_sweep(
    workload: SimulatedWorkload,
    scale: RunScale,
    seed: u64,
) -> Result<FigureReport> {
    let figure = match workload {
        SimulatedWorkload::MnistLike => "Fig. 5",
        SimulatedWorkload::CifarFeatureLike => "Fig. 8",
    };
    let mut report = FigureReport::new(format!(
        "{figure}: {} — privacy eps^-1 = 0.1, minibatch sweep, no delay",
        workload.name()
    ));
    for &b in &[1usize, 10, 20] {
        let experiment = simulated_experiment(workload, scale, b, 0.1, 0.0, 1.0, seed)?;
        let crowd = experiment.run()?;
        report.add_curve(format!("Crowd-ML (SGD,b={b})"), crowd.curve);
        let central = experiment.run_central_sgd()?;
        report.add_curve(format!("Central (SGD,b={b})"), central);
    }
    // The batch baseline trains on the perturbed pooled data once.
    let experiment = simulated_experiment(workload, scale, 1, 0.1, 0.0, 1.0, seed)?;
    report.add_constant("Central (batch)", experiment.run_central_batch()?);
    Ok(report)
}

/// Runs the Fig. 6 / Fig. 9 protocol: privacy ε⁻¹ = 0.1, minibatch b ∈ {1, 20},
/// maximum delays ∈ {1Δ, 10Δ, 100Δ, 1000Δ}.
pub fn run_delay_sweep(
    workload: SimulatedWorkload,
    scale: RunScale,
    seed: u64,
) -> Result<FigureReport> {
    let figure = match workload {
        SimulatedWorkload::MnistLike => "Fig. 6",
        SimulatedWorkload::CifarFeatureLike => "Fig. 9",
    };
    let mut report = FigureReport::new(format!(
        "{figure}: {} — privacy eps^-1 = 0.1, delay sweep",
        workload.name()
    ));
    for &b in &[1usize, 20] {
        for &delta in &[1.0, 10.0, 100.0, 1000.0] {
            let experiment = simulated_experiment(workload, scale, b, 0.1, delta, 1.0, seed)?;
            let crowd = experiment.run()?;
            report.add_curve(format!("Crowd-ML (b={b},{delta}D)"), crowd.curve);
        }
    }
    let experiment = simulated_experiment(workload, scale, 1, 0.1, 0.0, 1.0, seed)?;
    report.add_constant("Central (batch)", experiment.run_central_batch()?);
    Ok(report)
}

/// Dense uplink wire size for a `dim`-coordinate gradient: payload tag,
/// length prefix, and 8 bytes per coordinate (mirrors
/// `GradientPayload::Dense::encoded_len`).
fn dense_wire_bytes(dim: usize) -> u64 {
    (1 + 4 + 8 * dim) as u64
}

/// One arm of the quantized-transport ablation: DP-noised minibatch SGD on
/// the pooled training set where each sanitized gradient is shipped either
/// losslessly (8-byte doubles) or as stochastically rounded i16 levels
/// (`quantize = true`), then applied server-side. Returns the error curve and
/// the total uplink bytes the arm would have put on the wire.
#[allow(clippy::too_many_arguments)]
fn transport_arm(
    quantize: bool,
    model: &MulticlassLogistic,
    train: &[Sample],
    test: &crowd_data::Dataset,
    config: &ExperimentConfig,
    total_batches: usize,
    eval_every: usize,
    seed: u64,
) -> Result<(ErrorCurve, u64)> {
    // One stream drives batch sampling and Laplace noise in both arms; the
    // quantized arm draws its rounding bits from a second stream so the two
    // arms see the same data order and the same noise realizations.
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(5));
    let mut quant_rng = StdRng::seed_from_u64(seed.wrapping_add(6));
    let mut params = Vector::zeros(model.param_dim());
    let mut schedule = LearningRate::InvSqrt {
        c: config.rate_constant,
    };
    let mut curve = ErrorCurve::new();
    let mut wire_bytes = 0u64;
    for t in 1..=total_batches {
        let batch: Vec<Sample> = (0..config.minibatch)
            .map(|_| train[rng.gen_range(0..train.len())].clone())
            .collect();
        let stats = minibatch_statistics(model, &params, &batch, config.lambda, &[])?;
        let sanitizer = Sanitizer::new(&config.privacy, stats.num_samples)?;
        let sanitized = sanitizer.sanitize(
            &mut rng,
            &stats.gradient,
            stats.num_errors,
            &stats.label_counts,
        );
        let applied = if quantize {
            let q =
                QuantizedVector::quantize_stochastic(sanitized.gradient.as_slice(), &mut quant_rng)
                    .map_err(|e| CoreError::Protocol(e.to_string()))?;
            wire_bytes += q.wire_bytes() as u64;
            q.to_dense()
        } else {
            wire_bytes += dense_wire_bytes(sanitized.gradient.len());
            sanitized.gradient
        };
        let eta = schedule.rate(t, &applied);
        crowd_linalg::kernels::axpy(-eta, applied.as_slice(), params.as_mut_slice());
        if t % eval_every == 0 || t == total_batches {
            curve.push(t * config.minibatch, error_rate(model, &params, test)?);
        }
    }
    Ok((curve, wire_bytes))
}

/// Runs the quantized-transport ablation: the same DP-noised SGD stream
/// (ε⁻¹ = 0.1, b = 20 — the default private configuration, where the Laplace
/// noise floor dominates the i16 quantization step) shipped dense vs
/// quantized, reporting accuracy curves plus uplink bytes per checkin for
/// both transports.
pub fn run_quantization_ablation(
    workload: SimulatedWorkload,
    scale: RunScale,
    seed: u64,
) -> Result<FigureReport> {
    let experiment = simulated_experiment(workload, scale, 20, 0.1, 0.0, 1.0, seed)?;
    let data = experiment.materialize()?;
    let model = MulticlassLogistic::new(data.dim, data.num_classes)?;
    let config = experiment.config();
    let total_samples = ((data.pooled_train.len() as f64) * scale.passes).ceil() as usize;
    let total_batches = (total_samples / config.minibatch).max(1);
    let eval_every = (total_batches / scale.eval_points).max(1);

    let mut report = FigureReport::new(format!(
        "Quantized transport ablation: {} — eps^-1 = 0.1, b = 20, dense vs i16 uplink",
        workload.name()
    ));
    for &(label, quantize) in &[
        ("Dense (8 B/coord)", false),
        ("Quantized (2 B/coord)", true),
    ] {
        let (curve, wire_bytes) = transport_arm(
            quantize,
            &model,
            data.pooled_train.samples(),
            &data.test,
            config,
            total_batches,
            eval_every,
            seed,
        )?;
        report.add_curve(label, curve);
        report.add_constant(
            format!("{label} uplink bytes/checkin"),
            (wire_bytes / total_batches as u64) as f64,
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> RunScale {
        RunScale {
            data_scale: 0.005,
            devices: 20,
            passes: 1.0,
            eval_points: 4,
        }
    }

    #[test]
    fn scales() {
        assert!(RunScale::quick().data_scale < RunScale::full().data_scale);
        assert_eq!(RunScale::full().devices, 1000);
        // from_args without --full in the test harness returns quick.
        assert_eq!(RunScale::from_args(), RunScale::quick());
        assert_eq!(SimulatedWorkload::MnistLike.name(), "MNIST-like");
    }

    #[test]
    fn no_privacy_comparison_produces_expected_series() {
        let report =
            run_no_privacy_comparison(SimulatedWorkload::MnistLike, tiny_scale(), 1).unwrap();
        assert_eq!(report.curves.len(), 2);
        assert_eq!(report.constants.len(), 1);
        let rendered = report.render();
        assert!(rendered.contains("Crowd-ML (SGD)"));
        assert!(rendered.contains("Central (batch)"));
    }

    #[test]
    fn privacy_sweep_produces_six_series() {
        let report =
            run_privacy_minibatch_sweep(SimulatedWorkload::MnistLike, tiny_scale(), 2).unwrap();
        assert_eq!(report.curves.len(), 6);
        assert!(report.summary_table().contains("Crowd-ML (SGD,b=20)"));
    }

    #[test]
    fn quantization_ablation_reports_both_transports_and_byte_savings() {
        let report =
            run_quantization_ablation(SimulatedWorkload::MnistLike, tiny_scale(), 4).unwrap();
        assert_eq!(report.curves.len(), 2);
        assert_eq!(report.constants.len(), 2);
        let bytes_of = |needle: &str| {
            report
                .constants
                .iter()
                .find(|(label, _)| label.contains(needle))
                .map(|&(_, v)| v)
                .unwrap()
        };
        let dense = bytes_of("Dense");
        let quantized = bytes_of("Quantized");
        assert!(
            quantized * 2.0 < dense,
            "quantized uplink {quantized} B/checkin not 2x smaller than dense {dense}"
        );
    }

    #[test]
    fn delay_sweep_produces_eight_series() {
        let report = run_delay_sweep(SimulatedWorkload::CifarFeatureLike, tiny_scale(), 3).unwrap();
        assert_eq!(report.curves.len(), 8);
        assert!(report.summary_table().contains("Crowd-ML (b=20,1000D)"));
    }
}
