//! Fixture: one `unsafe` block outside the audited SIMD kernel module.
//! Never compiled — only lexed by the audit tests.

/// The violation: raw-pointer access outside crates/linalg/src/kernels/simd.rs.
pub fn bad_read(p: *const u8) -> u8 {
    unsafe { *p }
}

/// Escape 1: an allow annotation with a reason.
pub fn allowed_read(p: *const u8) -> u8 {
    // audit:allow(unsafe-confinement, vetted FFI shim reviewed in PR 9)
    unsafe { *p }
}

/// Escape 2: denying the lint is the posture we want, not a finding.
pub mod posture {
    #![deny(unsafe_code)]
}

#[cfg(test)]
mod tests {
    /// Escape 3: test code is exempt.
    pub fn read_in_tests(p: *const u8) -> u8 {
        unsafe { *p }
    }
}
