//! Fixture: one panic-freedom violation in a request-path module.
//! Never compiled — only lexed by the audit tests.

/// The violation: a decode path must return an error, not unwrap.
pub fn bad_decode(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[..4].try_into().unwrap())
}

/// Escape 1: an allow annotation with a reason.
pub fn allowed_invariant(x: Option<u32>) -> u32 {
    // audit:allow(panic-freedom, caller holds is_some by construction)
    x.unwrap()
}

/// Escape 2: non-panicking combinators are fine.
pub fn combinator(x: Option<u32>) -> u32 {
    x.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Escape 3: test code is exempt.
    fn unwraps_in_tests(x: Option<u32>) -> u32 {
        x.unwrap()
    }
}
