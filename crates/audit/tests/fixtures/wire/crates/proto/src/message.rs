//! Fixture: a message set that gained `Extra` without a version bump —
//! `wire.lock` in this fixture root records only `Ping`/`Pong` at version 1.
//! Never compiled — only lexed by the audit tests.

pub enum Message {
    Ping(u8),
    Pong(u8),
    Extra(u8),
}

impl Message {
    pub fn tag(&self) -> u8 {
        match self {
            Message::Ping(_) => 1,
            Message::Pong(_) => 2,
            Message::Extra(_) => 3,
        }
    }
}
