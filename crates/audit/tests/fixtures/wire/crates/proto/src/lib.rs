//! Fixture: the protocol version that forgot to move when the message set
//! grew. Never compiled — only lexed by the audit tests.

pub const PROTOCOL_VERSION: u16 = 1;

pub mod message;
