//! Fixture: one lock-order inversion between two registered locks.
//! Never compiled — only lexed by the audit tests.

use std::sync::Mutex;

pub struct Runtime {
    // audit:lock(fixture.core, 10)
    core: Mutex<u64>,
    // audit:lock(fixture.store, 30)
    store: Mutex<u64>,
}

impl Runtime {
    /// The documented order: core before store.
    pub fn good(&self) {
        let c = self.core.lock();
        let s = self.store.lock();
        drop(s);
        drop(c);
    }

    /// The violation: store acquired first, then core — an inversion.
    pub fn bad(&self) {
        let s = self.store.lock();
        let c = self.core.lock();
        drop(c);
        drop(s);
    }

    /// Escape 1: an allow annotation with a reason.
    pub fn allowed(&self) {
        let s = self.store.lock();
        // audit:allow(lock-order, startup only, single-threaded at this point)
        let c = self.core.lock();
        drop(c);
        drop(s);
    }

    /// Escape 2: sequential (non-overlapping) acquisitions are fine.
    pub fn sequential(&self) {
        {
            let s = self.store.lock();
            drop(s);
        }
        let c = self.core.lock();
        drop(c);
    }
}
