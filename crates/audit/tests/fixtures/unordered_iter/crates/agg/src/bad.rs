//! Fixture: one unordered-iteration violation, plus every escape hatch.
//! Never compiled — only lexed by the audit tests.

use std::collections::HashMap;

pub struct Ledger {
    entries: HashMap<u64, f64>,
}

impl Ledger {
    /// The violation: hash-order values feed the returned sum's rounding.
    pub fn bad_total(&self) -> f64 {
        self.entries.values().sum()
    }

    /// Escape 1: an allow annotation with a reason.
    pub fn allowed_total(&self) -> f64 {
        // audit:allow(unordered-iter, commutative sum is order-insensitive here)
        self.entries.values().map(|v| v.round()).sum()
    }

    /// Escape 2: the iteration feeds a sort in the same statement.
    pub fn sorted_inline(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = { let mut v: Vec<u64> = self.entries.keys().copied().collect(); v.sort_unstable(); v };
        ids
    }

    /// Escape 3: collect-then-sort across two statements.
    pub fn sorted_after(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.entries.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Escape 4: test code is exempt.
    fn order_free_in_tests(l: &Ledger) -> usize {
        l.entries.iter().count()
    }
}
