//! Fixture: one wall-clock violation in a deterministic crate.
//! Never compiled — only lexed by the audit tests.

use std::time::Instant;

/// The violation: replay timing must come from the logical clock.
pub fn bad_timestamp() -> Instant {
    Instant::now()
}

/// Escape 1: an allow annotation with a reason.
pub fn allowed_timestamp() -> Instant {
    // audit:allow(wallclock, display-only timing, never reaches replayed state)
    Instant::now()
}

/// Escape 2: carrying an `Instant` without sampling the clock is fine.
pub fn deadline_passthrough(deadline: Instant) -> Instant {
    deadline
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Escape 3: test code is exempt.
    fn timed_in_tests() -> Instant {
        Instant::now()
    }
}
