//! Each fixture tree contains exactly one deliberate violation of one rule,
//! plus that rule's escape hatches (allow annotation, structural escapes,
//! test code). These tests pin down both halves: the rule fires exactly at
//! the bad site, and nowhere else.

use crowd_audit::report::Finding;
use crowd_audit::rules;
use crowd_audit::source::scan_workspace;
use std::path::PathBuf;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn audit_fixture(name: &str) -> Vec<Finding> {
    let root = fixture_root(name);
    let files = scan_workspace(&root).expect("fixture tree scans");
    rules::run_all(&files, &root)
}

#[test]
fn unordered_iter_fires_exactly_once() {
    let findings = audit_fixture("unordered_iter");
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    let f = &findings[0];
    assert_eq!(f.rule, "unordered-iter");
    assert_eq!(f.file, "crates/agg/src/bad.rs");
    assert_eq!(f.line, 13);
    assert!(f.message.contains("`entries`"));
}

#[test]
fn wallclock_fires_exactly_once() {
    let findings = audit_fixture("wallclock");
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    let f = &findings[0];
    assert_eq!(f.rule, "wallclock");
    assert_eq!(f.file, "crates/sim/src/bad.rs");
    assert_eq!(f.line, 8);
}

#[test]
fn panic_freedom_fires_exactly_once() {
    let findings = audit_fixture("panic_freedom");
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    let f = &findings[0];
    assert_eq!(f.rule, "panic-freedom");
    assert_eq!(f.file, "crates/store/src/bad.rs");
    assert_eq!(f.line, 6);
    assert!(f.message.contains("`unwrap`"));
}

#[test]
fn lock_order_fires_exactly_once() {
    let findings = audit_fixture("lock_order");
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    let f = &findings[0];
    assert_eq!(f.rule, "lock-order");
    assert_eq!(f.file, "crates/agg/src/bad.rs");
    assert_eq!(f.line, 25);
    assert!(f.message.contains("fixture.core"));
    assert!(f.message.contains("fixture.store"));
}

#[test]
fn unsafe_confinement_fires_exactly_once() {
    let findings = audit_fixture("unsafe_confinement");
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    let f = &findings[0];
    assert_eq!(f.rule, "unsafe-confinement");
    assert_eq!(f.file, "crates/net/src/bad.rs");
    assert_eq!(f.line, 6);
    assert!(f.message.contains("audited SIMD kernel module"));
}

#[test]
fn wire_change_without_bump_fires() {
    let findings = audit_fixture("wire");
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    let f = &findings[0];
    assert_eq!(f.rule, "wire-hygiene");
    assert!(f.message.contains("without a PROTOCOL_VERSION bump"));
}

/// Every fixture must fail a `--deny` run (the CI loop relies on this).
#[test]
fn every_fixture_fails_deny() {
    for name in [
        "unordered_iter",
        "wallclock",
        "panic_freedom",
        "lock_order",
        "unsafe_confinement",
        "wire",
    ] {
        let root = fixture_root(name);
        let outcome =
            crowd_audit::run(&root, &root.join("audit-baseline.txt")).expect("fixture audit runs");
        assert!(
            !outcome.clean(),
            "fixture {name} unexpectedly passes --deny"
        );
    }
}

/// A baseline entry naming the fixture's finding grandfathers it — and the
/// same entry becomes stale (still failing `--deny`) once pointed at nothing.
#[test]
fn baseline_grandfathers_and_goes_stale() {
    let root = fixture_root("panic_freedom");
    let dir = std::env::temp_dir().join(format!("audit-baseline-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let matching = dir.join("matching.txt");
    std::fs::write(&matching, "panic-freedom crates/store/src/bad.rs 6\n").unwrap();
    let outcome = crowd_audit::run(&root, &matching).unwrap();
    assert!(outcome.clean());
    assert_eq!(outcome.grandfathered.len(), 1);

    let stale = dir.join("stale.txt");
    std::fs::write(
        &stale,
        "panic-freedom crates/store/src/bad.rs 6\npanic-freedom crates/store/src/gone.rs 1\n",
    )
    .unwrap();
    let outcome = crowd_audit::run(&root, &stale).unwrap();
    assert!(!outcome.clean(), "a stale baseline entry must fail --deny");
    assert_eq!(outcome.stale.len(), 1);

    std::fs::remove_dir_all(&dir).unwrap();
}
