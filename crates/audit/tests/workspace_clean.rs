//! The audit must pass on the tree it ships in: zero non-baselined findings,
//! a baseline that parses with no stale entries, and a wire.lock that matches
//! the live proto surface. This is the same gate CI runs via
//! `cargo run -p crowd-audit -- --deny`, kept as a unit test so a plain
//! `cargo test` catches violations without the extra CI step.

use crowd_audit::report::Baseline;
use crowd_audit::rules::wire_hygiene;
use crowd_audit::source::scan_workspace;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("audit crate lives two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn the_shipped_tree_is_clean() {
    let root = workspace_root();
    let outcome =
        crowd_audit::run(&root, &root.join("audit-baseline.txt")).expect("workspace audit runs");
    assert!(
        outcome.fresh.is_empty(),
        "non-baselined findings:\n{}",
        outcome
            .fresh
            .iter()
            .map(|f| format!("  {}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        outcome.stale.is_empty(),
        "stale baseline entries (prune them): {:?}",
        outcome.stale
    );
}

#[test]
fn the_checked_in_baseline_parses_and_is_not_stale() {
    let root = workspace_root();
    let path = root.join("audit-baseline.txt");
    let text = std::fs::read_to_string(&path).expect("audit-baseline.txt exists at the root");
    let baseline = Baseline::parse(&text).expect("baseline parses");
    // The shipped baseline is empty: every grandfathered finding has been
    // fixed. Entries may be added under pressure, but each must still match
    // a real finding — the clean-tree test above fails on stale ones.
    assert!(
        baseline.entries.is_empty(),
        "the shipped baseline should stay empty; found {:?}",
        baseline.entries
    );
}

#[test]
fn wire_lock_matches_the_live_surface() {
    let root = workspace_root();
    let files = scan_workspace(&root).expect("workspace scans");
    let live = wire_hygiene::extract(&files).expect("proto wire surface extracts");
    let lock_text = std::fs::read_to_string(root.join(wire_hygiene::WIRE_LOCK_FILE))
        .expect("wire.lock exists at the root");
    let locked = wire_hygiene::WireSurface::parse(&lock_text).expect("wire.lock parses");
    assert_eq!(
        live, locked,
        "wire.lock is out of date — refresh with `cargo run -p crowd-audit -- --update-wire-lock`"
    );
}
