//! A minimal Rust lexer: just enough token structure for the audit rules.
//!
//! The goal is *not* a conforming parser — it is a tokenizer that never
//! mistakes the inside of a string, char literal, or comment for code, keeps
//! line numbers, and separates comments (where the `audit:` annotations live)
//! from the token stream the rules walk. Everything a rule matches on —
//! identifiers, punctuation, matched delimiters — survives exactly; literal
//! *contents* are opaque.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line the token starts on.
    pub line: u32,
    pub kind: TokenKind,
}

/// The token categories the rules distinguish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `HashMap`, `unwrap`, …).
    Ident(String),
    /// A lifetime (`'a`, `'static`) — kept distinct so it is never confused
    /// with a char literal.
    Lifetime(String),
    /// Any literal: string, raw string, byte string, char, or number. The
    /// raw text is kept (numbers are parsed by the wire rule).
    Literal(String),
    /// A single punctuation character (`.`, `:`, `!`, `#`, `<`, …).
    /// Multi-character operators arrive as consecutive tokens.
    Punct(char),
    /// `(`, `[`, or `{`.
    Open(char),
    /// `)`, `]`, or `}`.
    Close(char),
}

impl TokenKind {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// `true` for `Punct(c)`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, TokenKind::Punct(p) if *p == c)
    }
}

/// A comment with its starting line, text kept verbatim (without delimiters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes Rust source text. Unterminated constructs simply run to end of file —
/// the rules degrade gracefully on files rustc would reject anyway.
pub fn lex(source: &str) -> Lexed {
    let mut out = Lexed::default();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = chars.len();

    let bump_lines = |text: &[char]| text.iter().filter(|&&c| c == '\n').count() as u32;

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && chars[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: chars[start..j].iter().collect(),
                });
                i = j;
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Block comment, nesting respected.
                let start = i + 2;
                let mut depth = 1;
                let mut j = start;
                while j < n && depth > 0 {
                    if j + 1 < n && chars[j] == '/' && chars[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < n && chars[j] == '*' && chars[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line,
                    text: chars[start..end].iter().collect(),
                });
                line += bump_lines(&chars[i..j]);
                i = j;
            }
            '"' => {
                let (j, text) = scan_string(&chars, i);
                line += bump_lines(&chars[i..j]);
                out.tokens.push(Token {
                    line: line - bump_lines(&chars[i..j]),
                    kind: TokenKind::Literal(text),
                });
                i = j;
            }
            'r' | 'b' if starts_raw_or_byte_string(&chars, i) => {
                let (j, text) = scan_raw_or_byte(&chars, i);
                let lines = bump_lines(&chars[i..j]);
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Literal(text),
                });
                line += lines;
                i = j;
            }
            '\'' => {
                // Lifetime or char literal. A lifetime is `'` + ident NOT
                // followed by a closing `'`.
                if i + 1 < n && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_') {
                    let mut j = i + 1;
                    while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    if j < n && chars[j] == '\'' {
                        // 'a' — a char literal.
                        out.tokens.push(Token {
                            line,
                            kind: TokenKind::Literal(chars[i..=j].iter().collect()),
                        });
                        i = j + 1;
                    } else {
                        out.tokens.push(Token {
                            line,
                            kind: TokenKind::Lifetime(chars[i + 1..j].iter().collect()),
                        });
                        i = j;
                    }
                } else {
                    // Escaped or punctuation char literal: '\n', '\'', '('.
                    let mut j = i + 1;
                    if j < n && chars[j] == '\\' {
                        j += 2;
                    } else {
                        j += 1;
                    }
                    while j < n && chars[j] != '\'' {
                        j += 1;
                    }
                    j = (j + 1).min(n);
                    out.tokens.push(Token {
                        line,
                        kind: TokenKind::Literal(chars[i..j].iter().collect()),
                    });
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < n {
                    let ch = chars[j];
                    if ch.is_alphanumeric() || ch == '_' {
                        j += 1;
                    } else if ch == '.' && j + 1 < n && chars[j + 1].is_ascii_digit() {
                        // A decimal point only when a digit follows — `0..10`
                        // and `2.max(3)` stop before the dot.
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Literal(chars[i..j].iter().collect()),
                });
                i = j.max(i + 1);
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut j = i;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Ident(chars[i..j].iter().collect()),
                });
                i = j;
            }
            '(' | '[' | '{' => {
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Open(c),
                });
                i += 1;
            }
            ')' | ']' | '}' => {
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Close(c),
                });
                i += 1;
            }
            other => {
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Punct(other),
                });
                i += 1;
            }
        }
    }
    out
}

fn starts_raw_or_byte_string(chars: &[char], i: usize) -> bool {
    // r"…", r#"…"#, br"…", b"…", b'…'
    let n = chars.len();
    match chars[i] {
        'r' => {
            let mut j = i + 1;
            while j < n && chars[j] == '#' {
                j += 1;
            }
            j < n && chars[j] == '"'
        }
        'b' => {
            if i + 1 >= n {
                return false;
            }
            match chars[i + 1] {
                '"' | '\'' => true,
                'r' => {
                    let mut j = i + 2;
                    while j < n && chars[j] == '#' {
                        j += 1;
                    }
                    j < n && chars[j] == '"'
                }
                _ => false,
            }
        }
        _ => false,
    }
}

fn scan_string(chars: &[char], start: usize) -> (usize, String) {
    // Plain "…" with escapes; `start` points at the opening quote.
    let n = chars.len();
    let mut j = start + 1;
    while j < n {
        match chars[j] {
            '\\' => j += 2,
            '"' => {
                j += 1;
                break;
            }
            _ => j += 1,
        }
    }
    (j.min(n), chars[start..j.min(n)].iter().collect())
}

fn scan_raw_or_byte(chars: &[char], start: usize) -> (usize, String) {
    let n = chars.len();
    let mut j = start;
    if chars[j] == 'b' {
        j += 1;
    }
    if j < n && chars[j] == '\'' {
        // b'x' byte literal.
        let mut k = j + 1;
        if k < n && chars[k] == '\\' {
            k += 2;
        } else {
            k += 1;
        }
        while k < n && chars[k] != '\'' {
            k += 1;
        }
        let end = (k + 1).min(n);
        return (end, chars[start..end].iter().collect());
    }
    if j < n && chars[j] == 'r' {
        j += 1;
    }
    let mut hashes = 0;
    while j < n && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j < n && chars[j] == '"' {
        j += 1;
        // Scan for `"` followed by `hashes` of '#'.
        while j < n {
            if chars[j] == '"' {
                let mut k = j + 1;
                let mut seen = 0;
                while k < n && chars[k] == '#' && seen < hashes {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return (k, chars[start..k].iter().collect());
                }
            }
            j += 1;
        }
        (n, chars[start..n].iter().collect())
    } else {
        // b"…" plain byte string with escapes.
        let (end, _) = scan_string(chars, j.min(n.saturating_sub(1)));
        (end, chars[start..end].iter().collect())
    }
}

/// For each `Open` token, the index of its matching `Close` (and vice versa).
/// Unbalanced files get `usize::MAX` partners, which no rule ever indexes.
pub fn match_delims(tokens: &[Token]) -> Vec<usize> {
    let mut partner = vec![usize::MAX; tokens.len()];
    let mut stack: Vec<(usize, char)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::Open(c) => stack.push((i, c)),
            TokenKind::Close(c) => {
                let want = match c {
                    ')' => '(',
                    ']' => '[',
                    _ => '{',
                };
                if let Some(&(j, o)) = stack.last() {
                    if o == want {
                        stack.pop();
                        partner[i] = j;
                        partner[j] = i;
                    }
                }
            }
            _ => {}
        }
    }
    partner
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let l = lex("fn main() {\n    x.iter();\n}\n");
        assert_eq!(l.tokens[0].kind, TokenKind::Ident("fn".into()));
        assert_eq!(l.tokens[0].line, 1);
        let iter_tok = l
            .tokens
            .iter()
            .find(|t| t.kind.ident() == Some("iter"))
            .unwrap();
        assert_eq!(iter_tok.line, 2);
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let l = lex("let s = \"HashMap.iter() // not code\"; // audit:allow(x, y)\n");
        assert!(idents("let s = \"HashMap.iter()\";")
            .iter()
            .all(|i| i != "HashMap"));
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("audit:allow"));
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let ids = idents("fn f<'a>(x: &'a str) { let c = '\\''; let r = r#\"Instant::now\"#; }");
        assert!(ids.iter().any(|i| i == "str"));
        assert!(ids.iter().all(|i| i != "Instant"));
        let l = lex("struct S<'long_lifetime> { x: u8 }");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime("long_lifetime".into())));
    }

    #[test]
    fn block_comments_nest_and_count_lines() {
        let l = lex("/* a /* b */ c */\nfn f() {}\n");
        assert_eq!(l.comments.len(), 1);
        let f = l
            .tokens
            .iter()
            .find(|t| t.kind.ident() == Some("fn"))
            .unwrap();
        assert_eq!(f.line, 2);
    }

    #[test]
    fn delimiters_match() {
        let l = lex("fn f(a: u8) { if a > [1][0] { () } }");
        let partner = match_delims(&l.tokens);
        for (i, t) in l.tokens.iter().enumerate() {
            if matches!(t.kind, TokenKind::Open(_)) {
                let j = partner[i];
                assert!(j != usize::MAX && partner[j] == i);
            }
        }
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let l = lex("for i in 0..10 { let x = 1.5f64; let y = 2.max(3); }");
        let lits: Vec<String> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Literal(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert!(lits.contains(&"0".to_string()));
        assert!(lits.contains(&"10".to_string()));
        assert!(lits.contains(&"1.5f64".to_string()));
        assert!(lits.contains(&"2".to_string()));
        assert!(l.tokens.iter().any(|t| t.kind.ident() == Some("max")));
    }
}
