//! Findings, the baseline of grandfathered findings, and the JSON report.
//!
//! The JSON writer is hand-rolled (the workspace vendors no serde); the
//! baseline uses a line-oriented text format so it needs no parser at all:
//!
//! ```text
//! # comment
//! <rule> <file> <line>
//! ```

use std::fmt::Write as _;
use std::path::Path;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule slug, e.g. `unordered-iter`.
    pub rule: String,
    /// Human-readable description of what fired and why it matters.
    pub message: String,
}

impl Finding {
    pub fn new(rule: &str, file: &str, line: u32, message: String) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message,
        }
    }

    /// The `rule file line` key used by the baseline.
    pub fn key(&self) -> String {
        format!("{} {} {}", self.rule, self.file, self.line)
    }
}

/// A parsed baseline: the set of grandfathered finding keys, in file order.
#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: Vec<String>,
}

/// A baseline line that failed to parse.
#[derive(Debug)]
pub struct BaselineError {
    pub line_no: usize,
    pub text: String,
}

impl Baseline {
    /// Parses baseline text. Blank lines and `#` comments are skipped; every
    /// other line must be exactly `rule file line`.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let ok = match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(_rule), Some(_file), Some(n), None) => n.parse::<u32>().is_ok(),
                _ => false,
            };
            if !ok {
                return Err(BaselineError {
                    line_no: idx + 1,
                    text: raw.to_string(),
                });
            }
            entries.push(line.to_string());
        }
        Ok(Baseline { entries })
    }

    /// Loads a baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Baseline::parse(&text).map_err(|e| {
                format!(
                    "{}:{}: malformed baseline entry {:?} (want `rule file line`)",
                    path.display(),
                    e.line_no,
                    e.text
                )
            }),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Splits findings into (new, grandfathered) and returns stale baseline
    /// entries — keys no current finding matches. Stale entries must be
    /// pruned: a baseline that outlives its findings hides regressions that
    /// reintroduce them at the same location.
    pub fn apply(&self, findings: &[Finding]) -> (Vec<Finding>, Vec<Finding>, Vec<String>) {
        let keys: Vec<String> = findings.iter().map(|f| f.key()).collect();
        let mut fresh = Vec::new();
        let mut grandfathered = Vec::new();
        for (f, key) in findings.iter().zip(&keys) {
            if self.entries.iter().any(|e| e == key) {
                grandfathered.push(f.clone());
            } else {
                fresh.push(f.clone());
            }
        }
        let stale: Vec<String> = self
            .entries
            .iter()
            .filter(|e| !keys.iter().any(|k| k == *e))
            .cloned()
            .collect();
        (fresh, grandfathered, stale)
    }
}

/// Renders the machine-readable report consumed by CI.
pub fn render_json(findings: &[Finding], grandfathered: &[Finding], stale: &[String]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"findings\": [");
    write_finding_array(&mut out, findings);
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"grandfathered\": [");
    write_finding_array(&mut out, grandfathered);
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"stale_baseline_entries\": [");
    for (i, s) in stale.iter().enumerate() {
        let comma = if i + 1 < stale.len() { "," } else { "" };
        let _ = writeln!(out, "    {}{comma}", json_string(s));
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"counts\": {{ \"findings\": {}, \"grandfathered\": {}, \"stale\": {} }}",
        findings.len(),
        grandfathered.len(),
        stale.len()
    );
    out.push_str("}\n");
    out
}

fn write_finding_array(out: &mut String, findings: &[Finding]) {
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 < findings.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{ \"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {} }}{comma}",
            json_string(&f.rule),
            json_string(&f.file),
            f.line,
            json_string(&f.message)
        );
    }
}

/// Escapes a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &str, file: &str, line: u32) -> Finding {
        Finding::new(rule, file, line, format!("{rule} fired"))
    }

    #[test]
    fn baseline_round_trip_and_staleness() {
        let text = "# grandfathered\nwallclock crates/sim/src/lib.rs 10\npanic-freedom crates/store/src/wal.rs 59\n";
        let baseline = Baseline::parse(text).unwrap();
        assert_eq!(baseline.entries.len(), 2);
        let findings = vec![
            f("wallclock", "crates/sim/src/lib.rs", 10),
            f("unordered-iter", "crates/agg/src/dedup.rs", 4),
        ];
        let (fresh, grandfathered, stale) = baseline.apply(&findings);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].rule, "unordered-iter");
        assert_eq!(grandfathered.len(), 1);
        assert_eq!(stale, vec!["panic-freedom crates/store/src/wal.rs 59"]);
    }

    #[test]
    fn malformed_baseline_is_rejected() {
        assert!(Baseline::parse("just-two fields").is_err());
        assert!(Baseline::parse("rule file notanumber").is_err());
        assert!(Baseline::parse("rule file 10 extra").is_err());
        assert!(Baseline::parse("\n# only comments\n\n")
            .unwrap()
            .entries
            .is_empty());
    }

    #[test]
    fn json_is_escaped_and_counted() {
        let findings = vec![Finding::new(
            "wire-hygiene",
            "crates/proto/src/message.rs",
            1,
            "tag \"7\"\nchanged".into(),
        )];
        let json = render_json(&findings, &[], &["a b 1".into()]);
        assert!(json.contains("\\\"7\\\"\\nchanged"));
        assert!(json.contains("\"findings\": 1"));
        assert!(json.contains("\"stale\": 1"));
    }
}
