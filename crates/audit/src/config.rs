//! The policy tables: which crates and files each rule applies to.
//!
//! Kept in one place so the rule catalogue in the README and the code can be
//! diffed at a glance.

/// Crates whose iteration order reaches merged parameters, acks, or persisted
/// state — the bitwise-determinism surface.
pub const DETERMINISM_CRATES: &[&str] = &["core", "agg", "store", "dp", "linalg"];

/// Files allowed to read the wall clock: the telemetry clock module (the ONE
/// place a monotonic `Instant` is anchored — everything else observes time
/// through `crowd_telemetry::Clock`) and the benchmark harness. Entries are
/// workspace-relative path prefixes.
pub const WALLCLOCK_ALLOWED: &[&str] = &["crates/telemetry/src/clock.rs", "crates/bench/src/"];

/// Request-path modules where a panic tears down a server worker mid-epoch:
/// everything between a byte arriving on the socket and the durable ack.
/// Entries are workspace-relative path prefixes.
pub const PANIC_FREE_PATHS: &[&str] = &[
    "crates/proto/src/codec.rs",
    "crates/proto/src/frame.rs",
    "crates/proto/src/pool.rs",
    "crates/net/src/server.rs",
    "crates/net/src/service.rs",
    "crates/net/src/reactor_server.rs",
    "crates/reactor/src/",
    "crates/agg/src/runtime.rs",
    "crates/agg/src/shard.rs",
    "crates/agg/src/dedup.rs",
    "crates/agg/src/queue.rs",
    "crates/store/src/",
    "crates/telemetry/src/",
];

/// Files allowed to contain `unsafe` code: the single audited SIMD kernel
/// module (whose safety argument lives next to the intrinsics) and the
/// vendored polling shim's FFI surface. Everywhere else the workspace is
/// `deny(unsafe_code)` and any `unsafe` token is a finding. Entries are
/// workspace-relative path prefixes.
pub const UNSAFE_ALLOWED: &[&str] = &["crates/linalg/src/kernels/simd.rs", "vendor/polling/"];

/// The file carrying the message tag table (`Message::tag`).
pub const WIRE_MESSAGE_FILE: &str = "crates/proto/src/message.rs";

/// The file carrying `PROTOCOL_VERSION`.
pub const WIRE_VERSION_FILE: &str = "crates/proto/src/lib.rs";

/// Is `rel_path` inside one of the prefix lists?
pub fn path_in(rel_path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel_path.starts_with(p))
}
