//! `crowd-audit`: the workspace's static-analysis pass.
//!
//! Every correctness claim this reproduction makes — bitwise
//! shard-count-independent merges, bitwise crash recovery, bitwise
//! chaos-vs-reference equivalence — rests on invariants that ordinary tests
//! only probe dynamically: no unordered iteration feeding outputs, no wall
//! clock in deterministic code, no panics in request paths, one global lock
//! order, and a wire surface that never changes without a version bump. This
//! crate checks them *statically*, on every CI run, with a hand-rolled lexer
//! and token-tree walker (the workspace vendors no `syn`).
//!
//! The rule catalogue lives in [`rules`]; the policy tables (which crates and
//! files each rule covers) in [`config`]; findings, the baseline, and the
//! JSON report in [`report`]. The `crowd-audit` binary wires them to a CLI:
//!
//! ```text
//! cargo run -p crowd-audit -- --deny          # CI mode: nonzero on findings
//! cargo run -p crowd-audit -- --update-wire-lock
//! ```
//!
//! Suppressions are per-site comments, always with a reason:
//!
//! ```text
//! // audit:allow(<rule>, <reason>)   — waive one finding on the next line
//! // audit:lock(<name>, <rank>)     — register a Mutex/RwLock field
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

use report::{Baseline, Finding};
use std::path::Path;

/// The outcome of one audit run over a workspace tree.
#[derive(Debug)]
pub struct AuditOutcome {
    /// Findings not covered by the baseline — these fail `--deny`.
    pub fresh: Vec<Finding>,
    /// Findings grandfathered by the baseline.
    pub grandfathered: Vec<Finding>,
    /// Baseline entries matching no current finding — these also fail
    /// `--deny`, because a stale baseline hides regressions.
    pub stale: Vec<String>,
}

impl AuditOutcome {
    /// Does this run pass a `--deny` gate?
    pub fn clean(&self) -> bool {
        self.fresh.is_empty() && self.stale.is_empty()
    }
}

/// Scans the workspace at `root`, runs every rule, and applies the baseline
/// at `baseline_path`.
pub fn run(root: &Path, baseline_path: &Path) -> Result<AuditOutcome, String> {
    let files = source::scan_workspace(root).map_err(|e| format!("scanning {root:?}: {e}"))?;
    let findings = rules::run_all(&files, root);
    let baseline = Baseline::load(baseline_path)?;
    let (fresh, grandfathered, stale) = baseline.apply(&findings);
    Ok(AuditOutcome {
        fresh,
        grandfathered,
        stale,
    })
}

/// Regenerates the `wire.lock` manifest from the live proto sources.
/// `Ok(false)` when the tree has no wire surface to record.
pub fn update_wire_lock(root: &Path) -> Result<bool, String> {
    let files = source::scan_workspace(root).map_err(|e| format!("scanning {root:?}: {e}"))?;
    match rules::wire_hygiene::extract(&files) {
        Some(surface) => {
            let path = root.join(rules::wire_hygiene::WIRE_LOCK_FILE);
            std::fs::write(&path, surface.render())
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            Ok(true)
        }
        None => Ok(false),
    }
}
