//! The `crowd-audit` CLI.
//!
//! ```text
//! crowd-audit [--root DIR] [--deny] [--report FILE] [--baseline FILE]
//!             [--update-wire-lock]
//! ```
//!
//! Exit status: 0 when the tree is clean (no non-baselined findings and no
//! stale baseline entries), 1 when `--deny` is set and it is not, 2 on usage
//! or I/O errors. Without `--deny`, findings are printed but the exit status
//! stays 0 — the mode for incremental local cleanup against a baseline.

#![forbid(unsafe_code)]

use crowd_audit::report::render_json;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: crowd-audit [--root DIR] [--deny] [--report FILE] [--baseline FILE]
                   [--update-wire-lock]

  --root DIR          workspace root to scan (default: .)
  --deny              exit nonzero on any non-baselined finding or stale
                      baseline entry (CI mode)
  --report FILE       write the machine-readable JSON report to FILE
  --baseline FILE     baseline of grandfathered findings
                      (default: <root>/audit-baseline.txt)
  --update-wire-lock  regenerate <root>/wire.lock from the live proto
                      sources, then exit
";

struct Args {
    root: PathBuf,
    deny: bool,
    report: Option<PathBuf>,
    baseline: Option<PathBuf>,
    update_wire_lock: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        deny: false,
        report: None,
        baseline: None,
        update_wire_lock: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => args.root = it.next().ok_or("--root needs a value")?.into(),
            "--deny" => args.deny = true,
            "--report" => args.report = Some(it.next().ok_or("--report needs a value")?.into()),
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a value")?.into())
            }
            "--update-wire-lock" => args.update_wire_lock = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("crowd-audit: {e}");
            return ExitCode::from(2);
        }
    };

    if args.update_wire_lock {
        return match crowd_audit::update_wire_lock(&args.root) {
            Ok(true) => {
                eprintln!("crowd-audit: wire.lock refreshed");
                ExitCode::SUCCESS
            }
            Ok(false) => {
                eprintln!("crowd-audit: no wire surface found under {:?}", args.root);
                ExitCode::from(2)
            }
            Err(e) => {
                eprintln!("crowd-audit: {e}");
                ExitCode::from(2)
            }
        };
    }

    let baseline = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("audit-baseline.txt"));
    let outcome = match crowd_audit::run(&args.root, &baseline) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("crowd-audit: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &outcome.fresh {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    for s in &outcome.stale {
        println!("(baseline): stale entry `{s}` — no such finding remains, prune it");
    }
    eprintln!(
        "crowd-audit: {} finding(s), {} grandfathered, {} stale baseline entr{}",
        outcome.fresh.len(),
        outcome.grandfathered.len(),
        outcome.stale.len(),
        if outcome.stale.len() == 1 { "y" } else { "ies" },
    );

    if let Some(report_path) = &args.report {
        let json = render_json(&outcome.fresh, &outcome.grandfathered, &outcome.stale);
        if let Err(e) = std::fs::write(report_path, json) {
            eprintln!("crowd-audit: writing {}: {e}", report_path.display());
            return ExitCode::from(2);
        }
    }

    if args.deny && !outcome.clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
