//! Rule `unordered-iter`: `HashMap`/`HashSet` iteration in
//! determinism-critical crates.
//!
//! `HashMap` iteration order depends on the hasher's per-process random seed,
//! so any value derived from it — merged parameters, ack contents, persisted
//! ledgers — varies run to run. In the crates whose outputs must be bitwise
//! reproducible (`core`, `agg`, `store`, `dp`, `linalg`) every iteration over
//! a hash container must either be sorted before use, switched to a BTree
//! container, or explicitly waived with
//! `// audit:allow(unordered-iter, reason)`.
//!
//! Detection is name-based: identifiers whose declared type (or constructor)
//! is `HashMap`/`HashSet` are tracked per file, and `iter`/`keys`/`values`/
//! `drain`/`into_iter`/`for … in &x` sites on them are flagged. Escapes: an
//! allow annotation, a sort in the same statement, or an immediately
//! following `<binding>.sort…` statement on the collected result.

use super::{depths, let_binding, statement_bounds};
use crate::config::DETERMINISM_CRATES;
use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::source::SourceFile;
use std::collections::BTreeSet;

pub const RULE: &str = "unordered-iter";

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !DETERMINISM_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        let hashed = hash_typed_idents(file);
        if hashed.is_empty() {
            continue;
        }
        let depth = depths(&file.tokens);
        for i in 0..file.tokens.len() {
            if file.in_test(i) {
                continue;
            }
            if let Some(site) = iteration_site(file, &hashed, i) {
                let line = file.line_of(i);
                if file.allowed(RULE, line) {
                    continue;
                }
                let (start, end) = statement_bounds(&file.tokens, &depth, i);
                if statement_sorts(file, start, end)
                    || next_statement_sorts(file, &depth, start, end)
                {
                    continue;
                }
                findings.push(Finding::new(
                    RULE,
                    &file.rel_path,
                    line,
                    format!(
                        "iteration over hash container `{site}` in determinism-critical \
                         crate `{}` — sort the result, use a BTree container, or annotate \
                         `// audit:allow(unordered-iter, reason)`",
                        file.crate_name
                    ),
                ));
            }
        }
    }
    findings
}

/// Identifiers declared (or constructed) as `HashMap`/`HashSet` in this file:
/// `name: [path::]HashMap<…>` fields/ascriptions and
/// `let [mut] name = HashMap::new()`-style constructions.
fn hash_typed_idents(file: &SourceFile) -> BTreeSet<String> {
    let toks = &file.tokens;
    let mut out = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(ty) = t.kind.ident() else { continue };
        if !HASH_TYPES.contains(&ty) {
            continue;
        }
        // Back-walk over a path prefix (`std :: collections ::`) to the
        // token introducing the type.
        let mut k = i;
        while k >= 2 && toks[k - 1].kind.is_punct(':') && toks[k - 2].kind.is_punct(':') {
            k -= 2;
            if k > 0 && matches!(toks[k - 1].kind, TokenKind::Ident(_)) {
                k -= 1;
            }
        }
        if k == 0 {
            continue;
        }
        match &toks[k - 1].kind {
            // `name : HashMap<…>` — field or type ascription.
            TokenKind::Punct(':') if k >= 2 && !toks[k - 2].kind.is_punct(':') => {
                if let Some(name) = toks[k - 2].kind.ident() {
                    out.insert(name.to_string());
                }
            }
            // `name = HashMap::new()` / `name = HashMap::with_capacity(…)`.
            TokenKind::Punct('=') if k >= 2 => {
                if let Some(name) = toks[k - 2].kind.ident() {
                    out.insert(name.to_string());
                }
            }
            _ => {}
        }
    }
    out
}

/// If token `i` is an iteration site over a tracked ident, returns the ident.
fn iteration_site(file: &SourceFile, hashed: &BTreeSet<String>, i: usize) -> Option<String> {
    let toks = &file.tokens;
    let t = toks.get(i)?;
    if let Some(m) = t.kind.ident() {
        // `x.iter()` — method named in ITER_METHODS, preceded by `. ident`
        // where ident is tracked, followed by `(`.
        if ITER_METHODS.contains(&m)
            && i >= 2
            && toks[i - 1].kind.is_punct('.')
            && matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokenKind::Open('(')))
        {
            if let Some(recv) = toks[i - 2].kind.ident() {
                if hashed.contains(recv) {
                    return Some(recv.to_string());
                }
            }
        }
        // `for pat in &x {` / `for pat in &mut x {` / `for pat in x {`.
        if m == "for" {
            let mut k = i + 1;
            let mut guard = 0;
            while k < toks.len() && toks[k].kind.ident() != Some("in") && guard < 24 {
                k += 1;
                guard += 1;
            }
            if k < toks.len() && toks[k].kind.ident() == Some("in") {
                let mut e = k + 1;
                while e < toks.len()
                    && (toks[e].kind.is_punct('&') || toks[e].kind.ident() == Some("mut"))
                {
                    e += 1;
                }
                if let Some(name) = toks.get(e).and_then(|t| t.kind.ident()) {
                    // Must be the whole iterated expression: next token opens
                    // the loop body (or dereferences a field of self).
                    let next = toks.get(e + 1).map(|t| &t.kind);
                    let direct = matches!(next, Some(TokenKind::Open('{')));
                    if direct && hashed.contains(name) {
                        return Some(name.to_string());
                    }
                    // `for … in &self.x {`
                    if name == "self" && matches!(next, Some(TokenKind::Punct('.'))) {
                        if let Some(fld) = toks.get(e + 2).and_then(|t| t.kind.ident()) {
                            if hashed.contains(fld)
                                && matches!(
                                    toks.get(e + 3).map(|t| &t.kind),
                                    Some(TokenKind::Open('{'))
                                )
                            {
                                return Some(fld.to_string());
                            }
                        }
                    }
                }
            }
        }
    }
    None
}

/// Does the statement `[start, end)` contain a sort or a BTree collect?
fn statement_sorts(file: &SourceFile, start: usize, end: usize) -> bool {
    file.tokens[start..end.min(file.tokens.len())]
        .iter()
        .any(|t| match t.kind.ident() {
            Some(id) => id.starts_with("sort") || id == "BTreeMap" || id == "BTreeSet",
            None => false,
        })
}

/// Collect-then-sort across two statements:
/// `let mut v = map.keys().collect(); v.sort_unstable();`.
fn next_statement_sorts(file: &SourceFile, depth: &[u32], start: usize, end: usize) -> bool {
    let Some(binding) = let_binding(&file.tokens, start, end) else {
        return false;
    };
    let toks = &file.tokens;
    if end >= toks.len() || depth.get(end).copied() != depth.get(start).copied() {
        return false;
    }
    toks.get(end).and_then(|t| t.kind.ident()) == Some(binding.as_str())
        && toks
            .get(end + 1)
            .map(|t| t.kind.is_punct('.'))
            .unwrap_or(false)
        && toks
            .get(end + 2)
            .and_then(|t| t.kind.ident())
            .map(|id| id.starts_with("sort"))
            .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("crates/agg/src/x.rs", src);
        check(&[file])
    }

    #[test]
    fn flags_iteration_in_determinism_crate() {
        let src = "\
struct S { m: HashMap<u64, f64> }
impl S {
    fn f(&self) -> f64 { self.m.values().sum() }
    fn g(&self) { for (k, v) in &self.m { use_it(k, v); } }
}
";
        let found = run(src);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].line, 3);
        assert_eq!(found[1].line, 4);
    }

    #[test]
    fn non_determinism_crate_is_ignored() {
        let src = "fn f(m: HashMap<u8, u8>) { for x in &m {} }";
        let file = SourceFile::parse("crates/net/src/x.rs", src);
        assert!(check(&[file]).is_empty());
    }

    #[test]
    fn allow_and_sort_escapes() {
        let src = "\
fn f(m: HashMap<u64, f64>) {
    // audit:allow(unordered-iter, summed — order cancels)
    let total: f64 = m.values().sum();
    let sorted: Vec<_> = { let mut v: Vec<_> = m.keys().copied().collect(); v.sort_unstable(); v };
    let mut ks: Vec<_> = m.keys().collect();
    ks.sort();
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn let_constructed_map_is_tracked() {
        let src = "fn f() { let mut m = HashMap::new(); m.insert(1, 2); for x in &m {} }";
        let found = run(src);
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn f(m: HashMap<u8, u8>) { for x in &m {} } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn btreemap_is_fine() {
        let src =
            "struct S { m: BTreeMap<u64, f64> }\nimpl S { fn f(&self) { for x in &self.m {} } }";
        assert!(run(src).is_empty());
    }
}
