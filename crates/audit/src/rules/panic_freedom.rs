//! Rule `panic-freedom`: no panicking constructs in request-path modules.
//!
//! A panic in a decode path or an aggregation worker tears down the thread
//! holding an epoch's state; under `abort` it kills the server. Inside the
//! request path — codec, framing, the accept loop, the aggregation runtime,
//! and the persistence layer ([`crate::config::PANIC_FREE_PATHS`]) — every
//! failure must surface as an `ErrorCode`, `io::Error`, or `StoreError`
//! instead. `unwrap`, `expect`, `panic!`, and `unreachable!` are findings
//! outside `#[cfg(test)]`, unless waived with
//! `// audit:allow(panic-freedom, reason)`.

use crate::config::{path_in, PANIC_FREE_PATHS};
use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::source::SourceFile;

pub const RULE: &str = "panic-freedom";

pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !path_in(&file.rel_path, PANIC_FREE_PATHS) {
            continue;
        }
        for (i, t) in file.tokens.iter().enumerate() {
            let Some(id) = t.kind.ident() else { continue };
            let toks = &file.tokens;
            let hit = match id {
                // `.unwrap()` / `.expect(…)` method calls only — idents like
                // `unwrap_or_else` lex as one token and never match.
                "unwrap" | "expect" => {
                    i >= 1
                        && toks[i - 1].kind.is_punct('.')
                        && matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokenKind::Open('(')))
                }
                // `panic!(…)` / `unreachable!(…)` macro invocations.
                "panic" | "unreachable" | "todo" | "unimplemented" => toks
                    .get(i + 1)
                    .map(|t| t.kind.is_punct('!'))
                    .unwrap_or(false),
                _ => false,
            };
            if !hit || file.in_test(i) {
                continue;
            }
            let line = file.line_of(i);
            if file.allowed(RULE, line) {
                continue;
            }
            findings.push(Finding::new(
                RULE,
                &file.rel_path,
                line,
                format!(
                    "`{id}` in request-path module — return an error instead, or annotate \
                     `// audit:allow(panic-freedom, reason)`"
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        check(&[SourceFile::parse(path, src)])
    }

    #[test]
    fn flags_all_four_constructs_in_request_path() {
        let src = "\
fn f(x: Option<u8>) -> u8 { x.unwrap() }
fn g(x: Option<u8>) -> u8 { x.expect(\"present\") }
fn h() { panic!(\"boom\"); }
fn i() { unreachable!(); }
";
        let found = run("crates/store/src/wal.rs", src);
        assert_eq!(found.len(), 4);
        assert_eq!(
            found.iter().map(|f| f.line).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn non_request_path_and_tests_are_exempt() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert!(run("crates/core/src/server.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod t { fn f(x: Option<u8>) -> u8 { x.unwrap() } }";
        assert!(run("crates/store/src/wal.rs", test_src).is_empty());
    }

    #[test]
    fn lookalike_idents_do_not_fire() {
        let src = "\
fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }
fn g(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 0) }
fn h() { let unwrap = 3; let _ = unwrap; }
fn i(s: &str) { if s == \"panic!\" {} }
";
        assert!(run("crates/store/src/wal.rs", src).is_empty());
    }

    #[test]
    fn allow_annotation_suppresses() {
        let src = "\
fn f(x: Option<u8>) -> u8 {
    // audit:allow(panic-freedom, invariant: caller checked is_some)
    x.unwrap()
}
";
        assert!(run("crates/store/src/wal.rs", src).is_empty());
    }
}
