//! Rule `lock-order`: every lock registered, every acquisition rank-ordered.
//!
//! The workspace documents a single global acquisition order (core → store,
//! encoded as ranks in `// audit:lock(name, rank)` annotations on each
//! `Mutex`/`RwLock` field). This rule enforces three things statically:
//!
//! 1. **Registration** — a `Mutex`/`RwLock` struct field without an
//!    `audit:lock` annotation is a finding; an unregistered lock is invisible
//!    to the order check.
//! 2. **Registry consistency** — one name, one rank; one rank, one name.
//! 3. **Rank monotonicity** — per function body, guard lifetimes are
//!    approximated (let-bound guards live to the end of the enclosing block
//!    or an explicit `drop(binding)`; temporaries live to the end of their
//!    statement, which for a `match` scrutinee spans the arms, matching Rust
//!    temporary-lifetime rules) and every acquisition made while another
//!    registered lock is held must carry a strictly greater rank.
//!
//! Closures are analyzed as separate function scopes: a closure body does not
//! inherit the guards live at its definition site, since the workspace's
//! deferred closures (e.g. abandon callbacks) run after those guards drop.
//! Known limitation: receivers are resolved by field name, so a lock reached
//! through a loop variable (`for stripe in &self.shards`) is not tracked —
//! `self.shards[idx].lock()` is.
//!
//! A cycle check over the whole acquired-while-held graph backstops the rank
//! check.

use super::depths;
use crate::lexer::{Token, TokenKind};
use crate::report::Finding;
use crate::source::{LockAnnotation, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

pub const RULE: &str = "lock-order";

pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut registry: BTreeMap<String, (u32, String)> = BTreeMap::new(); // name -> (rank, file)
    let mut by_rank: BTreeMap<u32, String> = BTreeMap::new();

    for file in files {
        for ann in &file.locks {
            match registry.get(&ann.name) {
                Some((rank, origin)) if *rank != ann.rank => {
                    findings.push(Finding::new(
                        RULE,
                        &file.rel_path,
                        ann.line,
                        format!(
                            "lock `{}` registered with rank {} here but rank {} in {origin}",
                            ann.name, ann.rank, rank
                        ),
                    ));
                }
                Some(_) => {}
                None => {
                    if let Some(other) = by_rank.get(&ann.rank) {
                        if other != &ann.name {
                            findings.push(Finding::new(
                                RULE,
                                &file.rel_path,
                                ann.line,
                                format!(
                                    "locks `{}` and `{other}` share rank {} — the order \
                                     between them is ambiguous",
                                    ann.name, ann.rank
                                ),
                            ));
                        }
                    } else {
                        by_rank.insert(ann.rank, ann.name.clone());
                    }
                    registry.insert(ann.name.clone(), (ann.rank, file.rel_path.clone()));
                }
            }
        }
    }

    let mut edges: BTreeSet<(String, String)> = BTreeSet::new();
    for file in files {
        findings.extend(unregistered_fields(file));
        let fields = file.lock_fields();
        if fields.is_empty() {
            continue;
        }
        let depth = depths(&file.tokens);
        for (start, end) in function_bodies(&file.tokens, &file.partner) {
            walk_scope(file, &fields, &depth, start, end, &mut findings, &mut edges);
        }
    }

    if let Some(cycle) = find_cycle(&edges) {
        findings.push(Finding::new(
            RULE,
            "(workspace)",
            0,
            format!("lock acquisition cycle: {}", cycle.join(" -> ")),
        ));
    }
    findings
}

/// `Mutex`/`RwLock` struct fields with no `audit:lock` annotation.
fn unregistered_fields(file: &SourceFile) -> Vec<Finding> {
    let toks = &file.tokens;
    let registered = file.lock_fields();
    let mut findings = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind.ident() != Some("struct") {
            i += 1;
            continue;
        }
        // Find the `{` opening the body, unless a tuple/unit struct ends
        // the item first.
        let mut j = i + 1;
        let mut body: Option<(usize, usize)> = None;
        while j < toks.len() {
            match toks[j].kind {
                TokenKind::Open('{') => {
                    let close = file.partner[j];
                    if close != usize::MAX {
                        body = Some((j + 1, close));
                    }
                    break;
                }
                TokenKind::Open('(') | TokenKind::Punct(';') => break,
                _ => j += 1,
            }
        }
        let Some((bstart, bend)) = body else {
            i = j.max(i + 1);
            continue;
        };
        // Walk fields: `name :` pairs at body depth, type runs to the `,` at
        // body depth or the closing brace.
        let depth = depths(toks);
        let body_depth = depth[bstart];
        let mut k = bstart;
        while k < bend {
            let is_field = depth[k] == body_depth
                && matches!(toks[k].kind, TokenKind::Ident(_))
                && toks
                    .get(k + 1)
                    .map(|t| t.kind.is_punct(':'))
                    .unwrap_or(false)
                && !toks
                    .get(k + 2)
                    .map(|t| t.kind.is_punct(':'))
                    .unwrap_or(false);
            if !is_field {
                k += 1;
                continue;
            }
            let name = toks[k].kind.ident().unwrap_or_default().to_string();
            let mut t = k + 2;
            let mut has_lock_type = false;
            while t < bend && !(depth[t] == body_depth && toks[t].kind.is_punct(',')) {
                if matches!(toks[t].kind.ident(), Some("Mutex") | Some("RwLock")) {
                    has_lock_type = true;
                }
                t += 1;
            }
            if has_lock_type && !registered.contains_key(&name) && !file.in_test(k) {
                let line = file.line_of(k);
                if !file.allowed(RULE, line) {
                    findings.push(Finding::new(
                        RULE,
                        &file.rel_path,
                        line,
                        format!(
                            "lock field `{name}` has no `// audit:lock(name, rank)` \
                             annotation — unregistered locks are invisible to the \
                             order check"
                        ),
                    ));
                }
            }
            k = t + 1;
        }
        i = bend;
    }
    findings
}

/// Token ranges of all `fn` bodies (including nested ones — each is walked
/// as its own scope).
fn function_bodies(toks: &[Token], partner: &[usize]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind.ident() == Some("fn") {
            let mut j = i + 1;
            while j < toks.len() {
                match toks[j].kind {
                    TokenKind::Open('{') => {
                        let close = partner[j];
                        if close != usize::MAX {
                            out.push((j + 1, close));
                        }
                        break;
                    }
                    TokenKind::Punct(';') => break,
                    // Skip parameter lists and generic groups wholesale.
                    TokenKind::Open(_) => {
                        let close = partner[j];
                        j = if close == usize::MAX {
                            j + 1
                        } else {
                            close + 1
                        };
                    }
                    _ => j += 1,
                }
            }
        }
        i += 1;
    }
    out
}

#[derive(Debug, Clone)]
struct Held {
    name: String,
    rank: u32,
    release: usize,
}

/// Tokens that can directly precede a closure's opening `|`.
fn closure_starter(prev: Option<&TokenKind>) -> bool {
    match prev {
        None => true,
        Some(TokenKind::Punct(c)) => matches!(c, '=' | ',' | ';' | '>' | '&' | ':'),
        Some(TokenKind::Open(_)) => true,
        Some(TokenKind::Ident(id)) => {
            matches!(id.as_str(), "return" | "move" | "else" | "in" | "match")
        }
        _ => false,
    }
}

#[allow(clippy::too_many_arguments)]
fn walk_scope(
    file: &SourceFile,
    fields: &BTreeMap<String, LockAnnotation>,
    depth: &[u32],
    start: usize,
    end: usize,
    findings: &mut Vec<Finding>,
    edges: &mut BTreeSet<(String, String)>,
) {
    let toks = &file.tokens;
    let mut held: Vec<Held> = Vec::new();
    let mut i = start;
    while i < end {
        held.retain(|h| h.release > i);
        match &toks[i].kind {
            // Nested fn: its body is a separate scope (already enumerated).
            TokenKind::Ident(id) if id == "fn" => {
                let mut j = i + 1;
                while j < end {
                    match toks[j].kind {
                        TokenKind::Open('{') => {
                            let close = file.partner[j];
                            j = if close == usize::MAX {
                                j + 1
                            } else {
                                close + 1
                            };
                            break;
                        }
                        TokenKind::Punct(';') => {
                            j += 1;
                            break;
                        }
                        TokenKind::Open(_) => {
                            let close = file.partner[j];
                            j = if close == usize::MAX {
                                j + 1
                            } else {
                                close + 1
                            };
                        }
                        _ => j += 1,
                    }
                }
                i = j;
                continue;
            }
            // Closure: walk its body as a fresh scope, skip it here.
            TokenKind::Punct('|')
                if closure_starter(if i == start {
                    None
                } else {
                    Some(&toks[i - 1].kind)
                }) =>
            {
                if let Some((bstart, bend)) = closure_body(file, depth, i, end) {
                    walk_scope(file, fields, depth, bstart, bend, findings, edges);
                    i = bend;
                    continue;
                }
                i += 1;
                continue;
            }
            TokenKind::Ident(id) if matches!(id.as_str(), "lock" | "read" | "write") => {
                if let Some(field) = acquisition_receiver(file, fields, i) {
                    let ann = &fields[&field];
                    let line = file.line_of(i);
                    let release = release_point(file, depth, i, end);
                    let waived = file.allowed(RULE, line);
                    if !waived {
                        for h in &held {
                            if h.name == ann.name {
                                findings.push(Finding::new(
                                    RULE,
                                    &file.rel_path,
                                    line,
                                    format!(
                                        "lock `{}` acquired while already held — \
                                         self-deadlock",
                                        ann.name
                                    ),
                                ));
                            } else if h.rank >= ann.rank {
                                findings.push(Finding::new(
                                    RULE,
                                    &file.rel_path,
                                    line,
                                    format!(
                                        "lock `{}` (rank {}) acquired while holding \
                                         `{}` (rank {}) — inverts the documented order",
                                        ann.name, ann.rank, h.name, h.rank
                                    ),
                                ));
                            }
                        }
                    }
                    // The cycle backstop only sees edges that passed the rank
                    // check: flagged inversions would be reported twice
                    // otherwise, and a waived site is waived entirely — its
                    // inverted edge would always close a cycle against the
                    // documented order, making the annotation useless.
                    for h in &held {
                        if h.name != ann.name && !waived && h.rank < ann.rank {
                            edges.insert((h.name.clone(), ann.name.clone()));
                        }
                    }
                    held.push(Held {
                        name: ann.name.clone(),
                        rank: ann.rank,
                        release,
                    });
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// If token `i` is a `.lock()` / `.read()` / `.write()` acquisition of a
/// registered field, returns the field name. Empty argument parens are
/// required so `io::Read::read(&mut buf)` never matches.
fn acquisition_receiver(
    file: &SourceFile,
    fields: &BTreeMap<String, LockAnnotation>,
    i: usize,
) -> Option<String> {
    let toks = &file.tokens;
    if i < 2 || !toks[i - 1].kind.is_punct('.') {
        return None;
    }
    if !matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokenKind::Open('('))) {
        return None;
    }
    if !matches!(
        toks.get(i + 2).map(|t| &t.kind),
        Some(TokenKind::Close(')'))
    ) {
        return None;
    }
    // Receiver: the ident before the dot, or — for `self.shards[idx].lock()` —
    // the ident before the index brackets.
    let recv = match &toks[i - 2].kind {
        TokenKind::Ident(name) => Some(name.clone()),
        TokenKind::Close(']') => {
            let open = file.partner[i - 2];
            if open != usize::MAX && open >= 1 {
                toks[open - 1].kind.ident().map(|s| s.to_string())
            } else {
                None
            }
        }
        _ => None,
    }?;
    fields.contains_key(&recv).then_some(recv)
}

/// Where the guard acquired at token `i` dies, as a token index.
fn release_point(file: &SourceFile, depth: &[u32], i: usize, scope_end: usize) -> usize {
    let toks = &file.tokens;
    let (stmt_start, stmt_end) = super::statement_bounds(toks, depth, i);
    if let Some(binding) = super::let_binding(toks, stmt_start, stmt_end) {
        // Let-bound: held to the end of the innermost enclosing block, or an
        // explicit `drop(binding)`.
        let mut block_end = scope_end;
        let mut k = stmt_start;
        while k > 0 {
            k -= 1;
            if matches!(toks[k].kind, TokenKind::Open('{')) {
                let close = file.partner[k];
                if close != usize::MAX && close > i {
                    block_end = block_end.min(close);
                    break;
                }
            }
        }
        let mut d = stmt_end;
        while d + 2 < block_end {
            if toks[d].kind.ident() == Some("drop")
                && matches!(toks[d + 1].kind, TokenKind::Open('('))
                && toks[d + 2].kind.ident() == Some(binding.as_str())
            {
                return d;
            }
            d += 1;
        }
        block_end
    } else {
        // Temporary: lives to the end of its statement (which for a `match`
        // scrutinee includes the arms).
        stmt_end.min(scope_end)
    }
}

/// The extent of a closure body whose parameter list opens at token `i`.
fn closure_body(
    file: &SourceFile,
    depth: &[u32],
    i: usize,
    scope_end: usize,
) -> Option<(usize, usize)> {
    let toks = &file.tokens;
    let d = depth[i];
    // Closing `|` of the parameter list at the same depth.
    let mut j = i + 1;
    while j < scope_end && !(depth[j] == d && toks[j].kind.is_punct('|')) {
        if depth[j] < d {
            return None;
        }
        j += 1;
    }
    if j >= scope_end {
        return None;
    }
    let mut b = j + 1;
    // Optional `-> Type` before a braced body.
    if toks.get(b).map(|t| t.kind.is_punct('-')).unwrap_or(false)
        && toks
            .get(b + 1)
            .map(|t| t.kind.is_punct('>'))
            .unwrap_or(false)
    {
        while b < scope_end && !matches!(toks[b].kind, TokenKind::Open('{')) {
            b += 1;
        }
    }
    match toks.get(b).map(|t| &t.kind) {
        Some(TokenKind::Open('{')) => {
            let close = file.partner[b];
            if close == usize::MAX {
                None
            } else {
                Some((b + 1, close.min(scope_end)))
            }
        }
        Some(_) => {
            // Expression body: runs to `,`/`;`/`)` at the body's depth.
            let bd = depth[b];
            let mut e = b;
            while e < scope_end {
                if depth[e] < bd {
                    break;
                }
                if depth[e] == bd
                    && matches!(toks[e].kind, TokenKind::Punct(',') | TokenKind::Punct(';'))
                {
                    break;
                }
                e += 1;
            }
            Some((b, e))
        }
        None => None,
    }
}

/// DFS cycle search over the acquired-while-held graph.
fn find_cycle(edges: &BTreeSet<(String, String)>) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges {
        adj.entry(a).or_default().push(b);
    }
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for start in adj.keys().copied().collect::<Vec<_>>() {
        if done.contains(start) {
            continue;
        }
        let mut path: Vec<&str> = Vec::new();
        if let Some(cycle) = dfs(start, &adj, &mut path, &mut done) {
            return Some(cycle.into_iter().map(String::from).collect());
        }
    }
    None
}

fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    path: &mut Vec<&'a str>,
    done: &mut BTreeSet<&'a str>,
) -> Option<Vec<&'a str>> {
    if let Some(pos) = path.iter().position(|&n| n == node) {
        let mut cycle: Vec<&str> = path[pos..].to_vec();
        cycle.push(node);
        return Some(cycle);
    }
    if done.contains(node) {
        return None;
    }
    path.push(node);
    if let Some(nexts) = adj.get(node) {
        for next in nexts {
            if let Some(c) = dfs(next, adj, path, done) {
                return Some(c);
            }
        }
    }
    path.pop();
    done.insert(node);
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        check(&[SourceFile::parse("crates/agg/src/x.rs", src)])
    }

    const REGISTERED: &str = "\
struct S {
    // audit:lock(agg.core, 10)
    core: Mutex<u8>,
    // audit:lock(agg.store, 30)
    store: Mutex<u8>,
}
";

    #[test]
    fn in_order_acquisition_is_clean() {
        let src = format!(
            "{REGISTERED}
impl S {{
    fn ok(&self) {{
        let c = self.core.lock();
        let s = self.store.lock();
        use_both(c, s);
    }}
    fn sequential(&self) {{
        {{ let s = self.store.lock(); use_it(s); }}
        let c = self.core.lock();
    }}
}}
"
        );
        assert!(run(&src).is_empty());
    }

    #[test]
    fn inversion_is_flagged() {
        let src = format!(
            "{REGISTERED}
impl S {{
    fn bad(&self) {{
        let s = self.store.lock();
        let c = self.core.lock();
    }}
}}
"
        );
        let found = run(&src);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("inverts"));
        assert!(found[0].message.contains("agg.core"));
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = format!(
            "{REGISTERED}
impl S {{
    fn ok(&self) {{
        let s = self.store.lock();
        drop(s);
        let c = self.core.lock();
    }}
}}
"
        );
        assert!(run(&src).is_empty());
    }

    #[test]
    fn match_scrutinee_guard_spans_the_arms() {
        let src = format!(
            "{REGISTERED}
impl S {{
    fn bad(&self) {{
        match self.store.lock().state() {{
            0 => {{ let c = self.core.lock(); }}
            _ => {{}}
        }}
    }}
}}
"
        );
        let found = run(&src);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("inverts"));
    }

    #[test]
    fn closures_are_separate_scopes() {
        let src = format!(
            "{REGISTERED}
impl S {{
    fn ok(&self) {{
        let s = self.store.lock();
        let later = move || {{ let c = self.core.lock(); use_it(c); }};
        stash(later);
    }}
}}
"
        );
        assert!(run(&src).is_empty());
    }

    #[test]
    fn unregistered_field_is_flagged() {
        let found = run("struct S { core: Mutex<u8>, data: Vec<u8> }");
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("no `// audit:lock"));
    }

    #[test]
    fn self_deadlock_and_indexed_receivers() {
        let src = "\
struct S {
    // audit:lock(agg.shard, 20)
    shards: Vec<Mutex<u8>>,
}
impl S {
    fn bad(&self, a: usize, b: usize) {
        let x = self.shards[a].lock();
        let y = self.shards[b].lock();
    }
}
";
        let found = run(src);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("self-deadlock"));
    }

    #[test]
    fn conflicting_registration_is_flagged() {
        let a = SourceFile::parse(
            "crates/agg/src/a.rs",
            "struct A { core: Mutex<u8> } // audit:lock(agg.core, 10)\n",
        );
        let src_b = "struct B {\n    // audit:lock(agg.core, 40)\n    core: Mutex<u8>,\n}";
        let b = SourceFile::parse("crates/agg/src/b.rs", src_b);
        let found = check(&[a, b]);
        assert!(found.iter().any(|f| f.message.contains("rank 40")));
    }
}
