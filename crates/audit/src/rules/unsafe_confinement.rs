//! Rule `unsafe-confinement`: `unsafe` code outside the audited kernel module.
//!
//! The workspace's memory-safety story is that exactly one module — the SIMD
//! kernel module in `crowd-linalg` — contains `unsafe` blocks, each with a
//! written safety argument, and everything else is `deny(unsafe_code)`. A new
//! `unsafe` block (or a fresh `#[allow(unsafe_code)]` escape hatch) anywhere
//! else silently widens that surface, so both are findings unless the file is
//! on the [`crate::config::UNSAFE_ALLOWED`] list or the line is waived with
//! `// audit:allow(unsafe-confinement, reason)`.

use crate::config::{path_in, UNSAFE_ALLOWED};
use crate::report::Finding;
use crate::source::SourceFile;

pub const RULE: &str = "unsafe-confinement";

pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if path_in(&file.rel_path, UNSAFE_ALLOWED) {
            continue;
        }
        for (i, t) in file.tokens.iter().enumerate() {
            let Some(id) = t.kind.ident() else { continue };
            // `unsafe` covers blocks, fns, impls, and traits; `unsafe_code`
            // only matters inside an `allow(...)` that re-enables it (the
            // lint name also appears in `deny`/`forbid`, which are the
            // posture we want).
            let hit = match id {
                "unsafe" => true,
                "unsafe_code" => {
                    let mut k = i;
                    let mut in_allow = false;
                    while k > 0 {
                        k -= 1;
                        match file.tokens[k].kind.ident() {
                            Some("allow") => {
                                in_allow = true;
                                break;
                            }
                            Some("deny") | Some("forbid") | Some("warn") => break,
                            _ => {}
                        }
                        if i - k > 4 {
                            break;
                        }
                    }
                    in_allow
                }
                _ => false,
            };
            if !hit || file.in_test(i) {
                continue;
            }
            let line = file.line_of(i);
            if file.allowed(RULE, line) {
                continue;
            }
            findings.push(Finding::new(
                RULE,
                &file.rel_path,
                line,
                format!(
                    "`{id}` outside the audited SIMD kernel module — keep unsafe \
                     confined to crates/linalg/src/kernels/simd.rs, or annotate \
                     `// audit:allow(unsafe-confinement, reason)`"
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unsafe_blocks_fns_and_allow_attrs() {
        let src = "\
#![allow(unsafe_code)]
fn f() { unsafe { core::ptr::read(p) } }
unsafe fn g() {}
";
        let file = SourceFile::parse("crates/agg/src/x.rs", src);
        let found = check(&[file]);
        assert_eq!(found.len(), 3); // allow(unsafe_code) + 2 `unsafe` tokens
        assert_eq!(found[0].line, 1);
        assert_eq!(found[1].line, 2);
    }

    #[test]
    fn deny_and_forbid_attrs_are_fine() {
        let file = SourceFile::parse(
            "crates/agg/src/lib.rs",
            "#![deny(unsafe_code)]\n#![forbid(unsafe_code)]\nfn f() {}\n",
        );
        assert!(check(&[file]).is_empty());
    }

    #[test]
    fn allowed_paths_tests_and_annotations_are_exempt() {
        let kernel = SourceFile::parse(
            "crates/linalg/src/kernels/simd.rs",
            "#![allow(unsafe_code)]\nfn f() { unsafe { x() } }",
        );
        assert!(check(&[kernel]).is_empty());
        let test_only = SourceFile::parse(
            "crates/agg/src/x.rs",
            "#[cfg(test)]\nmod t { fn f() { unsafe { x() } } }",
        );
        assert!(check(&[test_only]).is_empty());
        let annotated = SourceFile::parse(
            "crates/agg/src/x.rs",
            "fn f() {\n    // audit:allow(unsafe-confinement, vetted FFI shim)\n    unsafe { x() }\n}",
        );
        assert!(check(&[annotated]).is_empty());
    }
}
