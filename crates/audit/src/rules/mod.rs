//! The rule catalogue. Each rule is a function from the source model to a
//! list of findings; `run_all` is the single entry point the CLI and tests
//! share.

pub mod lock_order;
pub mod panic_freedom;
pub mod unordered_iter;
pub mod unsafe_confinement;
pub mod wallclock;
pub mod wire_hygiene;

use crate::lexer::{Token, TokenKind};
use crate::report::Finding;
use crate::source::SourceFile;
use std::path::Path;

/// Runs every rule over the scanned workspace. `root` is needed by the
/// wire-hygiene rule to locate `wire.lock`.
pub fn run_all(files: &[SourceFile], root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(unordered_iter::check(files));
    findings.extend(unsafe_confinement::check(files));
    findings.extend(wallclock::check(files));
    findings.extend(panic_freedom::check(files));
    findings.extend(lock_order::check(files));
    findings.extend(wire_hygiene::check(files, root));
    findings.sort();
    findings
}

/// Brace/paren/bracket nesting depth at each token. An `Open` token sits at
/// the depth *outside* its group; its contents are one deeper.
pub(crate) fn depths(tokens: &[Token]) -> Vec<u32> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut d: u32 = 0;
    for t in tokens {
        match t.kind {
            TokenKind::Open(_) => {
                out.push(d);
                d += 1;
            }
            TokenKind::Close(_) => {
                d = d.saturating_sub(1);
                out.push(d);
            }
            _ => out.push(d),
        }
    }
    out
}

/// The half-open token range of the statement containing token `i`: from just
/// after the previous `;`/`{`/`}` at the same depth to and including the next
/// `;` at the same depth (or the token before depth drops below `i`'s).
pub(crate) fn statement_bounds(tokens: &[Token], depth: &[u32], i: usize) -> (usize, usize) {
    let d = depth[i];
    let mut start = i;
    while start > 0 {
        let p = start - 1;
        let boundary = depth[p] < d
            || (depth[p] == d
                && matches!(
                    tokens[p].kind,
                    TokenKind::Punct(';') | TokenKind::Open('{') | TokenKind::Close('}')
                ));
        if boundary {
            break;
        }
        start = p;
    }
    let mut end = i;
    while end < tokens.len() {
        if depth[end] < d {
            break;
        }
        if depth[end] == d && tokens[end].kind.is_punct(';') {
            end += 1;
            break;
        }
        end += 1;
    }
    (start, end)
}

/// The `let [mut] <name> =` binding at the start of a statement range, if any.
pub(crate) fn let_binding(tokens: &[Token], start: usize, end: usize) -> Option<String> {
    if tokens.get(start)?.kind.ident()? != "let" {
        return None;
    }
    let mut k = start + 1;
    if tokens.get(k)?.kind.ident() == Some("mut") {
        k += 1;
    }
    let name = tokens.get(k)?.kind.ident()?.to_string();
    // Skip an optional type ascription to require this is a plain binding,
    // not a destructuring pattern.
    match &tokens.get(k + 1)?.kind {
        TokenKind::Punct('=') | TokenKind::Punct(':') => {
            let _ = end;
            Some(name)
        }
        _ => None,
    }
}
