//! Rule `wire-hygiene`: the message tag table matches the checked-in
//! `wire.lock`, and any change to it bumps `PROTOCOL_VERSION`.
//!
//! An old client decodes frames by tag; silently reusing or renumbering a tag
//! turns a version skew into garbage decodes instead of a clean
//! `ErrorCode::UnsupportedVersion` rejection. The rule extracts the live tag
//! table from `Message::tag` and `PROTOCOL_VERSION` from `crowd-proto`,
//! checks tag uniqueness, and diffs against the `wire.lock` manifest at the
//! workspace root. Changing the message set without bumping the version is a
//! finding; after a legitimate change + bump, refresh the manifest with
//! `cargo run -p crowd-audit -- --update-wire-lock`.

use crate::config::{WIRE_MESSAGE_FILE, WIRE_VERSION_FILE};
use crate::lexer::TokenKind;
use crate::report::Finding;
use crate::source::SourceFile;
use std::path::Path;

pub const RULE: &str = "wire-hygiene";

/// File name of the manifest at the workspace root.
pub const WIRE_LOCK_FILE: &str = "wire.lock";

/// The live wire surface: protocol version plus the (tag, variant) table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSurface {
    pub version: u64,
    /// Sorted by tag.
    pub tags: Vec<(u64, String)>,
}

impl WireSurface {
    /// Renders the manifest format: a version line, then one `tag variant`
    /// line per message, sorted by tag.
    pub fn render(&self) -> String {
        let mut out = String::from("# Wire surface manifest — regenerate with:\n");
        out.push_str("#   cargo run -p crowd-audit -- --update-wire-lock\n");
        out.push_str(&format!("version {}\n", self.version));
        for (tag, name) in &self.tags {
            out.push_str(&format!("{tag} {name}\n"));
        }
        out
    }

    /// Parses the manifest format. Returns `None` on any malformed line.
    pub fn parse(text: &str) -> Option<WireSurface> {
        let mut version = None;
        let mut tags = Vec::new();
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(v) = line.strip_prefix("version ") {
                version = Some(v.trim().parse::<u64>().ok()?);
            } else {
                let (tag, name) = line.split_once(' ')?;
                tags.push((tag.trim().parse::<u64>().ok()?, name.trim().to_string()));
            }
        }
        tags.sort();
        Some(WireSurface {
            version: version?,
            tags,
        })
    }
}

/// Extracts the live wire surface from the scanned workspace. `None` if the
/// proto files are missing (e.g. a fixture tree without a wire surface).
pub fn extract(files: &[SourceFile]) -> Option<WireSurface> {
    let message_file = files.iter().find(|f| f.rel_path == WIRE_MESSAGE_FILE)?;
    let version_file = files.iter().find(|f| f.rel_path == WIRE_VERSION_FILE)?;
    let version = protocol_version(version_file)?;
    let tags = tag_table(message_file)?;
    Some(WireSurface { version, tags })
}

/// `pub const PROTOCOL_VERSION: <ty> = <number>;`
fn protocol_version(file: &SourceFile) -> Option<u64> {
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind.ident() == Some("PROTOCOL_VERSION") {
            let mut k = i + 1;
            while k < toks.len() && !toks[k].kind.is_punct('=') {
                if toks[k].kind.is_punct(';') {
                    return None;
                }
                k += 1;
            }
            if let Some(TokenKind::Literal(lit)) = toks.get(k + 1).map(|t| &t.kind) {
                return parse_number(lit);
            }
        }
    }
    None
}

/// The match arms of `fn tag`: `Message :: Variant ( … ) => <number>`.
fn tag_table(file: &SourceFile) -> Option<Vec<(u64, String)>> {
    let toks = &file.tokens;
    let fn_idx = (0..toks.len()).find(|&i| {
        toks[i].kind.ident() == Some("fn")
            && toks.get(i + 1).and_then(|t| t.kind.ident()) == Some("tag")
    })?;
    // Body of fn tag.
    let open = (fn_idx..toks.len()).find(|&i| matches!(toks[i].kind, TokenKind::Open('{')))?;
    let close = file.partner[open];
    if close == usize::MAX {
        return None;
    }
    let mut tags = Vec::new();
    let mut i = open + 1;
    while i + 2 < close {
        // `Variant ( … ) => NUM` or `Variant { … } => NUM`, where Variant is
        // the ident after `::`.
        if matches!(toks[i].kind, TokenKind::Ident(_))
            && i >= 2
            && toks[i - 1].kind.is_punct(':')
            && toks[i - 2].kind.is_punct(':')
        {
            let name = toks[i].kind.ident()?.to_string();
            let mut k = i + 1;
            if let TokenKind::Open(c) = toks[k].kind {
                if c == '(' || c == '{' {
                    let p = file.partner[k];
                    if p == usize::MAX {
                        return None;
                    }
                    k = p + 1;
                }
            }
            if toks.get(k).map(|t| t.kind.is_punct('=')).unwrap_or(false)
                && toks
                    .get(k + 1)
                    .map(|t| t.kind.is_punct('>'))
                    .unwrap_or(false)
            {
                if let Some(TokenKind::Literal(lit)) = toks.get(k + 2).map(|t| &t.kind) {
                    if let Some(n) = parse_number(lit) {
                        tags.push((n, name));
                    }
                }
            }
            i = k;
        } else {
            i += 1;
        }
    }
    tags.sort();
    Some(tags)
}

fn parse_number(lit: &str) -> Option<u64> {
    // Strip type suffixes (`3u16`) and underscores.
    let digits: String = lit
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '_')
        .filter(|c| *c != '_')
        .collect();
    if digits.is_empty() {
        None
    } else {
        digits.parse().ok()
    }
}

pub fn check(files: &[SourceFile], root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(live) = extract(files) else {
        // No proto crate in this tree (fixture workspaces) — nothing to check.
        return findings;
    };

    // Tag uniqueness.
    for w in live.tags.windows(2) {
        if w[0].0 == w[1].0 {
            findings.push(Finding::new(
                RULE,
                WIRE_MESSAGE_FILE,
                0,
                format!(
                    "wire tag {} assigned to both `{}` and `{}`",
                    w[0].0, w[0].1, w[1].1
                ),
            ));
        }
    }

    let lock_path = root.join(WIRE_LOCK_FILE);
    let lock_text = match std::fs::read_to_string(&lock_path) {
        Ok(t) => t,
        Err(_) => {
            findings.push(Finding::new(
                RULE,
                WIRE_LOCK_FILE,
                0,
                "wire.lock manifest is missing — generate it with \
                 `cargo run -p crowd-audit -- --update-wire-lock`"
                    .to_string(),
            ));
            return findings;
        }
    };
    let Some(locked) = WireSurface::parse(&lock_text) else {
        findings.push(Finding::new(
            RULE,
            WIRE_LOCK_FILE,
            0,
            "wire.lock manifest is malformed — regenerate it with \
             `cargo run -p crowd-audit -- --update-wire-lock`"
                .to_string(),
        ));
        return findings;
    };

    if live.tags != locked.tags && live.version == locked.version {
        findings.push(Finding::new(
            RULE,
            WIRE_MESSAGE_FILE,
            0,
            format!(
                "message set changed (wire.lock records {} messages, live table has {}) \
                 without a PROTOCOL_VERSION bump — old peers would mis-decode; bump the \
                 version, then refresh wire.lock",
                locked.tags.len(),
                live.tags.len()
            ),
        ));
    } else if live.version != locked.version {
        findings.push(Finding::new(
            RULE,
            WIRE_LOCK_FILE,
            0,
            format!(
                "wire.lock is stale (records version {}, live is {}) — refresh it with \
                 `cargo run -p crowd-audit -- --update-wire-lock`",
                locked.version, live.version
            ),
        ));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proto_files(version: &str, arms: &str) -> Vec<SourceFile> {
        vec![
            SourceFile::parse(
                WIRE_VERSION_FILE,
                &format!("pub const PROTOCOL_VERSION: u16 = {version};"),
            ),
            SourceFile::parse(
                WIRE_MESSAGE_FILE,
                &format!(
                    "impl Message {{ pub fn tag(&self) -> u8 {{ match self {{ {arms} }} }} }}"
                ),
            ),
        ]
    }

    #[test]
    fn extracts_version_and_tags() {
        let files = proto_files("3", "Message::A(_) => 1, Message::B(_) => 2,");
        let surface = extract(&files).unwrap();
        assert_eq!(surface.version, 3);
        assert_eq!(surface.tags, vec![(1, "A".into()), (2, "B".into())]);
    }

    #[test]
    fn manifest_round_trips() {
        let s = WireSurface {
            version: 3,
            tags: vec![(1, "A".into()), (2, "B".into())],
        };
        assert_eq!(WireSurface::parse(&s.render()), Some(s));
        assert_eq!(WireSurface::parse("version x\n"), None);
        assert_eq!(WireSurface::parse("1 A\n"), None); // no version line
    }

    #[test]
    fn duplicate_tags_are_flagged() {
        let files = proto_files("3", "Message::A(_) => 1, Message::B(_) => 1,");
        let dir = std::env::temp_dir().join(format!("audit-wire-dup-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(WIRE_LOCK_FILE), "version 3\n1 A\n1 B\n").unwrap();
        let found = check(&files, &dir);
        assert!(found.iter().any(|f| f.message.contains("assigned to both")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn change_without_bump_and_stale_lock() {
        let dir = std::env::temp_dir().join(format!("audit-wire-chk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(WIRE_LOCK_FILE), "version 3\n1 A\n").unwrap();

        // Same version, extra message: the failure the rule exists for.
        let grown = proto_files("3", "Message::A(_) => 1, Message::B(_) => 2,");
        let found = check(&grown, &dir);
        assert!(found
            .iter()
            .any(|f| f.message.contains("without a PROTOCOL_VERSION bump")));

        // Bumped version: the lock is merely stale.
        let bumped = proto_files("4", "Message::A(_) => 1, Message::B(_) => 2,");
        let found = check(&bumped, &dir);
        assert!(found.iter().any(|f| f.message.contains("stale")));

        // In sync: clean.
        std::fs::write(dir.join(WIRE_LOCK_FILE), "version 4\n1 A\n2 B\n").unwrap();
        assert!(check(&bumped, &dir).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
