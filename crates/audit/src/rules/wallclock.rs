//! Rule `wallclock`: wall-clock reads in deterministic code.
//!
//! The simulation, aggregation, and replay paths must be functions of their
//! inputs alone — a `SystemTime::now()` in replay code or an `Instant`-based
//! decision in a merge path makes chaos-vs-reference comparisons flake.
//! Wall-clock access is confined to the network client's retry/backoff
//! timing and the benchmark harness ([`crate::config::WALLCLOCK_ALLOWED`]);
//! everywhere else `Instant::now` and any `SystemTime` use are findings
//! unless waived with `// audit:allow(wallclock, reason)`.

use crate::config::{path_in, WALLCLOCK_ALLOWED};
use crate::report::Finding;
use crate::source::SourceFile;

pub const RULE: &str = "wallclock";

pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if path_in(&file.rel_path, WALLCLOCK_ALLOWED) {
            continue;
        }
        for (i, t) in file.tokens.iter().enumerate() {
            let Some(id) = t.kind.ident() else { continue };
            let hit = match id {
                // `Instant` is only a problem when sampled: `Instant::now()`.
                "Instant" => {
                    file.tokens
                        .get(i + 1)
                        .map(|t| t.kind.is_punct(':'))
                        .unwrap_or(false)
                        && file
                            .tokens
                            .get(i + 2)
                            .map(|t| t.kind.is_punct(':'))
                            .unwrap_or(false)
                        && file.tokens.get(i + 3).and_then(|t| t.kind.ident()) == Some("now")
                }
                // Any `SystemTime` use is banned outright — even comparing
                // stored ones injects wall-clock ordering.
                "SystemTime" => true,
                _ => false,
            };
            if !hit || file.in_test(i) {
                continue;
            }
            let line = file.line_of(i);
            if file.allowed(RULE, line) {
                continue;
            }
            findings.push(Finding::new(
                RULE,
                &file.rel_path,
                line,
                format!(
                    "wall-clock read `{id}` outside client retry timing and bench code — \
                     thread a logical clock through, or annotate \
                     `// audit:allow(wallclock, reason)`"
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_instant_now_and_systemtime() {
        let src = "\
fn f() { let t = Instant::now(); }
fn g() -> SystemTime { SystemTime::now() }
fn h(d: Instant) {}
";
        let file = SourceFile::parse("crates/sim/src/x.rs", src);
        let found = check(&[file]);
        assert_eq!(found.len(), 3); // Instant::now + 2 SystemTime mentions
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn allowed_paths_tests_and_annotations_are_exempt() {
        let clock = SourceFile::parse(
            "crates/telemetry/src/clock.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert!(check(&[clock]).is_empty());
        let bench = SourceFile::parse(
            "crates/bench/src/bin/run.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert!(check(&[bench]).is_empty());
        let test_only = SourceFile::parse(
            "crates/sim/src/x.rs",
            "#[cfg(test)]\nmod t { fn f() { let t = Instant::now(); } }",
        );
        assert!(check(&[test_only]).is_empty());
        let annotated = SourceFile::parse(
            "crates/sim/src/x.rs",
            "fn f() {\n    // audit:allow(wallclock, trace timestamps are display-only)\n    let t = Instant::now();\n}",
        );
        assert!(check(&[annotated]).is_empty());
    }

    #[test]
    fn instant_as_plain_type_is_fine() {
        let file = SourceFile::parse(
            "crates/sim/src/x.rs",
            "fn f(deadline: Instant) -> Instant { deadline }",
        );
        assert!(check(&[file]).is_empty());
    }
}
