//! The source model: lexed files plus the annotation and test-region
//! structure every rule consumes.

use crate::lexer::{self, Comment, Token, TokenKind};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// An `// audit:allow(rule, reason)` annotation.
#[derive(Debug, Clone)]
pub struct AllowAnnotation {
    /// Line the comment sits on. The allowance covers this line and the next
    /// (annotation-above-the-statement style).
    pub line: u32,
    pub rule: String,
    pub reason: String,
}

/// An `// audit:lock(name, rank)` annotation registering a lock field.
#[derive(Debug, Clone)]
pub struct LockAnnotation {
    pub line: u32,
    /// Human-readable lock name, e.g. `agg.core`.
    pub name: String,
    /// Position in the global acquisition order; lower ranks are taken first.
    pub rank: u32,
}

/// One lexed workspace file with its audit-relevant structure extracted.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// The `<name>` from `crates/<name>/src/…`.
    pub crate_name: String,
    pub tokens: Vec<Token>,
    /// `partner[i]` is the index of the delimiter matching token `i`.
    pub partner: Vec<usize>,
    pub comments: Vec<Comment>,
    pub allows: Vec<AllowAnnotation>,
    pub locks: Vec<LockAnnotation>,
    /// Half-open token ranges covered by `#[cfg(test)]` items.
    pub test_ranges: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Parses source text into the model. `rel_path` must use `/` separators.
    pub fn parse(rel_path: &str, source: &str) -> SourceFile {
        let lexed = lexer::lex(source);
        let partner = lexer::match_delims(&lexed.tokens);
        let crate_name = crate_of(rel_path);
        let (allows, locks) = parse_annotations(&lexed.comments);
        let test_ranges = find_test_ranges(&lexed.tokens, &partner);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name,
            tokens: lexed.tokens,
            partner,
            comments: lexed.comments,
            allows,
            locks,
            test_ranges,
        }
    }

    /// Is token index `i` inside a `#[cfg(test)]` item?
    pub fn in_test(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| a <= i && i < b)
    }

    /// Does an `audit:allow(rule, …)` annotation cover `line`? Annotations
    /// cover their own line (trailing comment) and the line below (comment
    /// above the statement).
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }

    /// The line of token `i` (saturating for out-of-range).
    pub fn line_of(&self, i: usize) -> u32 {
        self.tokens.get(i).map(|t| t.line).unwrap_or(0)
    }

    /// Field-name → lock annotation, resolved by finding the `ident :` that
    /// starts on the annotation's line or the line below it.
    pub fn lock_fields(&self) -> BTreeMap<String, LockAnnotation> {
        let mut map = BTreeMap::new();
        for ann in &self.locks {
            // Find the first `Ident` on ann.line or ann.line + 1 that is
            // immediately followed by `:` — the struct field the annotation
            // documents.
            let mut k = 0usize;
            while k < self.tokens.len() {
                let t = &self.tokens[k];
                if (t.line == ann.line || t.line == ann.line + 1)
                    && matches!(t.kind, TokenKind::Ident(_))
                    && self
                        .tokens
                        .get(k + 1)
                        .map(|n| n.kind.is_punct(':'))
                        .unwrap_or(false)
                {
                    if let TokenKind::Ident(name) = &t.kind {
                        // Skip visibility-path idents like `pub(crate)` — a
                        // field name is never followed by `::`.
                        let double_colon = self
                            .tokens
                            .get(k + 2)
                            .map(|n| n.kind.is_punct(':'))
                            .unwrap_or(false);
                        if !double_colon {
                            map.insert(name.clone(), ann.clone());
                            break;
                        }
                    }
                }
                if t.line > ann.line + 1 {
                    break;
                }
                k += 1;
            }
        }
        map
    }
}

fn crate_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        _ => String::from("(root)"),
    }
}

fn parse_annotations(comments: &[Comment]) -> (Vec<AllowAnnotation>, Vec<LockAnnotation>) {
    let mut allows = Vec::new();
    let mut locks = Vec::new();
    for c in comments {
        let text = c.text.trim();
        if let Some(body) = annotation_body(text, "audit:allow") {
            if let Some((rule, reason)) = split_two(body) {
                allows.push(AllowAnnotation {
                    line: c.line,
                    rule,
                    reason,
                });
            }
        } else if let Some(body) = annotation_body(text, "audit:lock") {
            if let Some((name, rank)) = split_two(body) {
                if let Ok(rank) = rank.parse::<u32>() {
                    locks.push(LockAnnotation {
                        line: c.line,
                        name,
                        rank,
                    });
                }
            }
        }
    }
    (allows, locks)
}

/// Extracts `…` from `prefix(…)` anywhere in a comment.
fn annotation_body<'a>(text: &'a str, prefix: &str) -> Option<&'a str> {
    let at = text.find(prefix)?;
    let rest = &text[at + prefix.len()..];
    let rest = rest.strip_prefix('(')?;
    let close = rest.rfind(')')?;
    Some(&rest[..close])
}

/// Splits `a, b...` at the first comma, trimming both halves.
fn split_two(body: &str) -> Option<(String, String)> {
    let (a, b) = body.split_once(',')?;
    let (a, b) = (a.trim(), b.trim());
    if a.is_empty() || b.is_empty() {
        return None;
    }
    Some((a.to_string(), b.to_string()))
}

/// Finds token ranges of items annotated `#[cfg(test)]`: the attribute pattern
/// `# [ cfg ( test ) ]`, then the item it attaches to, through its closing
/// brace (or terminating `;` for declarations).
fn find_test_ranges(tokens: &[Token], partner: &[usize]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].kind.is_punct('#')
            && matches!(tokens[i + 1].kind, TokenKind::Open('['))
            && tokens[i + 2].kind.ident() == Some("cfg")
            && matches!(tokens[i + 3].kind, TokenKind::Open('('))
            && tokens[i + 4].kind.ident() == Some("test")
            && matches!(tokens[i + 5].kind, TokenKind::Close(')'))
            && matches!(tokens[i + 6].kind, TokenKind::Close(']'));
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes, then consume the item: everything up
        // to the first top-level `{…}` (inclusive) or `;`.
        let mut j = i + 7;
        while j + 1 < tokens.len()
            && tokens[j].kind.is_punct('#')
            && matches!(tokens[j + 1].kind, TokenKind::Open('['))
        {
            let close = partner[j + 1];
            if close == usize::MAX {
                break;
            }
            j = close + 1;
        }
        let mut end = j;
        while end < tokens.len() {
            match tokens[end].kind {
                TokenKind::Open('{') => {
                    let close = partner[end];
                    end = if close == usize::MAX {
                        tokens.len()
                    } else {
                        close + 1
                    };
                    break;
                }
                // Skip nested non-brace groups (generics bounds with parens,
                // where-clauses can't contain stray `;`).
                TokenKind::Open(_) => {
                    let close = partner[end];
                    end = if close == usize::MAX {
                        tokens.len()
                    } else {
                        close + 1
                    };
                }
                TokenKind::Punct(';') => {
                    end += 1;
                    break;
                }
                _ => end += 1,
            }
        }
        ranges.push((i, end));
        i = end.max(i + 1);
    }
    ranges
}

/// Scans `<root>/crates/*/src/**/*.rs` in deterministic (sorted path) order
/// and parses each file. Unreadable entries are reported as errors.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            crate_dirs.push(entry.path());
        }
    }
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut paths)?;
        }
    }
    paths.sort();

    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(SourceFile::parse(&rel, &text));
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotations_parse() {
        let src = "\
// audit:allow(unordered-iter, snapshot export sorts below)
let x = map.iter();
struct S {
    // audit:lock(agg.core, 10)
    core: Mutex<u8>,
}
";
        let f = SourceFile::parse("crates/agg/src/lib.rs", src);
        assert_eq!(f.crate_name, "agg");
        assert!(f.allowed("unordered-iter", 1));
        assert!(f.allowed("unordered-iter", 2));
        assert!(!f.allowed("unordered-iter", 3));
        assert!(!f.allowed("panic-freedom", 2));
        let fields = f.lock_fields();
        let ann = fields.get("core").expect("core field registered");
        assert_eq!(ann.name, "agg.core");
        assert_eq!(ann.rank, 10);
    }

    #[test]
    fn lock_annotation_trailing_style() {
        let src = "struct S { core: Mutex<u8>, // audit:lock(agg.core, 10)\n }";
        let f = SourceFile::parse("crates/agg/src/lib.rs", src);
        let fields = f.lock_fields();
        assert_eq!(fields.get("core").map(|a| a.rank), Some(10));
    }

    #[test]
    fn test_ranges_cover_mod_and_fn() {
        let src = "\
fn live() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn inner() { y.unwrap(); }
}
#[cfg(test)]
#[derive(Debug)]
struct Probe;
fn live_again() {}
";
        let f = SourceFile::parse("crates/core/src/lib.rs", src);
        let unwraps: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind.ident() == Some("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!f.in_test(unwraps[0]));
        assert!(f.in_test(unwraps[1]));
        // The struct after a second attribute is covered; the next fn is not.
        let probe = f
            .tokens
            .iter()
            .position(|t| t.kind.ident() == Some("Probe"))
            .unwrap();
        assert!(f.in_test(probe));
        let live_again = f
            .tokens
            .iter()
            .position(|t| t.kind.ident() == Some("live_again"))
            .unwrap();
        assert!(!f.in_test(live_again));
    }
}
