//! Event-driven server core for the Crowd-ML TCP deployment.
//!
//! The threaded [`crowd-net`] server dedicates one OS thread (and two blocking
//! syscalls' worth of latency) to every connected device; at thousands of
//! devices the scheduler, stack memory, and context switches dominate. This
//! crate replaces that model with a classic reactor:
//!
//! * a small **fixed pool of reactor threads**, each running a readiness loop
//!   over a [`polling::Poller`] (epoll on Linux, `poll(2)` fallback),
//! * **per-connection frame state machines** ([`frame::FrameReader`] /
//!   [`frame::FrameWriter`]) that resume partial reads and writes at any byte
//!   boundary, reusing `crowd-proto`'s pooled buffers,
//! * a **completion pump** per reactor that turns the aggregation runtime's
//!   blocking completion handles into poller wakeups, and
//! * **backpressure by read throttling**: when the ingest queue is full the
//!   connection's read interest is simply not re-armed, so the kernel's TCP
//!   flow control pushes back on the device instead of a Busy-reply storm.
//!
//! The crate is transport-generic: it serves any [`Service`] that maps a
//! decoded [`crowd_proto::Message`] to a [`Response`]. `crowd-net` wires it to
//! the aggregation runtime.

#![forbid(unsafe_code)]

pub mod frame;
pub mod reactor;

pub use frame::{FrameError, FrameReader, FrameWriter, ReadEvent, WriteEvent};
pub use reactor::{PendingReply, Reactor, ReactorConfig, ReactorStats, Response, RetryFn, Service};
