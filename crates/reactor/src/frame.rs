//! Resumable per-connection frame state machines.
//!
//! The blocking server reads a frame with two `read_exact` calls; a reactor
//! cannot block, so these state machines accept however many bytes the socket
//! has *right now* and pick up exactly where they left off on the next
//! readiness event. Frames are the wire format of `crowd-proto`:
//! `[len: u32 little-endian][payload: len bytes]`, with the payload decoded
//! into a [`Message`]. Payload storage comes from a shared [`BufPool`], so
//! steady-state traffic does not touch the allocator.
//!
//! Both machines are transport-agnostic (`Read` / `Write` traits) which is
//! what makes exhaustive fragmentation testing possible: the proptest suite
//! feeds them through adapters that split the stream at arbitrary byte
//! boundaries.

use crowd_proto::codec::{decode, encode_into};
use crowd_proto::pool::{BufPool, OwnedPooledBuf};
use crowd_proto::{Message, ProtoError};
use std::collections::VecDeque;
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::sync::Arc;

/// Errors that terminate a connection's frame stream.
#[derive(Debug)]
pub enum FrameError {
    /// Hard socket error (not `WouldBlock`/`Interrupted`, which are handled).
    Io(std::io::Error),
    /// The peer sent bytes that do not decode, or an oversized length prefix.
    Proto(ProtoError),
    /// The peer disconnected in the middle of a frame.
    TruncatedFrame {
        /// Bytes of the frame received before EOF (including the prefix).
        got: usize,
        /// Bytes the frame declared (including the prefix).
        expected: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Proto(e) => write!(f, "protocol error: {e}"),
            FrameError::TruncatedFrame { got, expected } => {
                write!(f, "peer closed mid-frame after {got} of {expected} bytes")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<ProtoError> for FrameError {
    fn from(e: ProtoError) -> Self {
        FrameError::Proto(e)
    }
}

/// What a [`FrameReader::poll_read`] call produced.
#[derive(Debug)]
pub enum ReadEvent {
    /// One complete frame, decoded.
    Frame(Message),
    /// The socket has no more bytes right now; wait for readability.
    NeedMore,
    /// Clean EOF at a frame boundary.
    Closed,
}

enum ReadState {
    /// Accumulating the 4-byte length prefix.
    Len { buf: [u8; 4], filled: usize },
    /// Accumulating the payload.
    Payload { buf: OwnedPooledBuf, filled: usize },
}

/// Incremental reader: turns arbitrarily fragmented socket bytes into frames.
pub struct FrameReader {
    pool: Arc<BufPool>,
    max_frame: usize,
    state: ReadState,
}

impl fmt::Debug for FrameReader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrameReader")
            .field("max_frame", &self.max_frame)
            .field("mid_frame", &self.mid_frame())
            .finish()
    }
}

impl FrameReader {
    /// Creates a reader drawing payload buffers from `pool` and rejecting
    /// frames larger than `max_frame` bytes.
    pub fn new(pool: Arc<BufPool>, max_frame: usize) -> Self {
        FrameReader {
            pool,
            max_frame,
            state: ReadState::Len {
                buf: [0; 4],
                filled: 0,
            },
        }
    }

    /// Whether any bytes of an unfinished frame have been received — i.e.
    /// whether an EOF now would be a protocol violation.
    pub fn mid_frame(&self) -> bool {
        match &self.state {
            ReadState::Len { filled, .. } => *filled > 0,
            ReadState::Payload { .. } => true,
        }
    }

    fn reset(&mut self) {
        self.state = ReadState::Len {
            buf: [0; 4],
            filled: 0,
        };
    }

    /// Reads as much as the socket will give without blocking. Returns after
    /// the **first** complete frame (call again for pipelined frames), on
    /// `WouldBlock`, or at EOF.
    pub fn poll_read<R: Read>(&mut self, stream: &mut R) -> Result<ReadEvent, FrameError> {
        loop {
            match &mut self.state {
                ReadState::Len { buf, filled } => {
                    debug_assert!(*filled < 4);
                    match stream.read(&mut buf[*filled..]) {
                        Ok(0) => {
                            return if *filled == 0 {
                                Ok(ReadEvent::Closed)
                            } else {
                                Err(FrameError::TruncatedFrame {
                                    got: *filled,
                                    expected: 4,
                                })
                            };
                        }
                        Ok(n) => {
                            *filled += n;
                            if *filled == 4 {
                                let len = u32::from_le_bytes(*buf) as usize;
                                if len > self.max_frame {
                                    return Err(FrameError::Proto(ProtoError::FrameTooLarge {
                                        declared: len,
                                        max: self.max_frame,
                                    }));
                                }
                                self.state = ReadState::Payload {
                                    buf: self.pool.take_owned(len),
                                    filled: 0,
                                };
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            return Ok(ReadEvent::NeedMore)
                        }
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(e) => return Err(FrameError::Io(e)),
                    }
                }
                ReadState::Payload { buf, filled } => {
                    if *filled == buf.len() {
                        let message = decode(buf)?;
                        self.reset();
                        return Ok(ReadEvent::Frame(message));
                    }
                    match stream.read(&mut buf[*filled..]) {
                        Ok(0) => {
                            return Err(FrameError::TruncatedFrame {
                                got: 4 + *filled,
                                expected: 4 + buf.len(),
                            })
                        }
                        Ok(n) => *filled += n,
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            return Ok(ReadEvent::NeedMore)
                        }
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(e) => return Err(FrameError::Io(e)),
                    }
                }
            }
        }
    }
}

/// What a [`FrameWriter::poll_write`] call produced.
#[derive(Debug, PartialEq, Eq)]
pub enum WriteEvent {
    /// Everything queued has hit the socket.
    Flushed,
    /// The socket would block; wait for writability.
    NeedMore,
}

/// Incremental writer: queues encoded frames and drains them as the socket
/// accepts bytes.
pub struct FrameWriter {
    pool: Arc<BufPool>,
    queue: VecDeque<OwnedPooledBuf>,
    /// Bytes of `queue.front()` already written.
    offset: usize,
}

impl fmt::Debug for FrameWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrameWriter")
            .field("queued_frames", &self.queue.len())
            .field("offset", &self.offset)
            .finish()
    }
}

impl FrameWriter {
    /// Creates a writer drawing encode buffers from `pool`.
    pub fn new(pool: Arc<BufPool>) -> Self {
        FrameWriter {
            pool,
            queue: VecDeque::new(),
            offset: 0,
        }
    }

    /// Encodes `message` (with its length prefix) and appends it to the
    /// outbound queue. Call [`FrameWriter::poll_write`] to drain.
    pub fn enqueue(&mut self, message: &Message) {
        let mut buf = self.pool.take_empty_owned();
        buf.extend_from_slice(&[0u8; 4]);
        encode_into(message, &mut *buf);
        let len = (buf.len() - 4) as u32;
        buf[..4].copy_from_slice(&len.to_le_bytes());
        self.queue.push_back(buf);
    }

    /// Whether nothing is queued (all replies flushed).
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of queued (fully or partially unwritten) frames.
    pub fn queued_frames(&self) -> usize {
        self.queue.len()
    }

    /// Writes as much as the socket will take without blocking.
    pub fn poll_write<W: Write>(&mut self, stream: &mut W) -> Result<WriteEvent, FrameError> {
        while let Some(front) = self.queue.front() {
            while self.offset < front.len() {
                match stream.write(&front[self.offset..]) {
                    Ok(0) => {
                        return Err(FrameError::Io(std::io::Error::new(
                            ErrorKind::WriteZero,
                            "socket accepted zero bytes",
                        )))
                    }
                    Ok(n) => self.offset += n,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(WriteEvent::NeedMore),
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => return Err(FrameError::Io(e)),
                }
            }
            self.queue.pop_front();
            self.offset = 0;
        }
        Ok(WriteEvent::Flushed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_proto::auth::AuthToken;
    use crowd_proto::frame::DEFAULT_MAX_FRAME;
    use crowd_proto::message::{CheckinAck, CheckoutRequest, CheckoutResponse};
    use proptest::prelude::*;

    fn pool() -> Arc<BufPool> {
        Arc::new(BufPool::default())
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::CheckoutRequest(CheckoutRequest {
                version: 3,
                device_id: 42,
                token: AuthToken::derive(42, 7),
            }),
            Message::CheckoutResponse(CheckoutResponse {
                iteration: 10,
                params: vec![0.5; 257],
                stopped: false,
                round: None,
            }),
            Message::CheckinAck(CheckinAck {
                accepted: true,
                iteration: 11,
                stopped: false,
                deduped: false,
            }),
        ]
    }

    fn encode_frames(messages: &[Message]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for m in messages {
            crowd_proto::frame::write_message(&mut bytes, m).unwrap();
        }
        bytes
    }

    /// A reader that serves a byte stream in caller-chosen chunk sizes, with
    /// a `WouldBlock` between chunks — the worst-case fragmentation a
    /// nonblocking socket can produce.
    struct Fragmented {
        bytes: Vec<u8>,
        pos: usize,
        chunks: Vec<usize>,
        chunk_idx: usize,
        ready: bool,
    }

    impl Fragmented {
        fn new(bytes: Vec<u8>, chunks: Vec<usize>) -> Self {
            Fragmented {
                bytes,
                pos: 0,
                chunks,
                chunk_idx: 0,
                ready: true,
            }
        }

        fn exhausted(&self) -> bool {
            self.pos >= self.bytes.len()
        }
    }

    impl Read for Fragmented {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(std::io::Error::new(ErrorKind::WouldBlock, "not ready"));
            }
            if self.pos >= self.bytes.len() {
                return Ok(0);
            }
            let chunk = self
                .chunks
                .get(self.chunk_idx)
                .copied()
                .unwrap_or(usize::MAX)
                .max(1);
            self.chunk_idx += 1;
            self.ready = false;
            let n = chunk.min(buf.len()).min(self.bytes.len() - self.pos);
            buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn read_all(reader: &mut FrameReader, stream: &mut Fragmented) -> Vec<Message> {
        let mut out = Vec::new();
        loop {
            match reader.poll_read(stream).unwrap() {
                ReadEvent::Frame(m) => out.push(m),
                ReadEvent::NeedMore => {
                    if stream.exhausted() && !reader.mid_frame() {
                        // a real reactor would wait for readability here
                    }
                    continue;
                }
                ReadEvent::Closed => return out,
            }
        }
    }

    #[test]
    fn single_byte_fragmentation_reassembles_every_boundary() {
        let messages = sample_messages();
        let bytes = encode_frames(&messages);
        let chunks = vec![1; bytes.len()];
        let mut stream = Fragmented::new(bytes, chunks);
        let mut reader = FrameReader::new(pool(), DEFAULT_MAX_FRAME);
        assert_eq!(read_all(&mut reader, &mut stream), messages);
    }

    #[test]
    fn split_at_every_boundary_of_one_frame() {
        // Exhaustive: for a single frame, split the stream into two reads at
        // every possible byte boundary.
        let messages = vec![sample_messages().remove(0)];
        let bytes = encode_frames(&messages);
        for split in 0..=bytes.len() {
            let mut stream = Fragmented::new(bytes.clone(), vec![split, usize::MAX]);
            let mut reader = FrameReader::new(pool(), DEFAULT_MAX_FRAME);
            assert_eq!(
                read_all(&mut reader, &mut stream),
                messages,
                "failed at split {split}"
            );
        }
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut stream = Fragmented::new(bytes, vec![usize::MAX]);
        let mut reader = FrameReader::new(pool(), 1024);
        loop {
            match reader.poll_read(&mut stream) {
                Ok(ReadEvent::NeedMore) => continue,
                Err(FrameError::Proto(ProtoError::FrameTooLarge { declared, max })) => {
                    assert_eq!(declared, u32::MAX as usize);
                    assert_eq!(max, 1024);
                    break;
                }
                other => panic!("expected FrameTooLarge, got {other:?}"),
            }
        }
    }

    #[test]
    fn mid_frame_disconnect_is_truncation_not_clean_close() {
        let bytes = encode_frames(&sample_messages()[..1]);
        for cut in 1..bytes.len() {
            let mut stream = Fragmented::new(bytes[..cut].to_vec(), vec![usize::MAX]);
            let mut reader = FrameReader::new(pool(), DEFAULT_MAX_FRAME);
            let err = loop {
                match reader.poll_read(&mut stream) {
                    Ok(ReadEvent::NeedMore) => continue,
                    Ok(other) => panic!("cut={cut}: unexpected {other:?}"),
                    Err(e) => break e,
                }
            };
            assert!(
                matches!(err, FrameError::TruncatedFrame { .. }),
                "cut={cut}: expected truncation, got {err:?}"
            );
        }
    }

    #[test]
    fn clean_close_between_frames_is_closed() {
        let bytes = encode_frames(&sample_messages());
        let mut stream = Fragmented::new(bytes, vec![usize::MAX]);
        let mut reader = FrameReader::new(pool(), DEFAULT_MAX_FRAME);
        let got = read_all(&mut reader, &mut stream);
        assert_eq!(got.len(), 3);
        assert!(!reader.mid_frame());
    }

    /// A writer that accepts a bounded number of bytes per call with a
    /// `WouldBlock` in between — forces partial-write resumption.
    struct Throttled {
        accepted: Vec<u8>,
        per_call: usize,
        ready: bool,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(std::io::Error::new(ErrorKind::WouldBlock, "full"));
            }
            self.ready = false;
            let n = self.per_call.min(buf.len()).max(1);
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn partial_writes_resume_and_produce_identical_bytes() {
        let messages = sample_messages();
        let expected = encode_frames(&messages);
        for per_call in [1usize, 3, 7, 64, 4096] {
            let mut writer = FrameWriter::new(pool());
            for m in &messages {
                writer.enqueue(m);
            }
            assert_eq!(writer.queued_frames(), messages.len());
            let mut sink = Throttled {
                accepted: Vec::new(),
                per_call,
                ready: true,
            };
            loop {
                match writer.poll_write(&mut sink).unwrap() {
                    WriteEvent::Flushed => break,
                    WriteEvent::NeedMore => continue,
                }
            }
            assert!(writer.is_idle());
            assert_eq!(sink.accepted, expected, "per_call={per_call}");
        }
    }

    #[test]
    fn writer_reader_round_trip_through_state_machines() {
        let messages = sample_messages();
        let mut writer = FrameWriter::new(pool());
        for m in &messages {
            writer.enqueue(m);
        }
        let mut sink = Throttled {
            accepted: Vec::new(),
            per_call: 5,
            ready: true,
        };
        while writer.poll_write(&mut sink).unwrap() != WriteEvent::Flushed {}
        let mut stream = Fragmented::new(sink.accepted, vec![9; 10_000]);
        let mut reader = FrameReader::new(pool(), DEFAULT_MAX_FRAME);
        assert_eq!(read_all(&mut reader, &mut stream), messages);
    }

    proptest! {
        /// Any fragmentation of any interleaving of frames reassembles to the
        /// original messages: chunk sizes are adversarial, including 1-byte
        /// reads and chunks spanning frame boundaries.
        #[test]
        fn random_fragmentation_reassembles(
            chunk_sizes in proptest::collection::vec(1usize..64, 1..200),
            reps in 1usize..4,
        ) {
            let mut messages = Vec::new();
            for _ in 0..reps {
                messages.extend(sample_messages());
            }
            let bytes = encode_frames(&messages);
            let mut stream = Fragmented::new(bytes, chunk_sizes);
            let mut reader = FrameReader::new(pool(), DEFAULT_MAX_FRAME);
            prop_assert_eq!(read_all(&mut reader, &mut stream), messages);
        }

        /// Any per-call write budget drains the queue to exactly the bytes a
        /// blocking writer would have produced.
        #[test]
        fn random_write_throttling_is_lossless(per_call in 1usize..128) {
            let messages = sample_messages();
            let expected = encode_frames(&messages);
            let mut writer = FrameWriter::new(pool());
            for m in &messages {
                writer.enqueue(m);
            }
            let mut sink = Throttled { accepted: Vec::new(), per_call, ready: true };
            loop {
                match writer.poll_write(&mut sink).unwrap() {
                    WriteEvent::Flushed => break,
                    WriteEvent::NeedMore => continue,
                }
            }
            prop_assert_eq!(sink.accepted, expected);
        }
    }
}
