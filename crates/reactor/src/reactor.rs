//! The reactor: a fixed pool of event-loop threads multiplexing every
//! accepted connection.
//!
//! ## Thread model
//!
//! `threads` reactor threads each own a [`polling::Poller`] and a slab of
//! connections. Thread 0 additionally owns the listening socket; accepted
//! connections are distributed round-robin across all threads through
//! channels paired with [`polling::Poller::notify`] wakeups. Each reactor
//! thread also gets one **completion pump** thread: blocking reply futures
//! (`Response::Pending` closures, e.g. an aggregation completion handle) are
//! executed there, and finished replies are posted back to the owning
//! reactor, so the event loop itself never blocks on anything but the poller.
//!
//! ## Connection protocol
//!
//! Connections are strictly request/reply: the reactor reads frames only
//! while no request from that connection is outstanding and its write queue
//! is empty. Pipelined frames are therefore handled one at a time, and a
//! client that never reads its replies is eventually stopped by TCP flow
//! control rather than unbounded buffering.
//!
//! ## Backpressure by read throttling
//!
//! When the service reports [`Response::Throttle`] (ingest queue full), the
//! connection is *parked*: its read interest is left disarmed — the poller's
//! oneshot semantics make that the default — and the retry closure is invoked
//! on subsequent loop iterations until it produces a reply. The device is
//! slowed by the kernel's receive window instead of a Busy-reply storm.
//!
//! ## Lock discipline
//!
//! The reactor registers **no locks** in the workspace rank table
//! (`// audit:lock` annotations, see `crates/audit`): every slab is owned
//! exclusively by its reactor thread, and all cross-thread traffic —
//! accepted sockets, finished replies, shutdown — flows through `mpsc`
//! channels and atomics. Service callbacks may take locks of their own
//! (e.g. `agg.*` ranks inside the aggregation runtime), but the reactor
//! never holds one across a callback, so it cannot participate in a
//! lock-order cycle.

use crate::frame::{FrameError, FrameReader, FrameWriter, ReadEvent, WriteEvent};
use crowd_proto::pool::BufPool;
use crowd_proto::Message;
use crowd_telemetry::{CounterId, GaugeId, Registry, Stage};
use polling::{Event, Events, Poller};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

/// A deferred reply: runs on the completion pump thread, may block.
pub type PendingReply = Box<dyn FnOnce() -> Message + Send + 'static>;

/// A parked request's retry hook: returns `None` while the service still
/// cannot accept the request, or `Some(response)` once it resolved. Must not
/// return [`Response::Throttle`] — park state is expressed by `None`.
pub type RetryFn = Box<dyn FnMut() -> Option<Response> + Send + 'static>;

/// What the [`Service`] wants done with a decoded request.
pub enum Response {
    /// Reply immediately.
    Now(Message),
    /// Reply later; the closure blocks on the pump thread until the reply is
    /// known.
    Pending(PendingReply),
    /// The service cannot accept the request right now (e.g. ingest queue
    /// full). The reactor parks the connection — reads stay disarmed — and
    /// polls `retry` until it yields a response.
    Throttle {
        /// The service's pacing hint (currently informational; parked
        /// connections are retried on every loop iteration).
        retry_after_ms: u32,
        /// Called to re-attempt admission.
        retry: RetryFn,
    },
}

impl std::fmt::Debug for Response {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Response::Now(m) => f.debug_tuple("Now").field(m).finish(),
            Response::Pending(_) => f.write_str("Pending(..)"),
            Response::Throttle { retry_after_ms, .. } => f
                .debug_struct("Throttle")
                .field("retry_after_ms", retry_after_ms)
                .finish(),
        }
    }
}

/// Maps decoded requests to responses. Implementations must be cheap on the
/// immediate path — `handle` runs on a reactor thread.
pub trait Service: Send + Sync + 'static {
    /// Handles one decoded request frame.
    fn handle(&self, message: Message) -> Response;
}

impl<F> Service for F
where
    F: Fn(Message) -> Response + Send + Sync + 'static,
{
    fn handle(&self, message: Message) -> Response {
        self(message)
    }
}

/// Tuning knobs for a [`Reactor`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Number of reactor (event loop) threads; each gets one pump thread.
    pub threads: usize,
    /// Maximum accepted frame size in bytes.
    pub max_frame: usize,
    /// Hard cap on simultaneously open connections (across all threads);
    /// connections beyond it are dropped at accept.
    pub max_connections: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            threads: 2,
            max_frame: crowd_proto::frame::DEFAULT_MAX_FRAME,
            max_connections: 16 * 1024,
        }
    }
}

/// Point-in-time counters, for tests and operational visibility.
///
/// Since the crowd-scope migration this is a *view* over the reactor's
/// [`Registry`] (`conns_accepted`, `conns_active`, `conns_parked`,
/// `inflight`, `conns_rejected`) — the registry snapshot is the one
/// authoritative stats surface; this struct just names the reactor's slice
/// of it for convenience.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReactorStats {
    /// Connections accepted over the reactor's lifetime.
    pub accepted: u64,
    /// Currently open connections.
    pub active: usize,
    /// Connections parked by backpressure right now.
    pub parked: usize,
    /// Requests waiting on the completion pumps right now.
    pub inflight: usize,
    /// Connections dropped at accept because `max_connections` was reached.
    pub rejected: u64,
}

/// Upper bound on one poller wait; bounds stop-flag latency and parked-retry
/// latency even if a notify is lost.
const TICK: Duration = Duration::from_millis(500);

/// Poller key of the listening socket (thread 0 only). Connection slots use
/// `key = slab_index + 1`; `usize::MAX` is reserved by the poller shim.
const LISTENER_KEY: usize = 0;

struct Shared {
    service: Arc<dyn Service>,
    pool: Arc<BufPool>,
    config: ReactorConfig,
    /// Connection accounting lives in the crowd-scope registry
    /// (`conns_accepted`/`conns_rejected` counters, `conns_active`/
    /// `conns_parked`/`inflight` gauges) — one source for [`ReactorStats`]
    /// and wire scrapes alike.
    metrics: Arc<Registry>,
    stop: AtomicBool,
    accepting: AtomicBool,
    /// Round-robin distribution state for accepted connections (distinct from
    /// the `conns_accepted` telemetry counter, which nothing reads back).
    next_conn: AtomicU64,
    unflushed: AtomicUsize,
    shards: Vec<ShardHandle>,
}

impl Shared {
    fn quiesced(&self) -> bool {
        self.metrics.gauge(GaugeId::Inflight) == 0
            && self.metrics.gauge(GaugeId::ConnsParked) == 0
            && self.unflushed.load(Ordering::Acquire) == 0
    }

    fn notify_all(&self) {
        for shard in &self.shards {
            let _ = shard.poller.notify();
        }
    }
}

struct ShardHandle {
    poller: Arc<Poller>,
    conn_tx: Sender<TcpStream>,
}

/// A reply finished by the completion pump.
struct Done {
    conn: usize,
    generation: u64,
    reply: Message,
}

/// Work for the completion pump thread.
struct PumpJob {
    conn: usize,
    generation: u64,
    wait: PendingReply,
}

/// An event-driven frame server over a fixed reactor thread pool.
pub struct Reactor {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<thread::JoinHandle<()>>,
    pumps: Vec<thread::JoinHandle<()>>,
}

impl Reactor {
    /// Starts the reactor pool serving `service` on `listener`, with a fresh
    /// private metric registry.
    pub fn start(
        listener: TcpListener,
        service: Arc<dyn Service>,
        pool: Arc<BufPool>,
        config: ReactorConfig,
    ) -> io::Result<Reactor> {
        Self::start_with_metrics(listener, service, pool, config, Arc::new(Registry::new()))
    }

    /// Like [`Reactor::start`], but connection counters, park/resume rates,
    /// and accept/decode spans land in the caller's `metrics` registry — how
    /// a server shares one scrapeable registry across its serving layers.
    pub fn start_with_metrics(
        listener: TcpListener,
        service: Arc<dyn Service>,
        pool: Arc<BufPool>,
        config: ReactorConfig,
        metrics: Arc<Registry>,
    ) -> io::Result<Reactor> {
        let threads = config.threads.max(1);
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let mut shard_handles = Vec::with_capacity(threads);
        let mut conn_rxs = Vec::with_capacity(threads);
        for _ in 0..threads {
            let poller = Arc::new(Poller::new()?);
            let (conn_tx, conn_rx) = mpsc::channel();
            shard_handles.push(ShardHandle { poller, conn_tx });
            conn_rxs.push(conn_rx);
        }

        let shared = Arc::new(Shared {
            service,
            pool,
            config: ReactorConfig { threads, ..config },
            metrics,
            stop: AtomicBool::new(false),
            accepting: AtomicBool::new(true),
            next_conn: AtomicU64::new(0),
            unflushed: AtomicUsize::new(0),
            shards: shard_handles,
        });

        let mut reactor_threads = Vec::with_capacity(threads);
        let mut pump_threads = Vec::with_capacity(threads);
        let mut listener = Some(listener);
        for (idx, conn_rx) in conn_rxs.into_iter().enumerate() {
            let (pump_tx, pump_rx) = mpsc::channel::<PumpJob>();
            let (done_tx, done_rx) = mpsc::channel::<Done>();

            let pump_poller = Arc::clone(&shared.shards[idx].poller);
            let pump = thread::Builder::new()
                .name(format!("crowd-pump-{idx}"))
                .spawn(move || {
                    while let Ok(job) = pump_rx.recv() {
                        let reply = (job.wait)();
                        if done_tx
                            .send(Done {
                                conn: job.conn,
                                generation: job.generation,
                                reply,
                            })
                            .is_err()
                        {
                            break;
                        }
                        let _ = pump_poller.notify();
                    }
                })
                .map_err(|e| io::Error::other(format!("spawning pump thread: {e}")))?;
            pump_threads.push(pump);

            let shard = Shard {
                idx,
                shared: Arc::clone(&shared),
                poller: Arc::clone(&shared.shards[idx].poller),
                listener: if idx == 0 { listener.take() } else { None },
                listener_armed: false,
                conn_rx,
                done_rx,
                pump_tx,
                slab: Slab::new(),
                parked_list: Vec::new(),
            };
            let handle = thread::Builder::new()
                .name(format!("crowd-reactor-{idx}"))
                .spawn(move || shard.run())
                .map_err(|e| io::Error::other(format!("spawning reactor thread: {e}")))?;
            reactor_threads.push(handle);
        }

        Ok(Reactor {
            shared,
            addr,
            threads: reactor_threads,
            pumps: pump_threads,
        })
    }

    /// Address the reactor is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters, read from the reactor's registry.
    pub fn stats(&self) -> ReactorStats {
        let m = &self.shared.metrics;
        ReactorStats {
            accepted: m.counter(CounterId::ConnsAccepted),
            active: m.gauge(GaugeId::ConnsActive).max(0) as usize,
            parked: m.gauge(GaugeId::ConnsParked).max(0) as usize,
            inflight: m.gauge(GaugeId::Inflight).max(0) as usize,
            rejected: m.counter(CounterId::ConnsRejected),
        }
    }

    /// The registry the reactor records into.
    pub fn metrics(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.metrics)
    }

    /// Stops accepting new connections (existing ones keep being served).
    pub fn stop_accepting(&self) {
        self.shared.accepting.store(false, Ordering::Release);
        self.shared.notify_all();
    }

    /// Waits (up to `max_wait` 1 ms polls) until no request is in flight, no
    /// connection is parked, and every queued reply has been flushed. Parked
    /// connections only resolve if the service's retry hooks can complete —
    /// e.g. after the ingest queue behind them has been shut down — so call
    /// this *after* draining the service. Returns whether quiescence was
    /// reached.
    pub fn drain(&self, max_wait: usize) -> bool {
        for _ in 0..max_wait {
            if self.shared.quiesced() {
                return true;
            }
            self.shared.notify_all();
            thread::sleep(Duration::from_millis(1));
        }
        self.shared.quiesced()
    }

    /// Stops the event loops and joins all threads. Connections are dropped;
    /// call [`Reactor::drain`] first for a graceful stop.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        // Reactor threads dropped their pump senders; pumps exit after their
        // current (already-unblocked) job, if any.
        for handle in self.pumps.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.stop_inner();
        }
    }
}

// ---------------------------------------------------------------------------
// Connection slab
// ---------------------------------------------------------------------------

/// Lifecycle of one connection inside its reactor thread.
enum Mode {
    /// Reading requests.
    Idle,
    /// A request is on the pump; reads stay disarmed until its reply.
    Awaiting,
    /// Backpressure: reads disarmed, retry hook polled each iteration.
    Parked { retry: RetryFn },
}

struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    writer: FrameWriter,
    generation: u64,
    mode: Mode,
    /// Whether this connection currently contributes to `Shared::unflushed`.
    counted_unflushed: bool,
    /// A request frame is partially read: the next completed frame counts as
    /// a resume (`frame_resumes`).
    mid_frame: bool,
}

enum Slot {
    Free { next: Option<usize> },
    Used(Box<Conn>),
}

/// Index-stable connection storage with generation counters so completions
/// addressed to a closed (and possibly reused) slot are discarded.
struct Slab {
    slots: Vec<(u64, Slot)>,
    free_head: Option<usize>,
    len: usize,
}

impl Slab {
    fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free_head: None,
            len: 0,
        }
    }

    fn insert(&mut self, conn: Conn) -> usize {
        self.len += 1;
        match self.free_head {
            Some(idx) => {
                let next = match self.slots[idx].1 {
                    Slot::Free { next } => next,
                    Slot::Used(_) => None, // unreachable by construction
                };
                self.free_head = next;
                self.slots[idx].1 = Slot::Used(Box::new(conn));
                idx
            }
            None => {
                self.slots.push((0, Slot::Used(Box::new(conn))));
                self.slots.len() - 1
            }
        }
    }

    fn get_mut(&mut self, idx: usize) -> Option<&mut Conn> {
        match self.slots.get_mut(idx) {
            Some((_, Slot::Used(conn))) => Some(conn),
            _ => None,
        }
    }

    fn generation(&self, idx: usize) -> Option<u64> {
        self.slots.get(idx).map(|(generation, _)| *generation)
    }

    fn remove(&mut self, idx: usize) -> Option<Box<Conn>> {
        let slot = self.slots.get_mut(idx)?;
        if matches!(slot.1, Slot::Free { .. }) {
            return None;
        }
        slot.0 += 1;
        let old = std::mem::replace(
            &mut slot.1,
            Slot::Free {
                next: self.free_head,
            },
        );
        self.free_head = Some(idx);
        self.len -= 1;
        match old {
            Slot::Used(conn) => Some(conn),
            Slot::Free { .. } => None,
        }
    }

    fn used_indices(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, (_, slot))| matches!(slot, Slot::Used(_)).then_some(i))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Reactor thread
// ---------------------------------------------------------------------------

struct Shard {
    idx: usize,
    shared: Arc<Shared>,
    poller: Arc<Poller>,
    listener: Option<TcpListener>,
    listener_armed: bool,
    conn_rx: Receiver<TcpStream>,
    done_rx: Receiver<Done>,
    pump_tx: Sender<PumpJob>,
    slab: Slab,
    parked_list: Vec<usize>,
}

enum DriveOutcome {
    Keep,
    Close,
}

impl Shard {
    fn run(mut self) {
        if let Some(listener) = &self.listener {
            if self
                .poller
                .add(listener, Event::readable(LISTENER_KEY))
                .is_ok()
            {
                self.listener_armed = true;
            }
        }
        let mut events = Events::new();
        loop {
            if self.shared.stop.load(Ordering::Acquire) {
                break;
            }
            self.sync_listener();
            let _ = self.poller.wait(&mut events, Some(TICK));
            if self.shared.stop.load(Ordering::Acquire) {
                break;
            }
            self.adopt_new_connections();
            self.apply_completions();
            let fired: Vec<Event> = events.iter().collect();
            for event in fired {
                if event.key == LISTENER_KEY {
                    self.accept_burst();
                } else {
                    self.drive(event.key - 1);
                }
            }
            self.retry_parked();
        }
        self.teardown();
    }

    /// Arms or disarms the listener to match the accepting flag. Also the
    /// re-arm point after an accept error left the listener disarmed.
    fn sync_listener(&mut self) {
        let Some(listener) = &self.listener else {
            return;
        };
        let accepting = self.shared.accepting.load(Ordering::Acquire);
        if accepting && !self.listener_armed {
            self.listener_armed = self
                .poller
                .modify(listener, Event::readable(LISTENER_KEY))
                .is_ok();
        } else if !accepting && self.listener_armed {
            let _ = self.poller.modify(listener, Event::none(LISTENER_KEY));
            self.listener_armed = false;
        }
    }

    fn accept_burst(&mut self) {
        self.listener_armed = false;
        if !self.shared.accepting.load(Ordering::Acquire) {
            return;
        }
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    let n = self.shared.next_conn.fetch_add(1, Ordering::AcqRel);
                    self.shared.metrics.incr(CounterId::ConnsAccepted);
                    self.shared.metrics.span(Stage::Accept, n);
                    if self.shared.metrics.gauge(GaugeId::ConnsActive)
                        >= self.shared.config.max_connections as i64
                    {
                        self.shared.metrics.incr(CounterId::ConnsRejected);
                        drop(stream);
                        continue;
                    }
                    let target = (n as usize) % self.shared.config.threads;
                    if target == self.idx {
                        self.adopt(stream);
                    } else {
                        let shard = &self.shared.shards[target];
                        if shard.conn_tx.send(stream).is_ok() {
                            let _ = shard.poller.notify();
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    // Out of descriptors or a transient accept failure: leave
                    // the listener disarmed for this tick so the loop does
                    // not spin; `sync_listener` re-arms it next iteration.
                    return;
                }
            }
        }
        self.sync_listener();
    }

    fn adopt_new_connections(&mut self) {
        while let Ok(stream) = self.conn_rx.try_recv() {
            self.adopt(stream);
        }
    }

    fn adopt(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let conn = Conn {
            stream,
            reader: FrameReader::new(Arc::clone(&self.shared.pool), self.shared.config.max_frame),
            writer: FrameWriter::new(Arc::clone(&self.shared.pool)),
            generation: 0,
            mode: Mode::Idle,
            counted_unflushed: false,
            mid_frame: false,
        };
        let idx = self.slab.insert(conn);
        let generation = self.slab.generation(idx).unwrap_or(0);
        if let Some(conn) = self.slab.get_mut(idx) {
            conn.generation = generation;
        }
        self.shared.metrics.gauge_add(GaugeId::ConnsActive, 1);
        let key = idx + 1;
        let registered = {
            let conn = match self.slab.get_mut(idx) {
                Some(conn) => conn,
                None => return,
            };
            self.poller.add(&conn.stream, Event::readable(key)).is_ok()
        };
        if !registered {
            self.close(idx);
        }
    }

    fn apply_completions(&mut self) {
        while let Ok(done) = self.done_rx.try_recv() {
            self.shared.metrics.gauge_add(GaugeId::Inflight, -1);
            let matches = self.slab.generation(done.conn) == Some(done.generation)
                && self.slab.get_mut(done.conn).is_some();
            if !matches {
                continue; // connection closed while its reply was pending
            }
            if let Some(conn) = self.slab.get_mut(done.conn) {
                conn.writer.enqueue(&done.reply);
                conn.mode = Mode::Idle;
            }
            self.drive(done.conn);
        }
    }

    /// Re-attempts every parked connection. Called once per loop iteration:
    /// each attempt is one cheap admission probe against the service.
    fn retry_parked(&mut self) {
        if self.parked_list.is_empty() {
            return;
        }
        let parked = std::mem::take(&mut self.parked_list);
        for idx in parked {
            let response = {
                let Some(conn) = self.slab.get_mut(idx) else {
                    continue;
                };
                let Mode::Parked { retry } = &mut conn.mode else {
                    continue;
                };
                match retry() {
                    None => {
                        self.parked_list.push(idx);
                        continue;
                    }
                    Some(response) => response,
                }
            };
            self.unpark(idx);
            self.apply_response(idx, response);
            self.drive(idx);
        }
    }

    fn unpark(&mut self, idx: usize) {
        if let Some(conn) = self.slab.get_mut(idx) {
            if matches!(conn.mode, Mode::Parked { .. }) {
                conn.mode = Mode::Idle;
                self.shared.metrics.gauge_add(GaugeId::ConnsParked, -1);
            }
        }
    }

    /// Applies a service response to a connection (which must be `Idle`).
    fn apply_response(&mut self, idx: usize, response: Response) {
        let generation = self.slab.generation(idx).unwrap_or(0);
        let Some(conn) = self.slab.get_mut(idx) else {
            return;
        };
        match response {
            Response::Now(reply) => {
                conn.writer.enqueue(&reply);
            }
            Response::Pending(wait) => {
                conn.mode = Mode::Awaiting;
                self.shared.metrics.gauge_add(GaugeId::Inflight, 1);
                let job = PumpJob {
                    conn: idx,
                    generation,
                    wait,
                };
                if self.pump_tx.send(job).is_err() {
                    // Pump gone (shutdown); the connection will be dropped
                    // with the reactor.
                    self.shared.metrics.gauge_add(GaugeId::Inflight, -1);
                }
            }
            Response::Throttle { retry, .. } => {
                conn.mode = Mode::Parked { retry };
                self.shared.metrics.incr(CounterId::Parks);
                self.shared.metrics.gauge_add(GaugeId::ConnsParked, 1);
                self.parked_list.push(idx);
            }
        }
    }

    /// Pumps one connection: flush queued replies, then (if idle) read and
    /// handle requests, then arm the poller for whatever it still waits on.
    fn drive(&mut self, idx: usize) {
        let outcome = self.drive_inner(idx);
        match outcome {
            DriveOutcome::Keep => self.account_unflushed(idx),
            DriveOutcome::Close => self.close(idx),
        }
    }

    fn drive_inner(&mut self, idx: usize) -> DriveOutcome {
        loop {
            // Phase 1: drain the write queue.
            {
                let Some(conn) = self.slab.get_mut(idx) else {
                    return DriveOutcome::Keep;
                };
                if !conn.writer.is_idle() {
                    match conn.writer.poll_write(&mut conn.stream) {
                        Ok(WriteEvent::Flushed) => {}
                        Ok(WriteEvent::NeedMore) => {
                            let key = idx + 1;
                            let _ = self.poller.modify(&conn.stream, Event::writable(key));
                            return DriveOutcome::Keep;
                        }
                        Err(_) => return DriveOutcome::Close,
                    }
                }
            }
            // Phase 2: only an idle connection reads the next request.
            let response = {
                let Some(conn) = self.slab.get_mut(idx) else {
                    return DriveOutcome::Keep;
                };
                if !matches!(conn.mode, Mode::Idle) {
                    // Awaiting or parked: stay disarmed until completion.
                    return DriveOutcome::Keep;
                }
                match conn.reader.poll_read(&mut conn.stream) {
                    Ok(ReadEvent::Frame(message)) => {
                        if conn.mid_frame {
                            conn.mid_frame = false;
                            self.shared.metrics.incr(CounterId::FrameResumes);
                        }
                        self.shared.metrics.span(Stage::FrameDecode, idx as u64);
                        self.shared.service.handle(message)
                    }
                    Ok(ReadEvent::NeedMore) => {
                        conn.mid_frame = conn.reader.mid_frame();
                        let key = idx + 1;
                        let _ = self.poller.modify(&conn.stream, Event::readable(key));
                        return DriveOutcome::Keep;
                    }
                    Ok(ReadEvent::Closed) => return DriveOutcome::Close,
                    Err(FrameError::Io(_))
                    | Err(FrameError::Proto(_))
                    | Err(FrameError::TruncatedFrame { .. }) => return DriveOutcome::Close,
                }
            };
            self.apply_response(idx, response);
            // Loop: flush the reply (phase 1) and, if the response was
            // immediate and fully flushed, keep reading pipelined frames.
        }
    }

    fn account_unflushed(&mut self, idx: usize) {
        let Some(conn) = self.slab.get_mut(idx) else {
            return;
        };
        let busy = !conn.writer.is_idle();
        if busy && !conn.counted_unflushed {
            conn.counted_unflushed = true;
            self.shared.unflushed.fetch_add(1, Ordering::AcqRel);
        } else if !busy && conn.counted_unflushed {
            conn.counted_unflushed = false;
            self.shared.unflushed.fetch_sub(1, Ordering::AcqRel);
        }
    }

    fn close(&mut self, idx: usize) {
        let Some(conn) = self.slab.remove(idx) else {
            return;
        };
        let _ = self.poller.delete(&conn.stream);
        self.shared.metrics.gauge_add(GaugeId::ConnsActive, -1);
        if conn.counted_unflushed {
            self.shared.unflushed.fetch_sub(1, Ordering::AcqRel);
        }
        if matches!(conn.mode, Mode::Parked { .. }) {
            self.shared.metrics.gauge_add(GaugeId::ConnsParked, -1);
        }
        // An Awaiting connection's pump reply is discarded by the generation
        // check in `apply_completions`.
    }

    fn teardown(&mut self) {
        for idx in self.slab.used_indices() {
            self.close(idx);
        }
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.delete(&listener);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_proto::frame::{read_message, write_message};
    use crowd_proto::message::{CheckinAck, ErrorCode, ErrorReply};
    use std::io::Write;
    use std::sync::Mutex;

    fn ping(n: u64) -> Message {
        Message::CheckinAck(CheckinAck {
            accepted: true,
            iteration: n,
            stopped: false,
            deduped: false,
        })
    }

    fn echo_service() -> Arc<dyn Service> {
        Arc::new(|message: Message| Response::Now(message))
    }

    fn start(service: Arc<dyn Service>, threads: usize) -> Reactor {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        Reactor::start(
            listener,
            service,
            Arc::new(BufPool::default()),
            ReactorConfig {
                threads,
                ..ReactorConfig::default()
            },
        )
        .unwrap()
    }

    fn exchange(addr: SocketAddr, request: &Message) -> Message {
        let mut stream = TcpStream::connect(addr).unwrap();
        write_message(&mut stream, request).unwrap();
        read_message(&mut stream).unwrap()
    }

    #[test]
    fn echo_round_trip_over_reactor() {
        let reactor = start(echo_service(), 2);
        let addr = reactor.local_addr();
        for i in 0..16 {
            assert_eq!(exchange(addr, &ping(i)), ping(i));
        }
        assert!(reactor.stats().accepted >= 16);
        reactor.stop();
    }

    #[test]
    fn many_sequential_requests_on_one_connection() {
        let reactor = start(echo_service(), 1);
        let mut stream = TcpStream::connect(reactor.local_addr()).unwrap();
        for i in 0..200 {
            write_message(&mut stream, &ping(i)).unwrap();
            assert_eq!(read_message(&mut stream).unwrap(), ping(i));
        }
        drop(stream);
        reactor.stop();
    }

    #[test]
    fn pending_replies_flow_through_the_pump() {
        let service: Arc<dyn Service> = Arc::new(|message: Message| {
            Response::Pending(Box::new(move || {
                thread::sleep(Duration::from_millis(5));
                message
            }))
        });
        let reactor = start(service, 2);
        let addr = reactor.local_addr();
        let workers: Vec<_> = (0..8)
            .map(|i| thread::spawn(move || exchange(addr, &ping(i)) == ping(i)))
            .collect();
        for worker in workers {
            assert!(worker.join().unwrap());
        }
        assert!(reactor.drain(2000));
        reactor.stop();
    }

    #[test]
    fn throttled_requests_park_and_resolve() {
        // Admit nothing for the first 3 probes of each request, then echo.
        let service: Arc<dyn Service> = Arc::new(|message: Message| {
            let mut probes = 0u32;
            let mut slot = Some(message);
            Response::Throttle {
                retry_after_ms: 1,
                retry: Box::new(move || {
                    probes += 1;
                    if probes < 3 {
                        return None;
                    }
                    slot.take().map(Response::Now)
                }),
            }
        });
        let reactor = start(service, 1);
        let addr = reactor.local_addr();
        assert_eq!(exchange(addr, &ping(9)), ping(9));
        assert!(reactor.drain(2000));
        assert_eq!(reactor.stats().parked, 0);
        reactor.stop();
    }

    #[test]
    fn interleaved_partial_frames_across_connections() {
        let reactor = start(echo_service(), 1);
        let addr = reactor.local_addr();

        let mut frame_a = Vec::new();
        write_message(&mut frame_a, &ping(1)).unwrap();
        let mut frame_b = Vec::new();
        write_message(&mut frame_b, &ping(2)).unwrap();

        let mut conn_a = TcpStream::connect(addr).unwrap();
        let mut conn_b = TcpStream::connect(addr).unwrap();

        // A sends half a frame, then B sends a whole one: B must be answered
        // while A's fragment sits buffered.
        conn_a.write_all(&frame_a[..frame_a.len() / 2]).unwrap();
        conn_a.flush().unwrap();
        conn_b.write_all(&frame_b).unwrap();
        assert_eq!(read_message(&mut conn_b).unwrap(), ping(2));

        // A completes its frame and gets its reply.
        conn_a.write_all(&frame_a[frame_a.len() / 2..]).unwrap();
        assert_eq!(read_message(&mut conn_a).unwrap(), ping(1));
        reactor.stop();
    }

    #[test]
    fn oversized_frame_drops_the_connection_but_not_the_reactor() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let reactor = Reactor::start(
            listener,
            echo_service(),
            Arc::new(BufPool::default()),
            ReactorConfig {
                threads: 1,
                max_frame: 1024,
                ..ReactorConfig::default()
            },
        )
        .unwrap();
        let addr = reactor.local_addr();
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(&(1024u32 * 1024).to_le_bytes()).unwrap();
        // The oversized connection is closed...
        let mut probe = [0u8; 1];
        bad.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        assert_eq!(std::io::Read::read(&mut bad, &mut probe).unwrap(), 0);
        // ...while fresh connections keep working.
        assert_eq!(exchange(addr, &ping(5)), ping(5));
        reactor.stop();
    }

    #[test]
    fn mid_frame_disconnect_is_tolerated() {
        let reactor = start(echo_service(), 1);
        let addr = reactor.local_addr();
        let mut frame = Vec::new();
        write_message(&mut frame, &ping(3)).unwrap();
        {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(&frame[..3]).unwrap();
        } // dropped mid-frame
        assert_eq!(exchange(addr, &ping(4)), ping(4));
        reactor.stop();
    }

    #[test]
    fn stop_accepting_refuses_new_but_serves_existing() {
        let reactor = start(echo_service(), 1);
        let addr = reactor.local_addr();
        let mut existing = TcpStream::connect(addr).unwrap();
        write_message(&mut existing, &ping(1)).unwrap();
        assert_eq!(read_message(&mut existing).unwrap(), ping(1));

        reactor.stop_accepting();
        // Existing connection still served.
        write_message(&mut existing, &ping(2)).unwrap();
        assert_eq!(read_message(&mut existing).unwrap(), ping(2));
        // New connections connect (backlog) but are never accepted/served.
        let mut fresh = TcpStream::connect(addr).unwrap();
        fresh
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        write_message(&mut fresh, &ping(3)).unwrap();
        assert!(read_message(&mut fresh).is_err());
        reactor.stop();
    }

    #[test]
    fn generation_guard_discards_replies_for_closed_connections() {
        // A pending reply that outlives its connection must be dropped, not
        // delivered to a reused slot.
        let gate = Arc::new(Mutex::new(()));
        let held = gate.lock().unwrap();
        let gate2 = Arc::clone(&gate);
        let service: Arc<dyn Service> = Arc::new(move |message: Message| {
            let gate = Arc::clone(&gate2);
            Response::Pending(Box::new(move || {
                let _wait = gate.lock().unwrap_or_else(|e| e.into_inner());
                message
            }))
        });
        let reactor = start(service, 1);
        let addr = reactor.local_addr();
        let mut doomed = TcpStream::connect(addr).unwrap();
        write_message(&mut doomed, &ping(7)).unwrap();
        thread::sleep(Duration::from_millis(50)); // request reaches the pump
        drop(doomed); // close while pending
        drop(held); // let the pump finish; reply must be discarded
        thread::sleep(Duration::from_millis(50));
        // Slot reuse: a new connection works and gets only its own reply.
        let service_alive = exchange(addr, &ping(8));
        assert_eq!(service_alive, ping(8));
        assert!(reactor.drain(2000));
        reactor.stop();
    }

    #[test]
    fn error_replies_pass_through() {
        let service: Arc<dyn Service> = Arc::new(|_message: Message| {
            Response::Now(Message::Error(ErrorReply {
                code: ErrorCode::Internal,
                detail: "nope".into(),
                round_id: 0,
            }))
        });
        let reactor = start(service, 1);
        let reply = exchange(reactor.local_addr(), &ping(1));
        assert!(matches!(reply, Message::Error(_)));
        reactor.stop();
    }
}
