//! Round-based cohort protocol primitives: seed-derived K-of-M selection and
//! pairwise additive masking (Bonawitz-style in shape, vendored-rng in
//! substance — no real crypto).
//!
//! Every round the coordinator publishes `(round_id, seed, select_fraction,
//! population)`. From those values alone, every party — device or server —
//! derives the same facts without further coordination:
//!
//! * **Role.** Device `d` is *Selected* for the round iff
//!   `mix(seed, d) < select_fraction · 2^64` ([`is_selected`]). The cohort is
//!   the ascending list of selected ids ([`cohort`]); if the coin flips leave
//!   it empty, the whole population is the cohort (a deterministic fallback,
//!   never a stall).
//! * **Pair masks.** Every unordered cohort pair `{a, b}` shares a mask
//!   stream seeded by `(seed, a, b)` ([`pair_mask`]). Device `d`'s *net* mask
//!   adds the pair mask toward every higher-id partner and subtracts it
//!   toward every lower-id partner ([`net_mask`]), so summed over the full
//!   cohort the masks cancel exactly.
//!
//! Masking operates on the gradient's IEEE-754 **bit patterns** with
//! wrapping `u64` arithmetic ([`mask`]/[`unmask`]), not on the floats
//! themselves. That makes unmasking lossless: the server recomputes a
//! survivor's net mask (including the pair masks toward partners that
//! vanished mid-round — the *dropout compensation*), subtracts it, and
//! recovers the original bits exactly. The finalized cohort sum is therefore
//! bitwise identical to the sum the unmasked gradients would have produced —
//! the property `tests/` proptests over random cohorts and dropout sets.
//!
//! What this buys within the paper's threat model: no raw gradient ever
//! crosses the wire (a masked word stream is what an eavesdropper — or a
//! logging middlebox — sees), and the aggregation path only ever folds
//! cohort-shaped sums. It is *not* cryptographic secure aggregation: the
//! seed is public, so the server could unmask an individual submission. The
//! protocol shape (roles, exactly-once submission, `RoundOutdated` resync,
//! dropout compensation) is the reproduction target; swapping the mask
//! derivation for real pairwise key agreement would not change any interface
//! in this crate.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A device's role in one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// In the round's cohort: submit exactly one masked checkin this round.
    Selected,
    /// Not in the cohort: free-run (ordinary unmasked checkins) this round.
    Unselected,
}

/// SplitMix64-style finalizer used for all per-round derivations. Distinct
/// salts keep the derivation domains (selection, pair masks, round seeds)
/// from colliding.
fn mix(mut h: u64, salt: u64) -> u64 {
    h = h.wrapping_add(salt).wrapping_add(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Derives round `round_id`'s selection/mask seed from the configured base
/// seed. Successive rounds get statistically unrelated cohorts.
pub fn round_seed(base_seed: u64, round_id: u64) -> u64 {
    mix(mix(base_seed, 0x5EED), round_id)
}

/// Whether `device_id` is selected for the round with the given seed:
/// a deterministic coin with `P(selected) ≈ select_fraction`, independent
/// across devices. `select_fraction ≥ 1` selects everyone, `≤ 0` no one.
pub fn is_selected(seed: u64, device_id: u64, select_fraction: f64) -> bool {
    if select_fraction >= 1.0 {
        return true;
    }
    if select_fraction <= 0.0 {
        return false;
    }
    // Threshold comparison in the u64 domain; the cast saturates safely for
    // any fraction in (0, 1).
    let threshold = (select_fraction * (u64::MAX as f64)) as u64;
    mix(seed, mix(device_id, 0x0D5E_7EC7)) < threshold
}

/// The round's cohort: ascending ids of the selected devices among
/// `0..population`. If the per-device coins select nobody, the whole
/// population is the cohort — every party applies the same fallback, so the
/// round still has a well-defined, non-empty cohort and cannot stall on an
/// unlucky seed.
pub fn cohort(seed: u64, population: u64, select_fraction: f64) -> Vec<u64> {
    let selected: Vec<u64> = (0..population)
        .filter(|&d| is_selected(seed, d, select_fraction))
        .collect();
    if selected.is_empty() {
        (0..population).collect()
    } else {
        selected
    }
}

/// A device's role for the round, derived exactly like [`cohort`] (including
/// the everyone-selected fallback — which is why the population is needed).
pub fn role_of(seed: u64, device_id: u64, population: u64, select_fraction: f64) -> Role {
    if cohort(seed, population, select_fraction)
        .binary_search(&device_id)
        .is_ok()
    {
        Role::Selected
    } else {
        Role::Unselected
    }
}

/// The shared mask stream for the unordered pair `{a, b}`: `dim` words drawn
/// from a generator seeded by `(seed, min(a,b), max(a,b))`. Both endpoints —
/// and the compensating server — derive the identical stream.
pub fn pair_mask(seed: u64, a: u64, b: u64, dim: usize) -> Vec<u64> {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let mut rng = StdRng::seed_from_u64(mix(mix(seed, lo), mix(hi, 0x7A1F)));
    (0..dim).map(|_| rng.next_u64()).collect()
}

/// Device `device_id`'s net mask over the cohort: the sum of its pair masks,
/// added toward higher-id partners and subtracted toward lower-id ones
/// (wrapping). Summed over every cohort member the signs pair off and the
/// total is exactly zero — the cancellation the protocol is named for.
pub fn net_mask(seed: u64, device_id: u64, cohort: &[u64], dim: usize) -> Vec<u64> {
    let mut out = vec![0u64; dim];
    for &peer in cohort {
        if peer == device_id {
            continue;
        }
        let pair = pair_mask(seed, device_id, peer, dim);
        if device_id < peer {
            for (o, m) in out.iter_mut().zip(&pair) {
                *o = o.wrapping_add(*m);
            }
        } else {
            for (o, m) in out.iter_mut().zip(&pair) {
                *o = o.wrapping_sub(*m);
            }
        }
    }
    out
}

/// Masks a gradient for the wire: each coordinate's IEEE-754 bits plus the
/// net mask word, wrapping. Lossless by construction — [`unmask`] with the
/// same net mask recovers the original bits exactly.
pub fn mask(gradient: &[f64], net_mask: &[u64]) -> Vec<u64> {
    debug_assert_eq!(gradient.len(), net_mask.len());
    gradient
        .iter()
        .zip(net_mask)
        .map(|(&g, &m)| g.to_bits().wrapping_add(m))
        .collect()
}

/// Inverts [`mask`]: subtracts the net mask words and reinterprets the bits
/// as the original floats.
pub fn unmask(words: &[u64], net_mask: &[u64]) -> Vec<f64> {
    debug_assert_eq!(words.len(), net_mask.len());
    words
        .iter()
        .zip(net_mask)
        .map(|(&w, &m)| f64::from_bits(w.wrapping_sub(m)))
        .collect()
}

/// Server-side round finalization over the survivors: for each surviving
/// `(device_id, masked_words)` pair — ascending by device id — recompute the
/// device's full-cohort net mask (pairs toward dropped partners included:
/// that recomputation *is* the dropout compensation), unmask, and fold into
/// the cohort sum. Returns `None` if any survivor's word count differs from
/// `dim` or a survivor is not a cohort member.
///
/// Because unmasking is per-device lossless, the result is bitwise identical
/// to summing the survivors' raw gradients in the same ascending order —
/// whatever subset of the cohort survived.
pub fn finalize_sum(
    seed: u64,
    cohort: &[u64],
    survivors: &[(u64, Vec<u64>)],
    dim: usize,
) -> Option<Vec<f64>> {
    let mut sum = vec![0.0f64; dim];
    let mut ordered: Vec<&(u64, Vec<u64>)> = survivors.iter().collect();
    ordered.sort_by_key(|(d, _)| *d);
    for (device_id, words) in ordered {
        if words.len() != dim || cohort.binary_search(device_id).is_err() {
            return None;
        }
        let mask_words = net_mask(seed, *device_id, cohort, dim);
        for (acc, g) in sum.iter_mut().zip(unmask(words, &mask_words)) {
            *acc += g;
        }
    }
    Some(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_is_deterministic_and_fraction_shaped() {
        let seed = round_seed(42, 3);
        let a = cohort(seed, 1000, 0.5);
        let b = cohort(seed, 1000, 0.5);
        assert_eq!(a, b);
        // A fair coin over 1000 devices lands well inside [350, 650].
        assert!(a.len() > 350 && a.len() < 650, "cohort size {}", a.len());
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(cohort(seed, 10, 1.5), (0..10).collect::<Vec<_>>());
        // An impossible fraction falls back to the full population rather
        // than an empty cohort.
        assert_eq!(cohort(seed, 4, 0.0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn roles_match_cohort_membership() {
        let seed = round_seed(7, 1);
        let members = cohort(seed, 64, 0.3);
        for d in 0..64 {
            let expected = if members.contains(&d) {
                Role::Selected
            } else {
                Role::Unselected
            };
            assert_eq!(role_of(seed, d, 64, 0.3), expected);
        }
    }

    #[test]
    fn net_masks_cancel_over_the_full_cohort() {
        let seed = round_seed(9, 5);
        let members = cohort(seed, 12, 0.6);
        let dim = 17;
        let mut total = vec![0u64; dim];
        for &d in &members {
            for (t, m) in total.iter_mut().zip(net_mask(seed, d, &members, dim)) {
                *t = t.wrapping_add(m);
            }
        }
        assert!(total.iter().all(|&w| w == 0));
    }

    #[test]
    fn mask_roundtrips_bitwise() {
        let seed = round_seed(1, 2);
        let members = vec![0, 3, 5];
        let gradient = [1.5, -0.25, f64::MIN_POSITIVE, 0.0, -0.0];
        let m = net_mask(seed, 3, &members, gradient.len());
        let words = mask(&gradient, &m);
        // The wire words are not the raw bits (cohort ≥ 2 ⇒ nonzero mask).
        assert_ne!(
            words,
            gradient.iter().map(|g| g.to_bits()).collect::<Vec<_>>()
        );
        let back = unmask(&words, &m);
        for (orig, got) in gradient.iter().zip(&back) {
            assert_eq!(orig.to_bits(), got.to_bits());
        }
    }

    #[test]
    fn finalize_matches_unmasked_sum_under_dropouts() {
        let seed = round_seed(11, 4);
        let members = cohort(seed, 8, 0.9);
        let dim = 6;
        let gradients: Vec<Vec<f64>> = members
            .iter()
            .map(|&d| {
                (0..dim)
                    .map(|c| (d as f64 + 1.0) * 0.1 - c as f64 * 0.01)
                    .collect()
            })
            .collect();
        // Drop one member; the rest survive.
        let survivors: Vec<(u64, Vec<u64>)> = members
            .iter()
            .zip(&gradients)
            .skip(1)
            .map(|(&d, g)| (d, mask(g, &net_mask(seed, d, &members, dim))))
            .collect();
        let finalized = finalize_sum(seed, &members, &survivors, dim).unwrap();
        let mut expected = vec![0.0; dim];
        for (_, g) in members.iter().zip(&gradients).skip(1) {
            for (e, v) in expected.iter_mut().zip(g) {
                *e += v;
            }
        }
        assert_eq!(
            finalized.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            expected.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
        // A survivor outside the cohort, or a dimension mismatch, is refused.
        assert!(finalize_sum(seed, &members, &[(999, vec![0; dim])], dim).is_none());
        assert!(finalize_sum(seed, &members, &[(members[0], vec![0; 2])], dim).is_none());
    }
}
