//! Property tests for the cohort masking scheme: over random cohorts,
//! dropout patterns, dimensions, and gradients, the finalized masked sum is
//! **bitwise identical** to the unmasked sum of the same survivors — and a
//! single observed submission is not the raw gradient.

use crowd_rounds::{cohort, finalize_sum, mask, net_mask, round_seed, unmask};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-device gradient for the property body.
fn gradient(seed: u64, device_id: u64, dim: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ device_id.rotate_left(17));
    (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Finalizing any surviving subset of a random cohort through the masked
    /// path lands bitwise on the plain ascending sum of the survivors' raw
    /// gradients, whatever subset dropped out mid-round.
    #[test]
    fn masked_finalization_is_bitwise_identical_to_the_unmasked_sum(
        base_seed in any::<u64>(),
        round_id in 1u64..1000,
        population in 2u64..24,
        fraction in 0.2f64..1.0,
        dim in 1usize..12,
        drop_bits in any::<u32>(),
    ) {
        let seed = round_seed(base_seed, round_id);
        let members = cohort(seed, population, fraction);
        prop_assume!(!members.is_empty());

        // Random dropout pattern over the cohort (bit i drops member i).
        let survivors: Vec<u64> = members
            .iter()
            .enumerate()
            .filter(|(i, _)| drop_bits >> (i % 32) & 1 == 0)
            .map(|(_, &d)| d)
            .collect();

        let submissions: Vec<(u64, Vec<u64>)> = survivors
            .iter()
            .map(|&d| {
                let g = gradient(base_seed, d, dim);
                let m = net_mask(seed, d, &members, dim);
                (d, mask(&g, &m))
            })
            .collect();
        let finalized = finalize_sum(seed, &members, &submissions, dim)
            .expect("survivors are cohort members with matching dims");

        // The reference: raw gradients summed in the same ascending order.
        let mut reference = vec![0.0f64; dim];
        for &d in &survivors {
            for (acc, g) in reference.iter_mut().zip(gradient(base_seed, d, dim)) {
                *acc += g;
            }
        }
        let finalized_bits: Vec<u64> = finalized.iter().map(|v| v.to_bits()).collect();
        let reference_bits: Vec<u64> = reference.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(finalized_bits, reference_bits);
    }

    /// What the server observes from one device is NOT the raw gradient: in
    /// any cohort of at least two, every masked word differs from the raw
    /// IEEE-754 bits unless that word's pairwise masks cancelled by chance
    /// (a per-word net mask of zero — vanishingly rare and checked for).
    #[test]
    fn a_single_submission_does_not_reveal_the_raw_gradient(
        base_seed in any::<u64>(),
        round_id in 1u64..1000,
        population in 2u64..24,
        dim in 1usize..12,
    ) {
        let seed = round_seed(base_seed, round_id);
        let members = cohort(seed, population, 1.0);
        prop_assume!(members.len() >= 2);
        let device = members[0];
        let g = gradient(base_seed, device, dim);
        let m = net_mask(seed, device, &members, dim);
        let words = mask(&g, &m);
        for i in 0..dim {
            if m[i] != 0 {
                prop_assert_ne!(
                    words[i],
                    g[i].to_bits(),
                    "masked word {} leaked the raw gradient bits", i
                );
            }
        }
        // And the mask is actually doing work: with ≥2 members the net mask
        // is nonzero somewhere for this generator's seeds.
        prop_assert!(m.iter().any(|&w| w != 0), "net mask was identically zero");
        // Unmasking with the right mask recovers the exact bits (losslessness
        // of the wrapping construction).
        let recovered = unmask(&words, &m);
        let recovered_bits: Vec<u64> = recovered.iter().map(|v| v.to_bits()).collect();
        let original_bits: Vec<u64> = g.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(recovered_bits, original_bits);
    }
}
