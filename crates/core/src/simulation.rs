//! Asynchronous, delay-aware simulation of a Crowd-ML deployment (§V-C).
//!
//! The simulation clock counts *fleet-wide sample arrivals*: one time unit is one
//! sample generated somewhere among the `M` devices, which is exactly the unit the
//! paper uses to express delays (`Δ = τ·M·F_s` is "the number of samples generated
//! by all devices during the delay of size τ"). Devices take turns generating
//! samples round-robin, so each device produces one sample every `M` time units.
//!
//! Each communication leg — checkout request (`τ_req`), parameter download
//! (`τ_co`), and checkin upload (`τ_ci`) — is delayed independently according to a
//! [`DelayModel`] (the paper draws each uniformly from `[0, τ]`). While a device
//! waits, other devices keep checking in, so the parameters it eventually uses are
//! stale; the server measures and reports that staleness.

use crate::config::CrowdMlConfig;
use crate::device::{Device, DeviceAction};
use crate::server::Server;
use crate::Result;
use crowd_data::Dataset;
use crowd_learning::metrics::{error_rate, ErrorCurve};
use crowd_learning::model::Model;
use crowd_linalg::Vector;
use crowd_sim::{DelayModel, EventQueue, TraceCollector};
use rand::Rng;

/// Simulation-level configuration (on top of the Crowd-ML algorithm configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationConfig {
    /// Delay model applied independently to each of the three communication legs.
    pub delay: DelayModel,
    /// Evaluate the test error every `eval_every` samples consumed by the server.
    pub eval_every: usize,
    /// Number of passes each device makes over its local data stream.
    pub passes: f64,
}

impl SimulationConfig {
    /// No delay, evaluation every 1 000 consumed samples, one pass.
    pub fn new() -> Self {
        SimulationConfig {
            delay: DelayModel::None,
            eval_every: 1000,
            passes: 1.0,
        }
    }

    /// Sets the delay model.
    pub fn with_delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Sets the evaluation cadence.
    pub fn with_eval_every(mut self, eval_every: usize) -> Self {
        self.eval_every = eval_every.max(1);
        self
    }

    /// Sets the number of passes over each device's data.
    pub fn with_passes(mut self, passes: f64) -> Self {
        self.passes = if passes > 0.0 { passes } else { 1.0 };
        self
    }
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig::new()
    }
}

/// Result of one simulated Crowd-ML run.
#[derive(Debug, Clone)]
pub struct CrowdRunResult {
    /// Final server parameters.
    pub params: Vector,
    /// Test-error curve against samples consumed by the server (the Fig. 4–9 series).
    pub curve: ErrorCurve,
    /// Per-sample 0/1 online mistakes, in fleet arrival order, made by each device
    /// with the parameters it last received (the Fig. 3 quantity).
    pub online_mistakes: Vec<bool>,
    /// Number of server updates applied.
    pub server_iterations: u64,
    /// Event counters and staleness observations.
    pub trace: TraceCollector,
}

impl CrowdRunResult {
    /// Final test error (last point of the curve), or 1.0 if no evaluation was made.
    pub fn final_test_error(&self) -> f64 {
        self.curve.final_error().unwrap_or(1.0)
    }
}

enum SimEvent {
    /// The next fleet-wide sample arrival; `index` is the global arrival counter.
    SampleArrival { index: u64 },
    /// A checkout request reaches the server.
    CheckoutAtServer { device: usize },
    /// The checked-out parameters reach the device.
    ParamsAtDevice {
        device: usize,
        params: Vector,
        iteration: u64,
    },
    /// A checkin payload reaches the server.
    CheckinAtServer {
        payload: crate::device::CheckinPayload,
        checkout_time: f64,
    },
}

/// Runs the asynchronous Crowd-ML simulation.
///
/// `partitions[d]` is device `d`'s local data stream (consumed round-robin,
/// cycling when `passes > 1`); `test` is the clean evaluation set.
pub fn run_crowd_ml<M, R>(
    model: &M,
    partitions: &[Dataset],
    test: &Dataset,
    config: &CrowdMlConfig,
    sim: &SimulationConfig,
    rng: &mut R,
) -> Result<CrowdRunResult>
where
    M: Model,
    R: Rng + ?Sized,
{
    if partitions.is_empty() {
        return Err(crate::CoreError::Config(
            "simulation needs at least one device".into(),
        ));
    }
    let num_devices = partitions.len();
    let mut devices: Vec<Device> = (0..num_devices)
        .map(|d| Device::new(d as u64, config.device, config.privacy))
        .collect::<Result<_>>()?;
    let mut server = Server::with_random_init(
        // The server only needs scores/updates; cloning the caller's model keeps
        // the generic bound simple.
        clone_model(model),
        config.server.clone(),
        rng,
    )?;

    // Per-device view of the parameters (what the device last received), used for
    // the online predictions of Fig. 3.
    let mut last_params: Vec<Vector> = vec![server.params().clone(); num_devices];
    // Per-device cursor into its local stream.
    let mut cursors = vec![0usize; num_devices];

    let total_local: usize = partitions.iter().map(|p| p.len()).sum();
    let total_arrivals = ((total_local as f64) * sim.passes).ceil() as u64;

    let mut queue: EventQueue<SimEvent> = EventQueue::new();
    let mut trace = TraceCollector::new();
    let mut curve = ErrorCurve::new();
    let mut online_mistakes = Vec::with_capacity(total_arrivals as usize);
    let mut consumed_by_server = 0usize;
    let mut next_eval = sim.eval_every;

    if total_arrivals > 0 {
        queue.schedule(1.0, SimEvent::SampleArrival { index: 0 });
    }

    while let Some(event) = queue.pop() {
        match event.payload {
            SimEvent::SampleArrival { index } => {
                let device_idx = (index % num_devices as u64) as usize;
                let part = &partitions[device_idx];
                if !part.is_empty() {
                    let sample = part.get(cursors[device_idx] % part.len()).clone();
                    cursors[device_idx] += 1;
                    trace.count("samples_generated");

                    // Online prediction with the parameters this device last saw.
                    let pred = server
                        .model()
                        .predict(&last_params[device_idx], &sample.features)?;
                    online_mistakes.push(pred != sample.label);

                    let action = devices[device_idx].observe(sample);
                    match action {
                        DeviceAction::RequestCheckout => {
                            devices[device_idx].begin_checkout()?;
                            trace.count("checkout_requests");
                            let delay = sim.delay.sample(rng);
                            queue.schedule_after(
                                delay,
                                SimEvent::CheckoutAtServer { device: device_idx },
                            );
                        }
                        DeviceAction::Dropped => trace.count("samples_dropped"),
                        DeviceAction::Buffered => {}
                    }
                }
                // Schedule the next fleet-wide arrival one time unit later.
                if index + 1 < total_arrivals && !server.stopped() {
                    queue.schedule_after(1.0, SimEvent::SampleArrival { index: index + 1 });
                }
            }
            SimEvent::CheckoutAtServer { device } => {
                let ticket = server.checkout();
                trace.count("checkouts_served");
                let delay = sim.delay.sample(rng);
                queue.schedule_after(
                    delay,
                    SimEvent::ParamsAtDevice {
                        device,
                        params: ticket.params,
                        iteration: ticket.iteration,
                    },
                );
            }
            SimEvent::ParamsAtDevice {
                device,
                params,
                iteration,
            } => {
                last_params[device] = params.clone();
                if devices[device].buffer_len() == 0 {
                    // Nothing to do (should not normally happen); release the
                    // outstanding checkout so the device can retry later.
                    devices[device].abort_checkout();
                    trace.count("empty_checkins_skipped");
                    continue;
                }
                let payload = devices[device].compute_checkin(
                    server.model(),
                    &params,
                    iteration,
                    config.server.lambda,
                    rng,
                )?;
                trace.count("checkins_sent");
                let delay = sim.delay.sample(rng);
                let checkout_time = queue.now();
                queue.schedule_after(
                    delay,
                    SimEvent::CheckinAtServer {
                        payload,
                        checkout_time,
                    },
                );
            }
            SimEvent::CheckinAtServer {
                payload,
                checkout_time,
            } => {
                let num_samples = payload.num_samples;
                let outcome = server.checkin(&payload)?;
                trace.count("checkins_applied");
                trace.record_latency(queue.now() - checkout_time);
                trace.add("staleness_total", outcome.staleness);
                if outcome.accepted {
                    consumed_by_server += num_samples;
                    if consumed_by_server >= next_eval {
                        let err = error_rate(server.model(), server.params(), test)?;
                        curve.push(consumed_by_server, err);
                        next_eval = consumed_by_server + sim.eval_every;
                    }
                }
            }
        }
    }

    // Always record a final point so short runs still report an error.
    if curve.is_empty() || consumed_by_server > curve.points().last().map_or(0, |p| p.iteration) {
        let err = error_rate(server.model(), server.params(), test)?;
        curve.push(consumed_by_server.max(1), err);
    }

    Ok(CrowdRunResult {
        params: server.params().clone(),
        curve,
        online_mistakes,
        server_iterations: server.iteration(),
        trace,
    })
}

/// The simulation owns its own model instance so the server can be constructed
/// generically; models in this workspace are small plain-old-data structs, so a
/// clone is cheap. A dedicated helper keeps the `Clone` requirement out of the
/// public trait bound.
fn clone_model<M: Model>(model: &M) -> ModelRef<'_, M> {
    ModelRef { inner: model }
}

/// A zero-cost wrapper that forwards the [`Model`] trait to a borrowed model.
#[derive(Debug, Clone, Copy)]
pub struct ModelRef<'a, M: Model> {
    inner: &'a M,
}

impl<'a, M: Model> Model for ModelRef<'a, M> {
    fn input_dim(&self) -> usize {
        self.inner.input_dim()
    }
    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }
    fn param_dim(&self) -> usize {
        self.inner.param_dim()
    }
    fn init_params(&self) -> Vector {
        self.inner.init_params()
    }
    fn scores(&self, params: &Vector, x: &Vector) -> crowd_learning::Result<Vec<f64>> {
        self.inner.scores(params, x)
    }
    fn loss(&self, params: &Vector, x: &Vector, y: usize) -> crowd_learning::Result<f64> {
        self.inner.loss(params, x, y)
    }
    fn gradient(&self, params: &Vector, x: &Vector, y: usize) -> crowd_learning::Result<Vector> {
        self.inner.gradient(params, x, y)
    }
    fn gradient_into(
        &self,
        params: &Vector,
        x: &Vector,
        y: usize,
        out: &mut Vector,
    ) -> crowd_learning::Result<()> {
        self.inner.gradient_into(params, x, y, out)
    }
    fn evaluate_into(
        &self,
        params: &Vector,
        x: &Vector,
        y: usize,
        out: &mut Vector,
    ) -> crowd_learning::Result<crowd_learning::model::SampleEval> {
        self.inner.evaluate_into(params, x, y, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CrowdMlConfig, DeviceConfig, PrivacyConfig, ServerConfig};
    use crowd_data::partition::{partition, PartitionStrategy};
    use crowd_data::synthetic::GaussianMixtureSpec;
    use crowd_learning::MulticlassLogistic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn task(seed: u64, n: usize) -> (Dataset, Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        GaussianMixtureSpec::new(10, 4)
            .with_train_size(n)
            .with_test_size(200)
            .with_mean_scale(2.5)
            .with_noise_std(0.6)
            .generate(&mut rng)
            .unwrap()
    }

    fn split(train: &Dataset, devices: usize, seed: u64) -> Vec<Dataset> {
        let mut rng = StdRng::seed_from_u64(seed);
        partition(train, devices, PartitionStrategy::Iid, &mut rng).unwrap()
    }

    #[test]
    fn crowd_ml_learns_without_privacy_or_delay() {
        let (train, test) = task(0, 1500);
        let parts = split(&train, 50, 1);
        let model = MulticlassLogistic::new(10, 4).unwrap();
        let config = CrowdMlConfig::new(
            DeviceConfig::new(1),
            ServerConfig::new().with_rate_constant(2.0),
            PrivacyConfig::non_private(),
        )
        .unwrap();
        let sim = SimulationConfig::new().with_eval_every(300);
        let mut rng = StdRng::seed_from_u64(2);
        let result = run_crowd_ml(&model, &parts, &test, &config, &sim, &mut rng).unwrap();
        assert!(
            result.final_test_error() < 0.15,
            "error {}",
            result.final_test_error()
        );
        assert_eq!(result.trace.get("samples_generated"), 1500);
        assert_eq!(result.server_iterations, 1500);
        assert_eq!(result.online_mistakes.len(), 1500);
        // With b = 1 every sample triggers a checkout/checkin.
        assert_eq!(result.trace.get("checkins_applied"), 1500);
    }

    #[test]
    fn minibatch_reduces_server_iterations() {
        let (train, test) = task(3, 1000);
        let parts = split(&train, 20, 4);
        let model = MulticlassLogistic::new(10, 4).unwrap();
        let config = CrowdMlConfig::new(
            DeviceConfig::new(10),
            ServerConfig::new().with_rate_constant(2.0),
            PrivacyConfig::non_private(),
        )
        .unwrap();
        let sim = SimulationConfig::new().with_eval_every(250);
        let mut rng = StdRng::seed_from_u64(5);
        let result = run_crowd_ml(&model, &parts, &test, &config, &sim, &mut rng).unwrap();
        // 1000 samples at b = 10 → roughly 100 updates (boundary effects aside).
        assert!(result.server_iterations <= 100);
        assert!(result.server_iterations >= 80);
        assert!(result.final_test_error() < 0.3);
    }

    #[test]
    fn delay_introduces_staleness() {
        let (train, test) = task(6, 800);
        let parts = split(&train, 40, 7);
        let model = MulticlassLogistic::new(10, 4).unwrap();
        let config = CrowdMlConfig::default_non_private();
        let delayed = SimulationConfig::new()
            .with_delay(DelayModel::Uniform { max: 100.0 })
            .with_eval_every(400);
        let mut rng = StdRng::seed_from_u64(8);
        let result = run_crowd_ml(&model, &parts, &test, &config, &delayed, &mut rng).unwrap();
        // With substantial delays some checkins must observe a stale model.
        assert!(result.trace.get("staleness_total") > 0);
        assert!(result.trace.mean_latency().unwrap() > 0.0);
        // Checkins batch up the samples that arrived while the device waited, so
        // there are fewer checkins than samples but all generated samples are
        // accounted for (generated = consumed by server + dropped + still buffered).
        let applied = result.trace.get("checkins_applied");
        assert!(applied > 0 && applied < 800, "applied {applied}");
        assert_eq!(result.trace.get("samples_generated"), 800);
    }

    #[test]
    fn stopping_criterion_halts_early() {
        let (train, test) = task(9, 1000);
        let parts = split(&train, 10, 10);
        let model = MulticlassLogistic::new(10, 4).unwrap();
        let config = CrowdMlConfig::new(
            DeviceConfig::new(1),
            ServerConfig::new().with_max_iterations(50),
            PrivacyConfig::non_private(),
        )
        .unwrap();
        let sim = SimulationConfig::new().with_eval_every(100);
        let mut rng = StdRng::seed_from_u64(11);
        let result = run_crowd_ml(&model, &parts, &test, &config, &sim, &mut rng).unwrap();
        assert_eq!(result.server_iterations, 50);
        // The stop prevents the remaining samples from being generated.
        assert!(result.trace.get("samples_generated") < 1000);
    }

    #[test]
    fn privacy_noise_degrades_but_does_not_break_learning() {
        let (train, test) = task(12, 2000);
        let parts = split(&train, 50, 13);
        let model = MulticlassLogistic::new(10, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(14);

        let clean_config = CrowdMlConfig::default_non_private();
        let sim = SimulationConfig::new().with_eval_every(500);
        let clean = run_crowd_ml(&model, &parts, &test, &clean_config, &sim, &mut rng).unwrap();

        let noisy_config = CrowdMlConfig::new(
            DeviceConfig::new(20),
            ServerConfig::new(),
            PrivacyConfig::with_total_epsilon(10.0),
        )
        .unwrap();
        let noisy = run_crowd_ml(&model, &parts, &test, &noisy_config, &sim, &mut rng).unwrap();

        assert!(clean.final_test_error() < 0.2);
        // With ε = 10 and b = 20 the noise is modest; learning must stay usable
        // (far better than the 0.75 chance level of a 4-class task).
        assert!(
            noisy.final_test_error() < 0.5,
            "noisy error {}",
            noisy.final_test_error()
        );
    }

    #[test]
    fn rejects_empty_fleet() {
        let model = MulticlassLogistic::new(4, 2).unwrap();
        let test = Dataset::empty(4, 2).unwrap();
        let config = CrowdMlConfig::default_non_private();
        let sim = SimulationConfig::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(run_crowd_ml(&model, &[], &test, &config, &sim, &mut rng).is_err());
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let (train, test) = task(15, 600);
        let parts = split(&train, 10, 16);
        let model = MulticlassLogistic::new(10, 4).unwrap();
        let config = CrowdMlConfig::new(
            DeviceConfig::new(5),
            ServerConfig::new(),
            PrivacyConfig::with_total_epsilon(5.0),
        )
        .unwrap();
        let sim = SimulationConfig::new()
            .with_delay(DelayModel::Uniform { max: 20.0 })
            .with_eval_every(200);
        let a = run_crowd_ml(
            &model,
            &parts,
            &test,
            &config,
            &sim,
            &mut StdRng::seed_from_u64(99),
        )
        .unwrap();
        let b = run_crowd_ml(
            &model,
            &parts,
            &test,
            &config,
            &sim,
            &mut StdRng::seed_from_u64(99),
        )
        .unwrap();
        assert_eq!(a.params, b.params);
        assert_eq!(a.curve, b.curve);
        assert_eq!(a.online_mistakes, b.online_mistakes);
    }
}
