//! Server-side state machine: Server Routines 1–2 of Algorithm 2.
//!
//! The [`Server`] hands out the current parameters on checkout, applies the
//! projected SGD update `w ← Π_W[w − η(t)·ĝ]` on checkin, accumulates the
//! per-device counters `N_s^m`, `N_e^m`, `N_y^{k,m}`, and evaluates the stopping
//! criterion `t ≥ T_max` or `Σ N_e / Σ N_s ≤ ρ`.

use crate::config::ServerConfig;
use crate::device::CheckinPayload;
use crate::error::CoreError;
use crate::Result;
use crowd_dp::BudgetAccountant;
use crowd_learning::model::Model;
use crowd_learning::LearningRate;
use crowd_linalg::ops::project_l2_ball;
use crowd_linalg::random::normal_vector;
use crowd_linalg::Vector;
use rand::Rng;
use std::collections::BTreeMap;

/// Per-device progress statistics maintained by the server.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceProgress {
    /// Total samples reported (`N_s^m`).
    pub samples: u64,
    /// Total (perturbed) misclassifications reported (`N_e^m`).
    pub errors: i64,
    /// Total (perturbed) per-class label counts (`N_y^{k,m}`).
    pub label_counts: Vec<i64>,
    /// Number of checkins received from the device.
    pub checkins: u64,
}

/// The result of serving a checkout request (Server Routine 1).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckoutTicket {
    /// The server iteration at which the parameters were read.
    pub iteration: u64,
    /// A copy of the current parameters.
    pub params: Vector,
    /// Whether the stopping criterion has already been met.
    pub stopped: bool,
}

/// Per-device contribution to one aggregation epoch.
///
/// Produced by the sharded accumulation runtime (`crowd-agg`): each device's
/// checkins within the epoch are pre-summed on the device's shard, and the
/// merged epoch lists devices in ascending-id order so the floating-point fold
/// is bitwise reproducible regardless of shard count or thread interleaving.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceEpochStats {
    /// The contributing device.
    pub device_id: u64,
    /// Checkins the device contributed to this epoch.
    pub checkins: u64,
    /// Samples reported (`Σ n_s` over the device's epoch checkins).
    pub samples: u64,
    /// Perturbed misclassification counts (`Σ n̂_e`).
    pub errors: i64,
    /// Perturbed per-class label counts (`Σ n̂_y^k`).
    pub label_counts: Vec<i64>,
}

/// A merged aggregation epoch: the write-path input of the split server.
///
/// [`Server::checkout`] is the read path (a parameter snapshot); applying one of
/// these is the entire write path. With `checkin_count == 1` the update is
/// bit-for-bit the paper's per-checkin step `w ← Π_W[w − η(t)ĝ]`; with more
/// checkins the *mean* of the epoch's gradients is applied as one step.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochAggregate {
    /// Sum of the sanitized gradients folded in fixed device order.
    pub gradient_sum: Vector,
    /// Number of checkins in the epoch (the divisor for the mean gradient).
    pub checkin_count: u64,
    /// The oldest checkout iteration among the epoch's checkins (staleness is
    /// measured against the most out-of-date contribution).
    pub min_checkout_iteration: u64,
    /// Per-device monitoring statistics, ascending by device id.
    pub device_stats: Vec<DeviceEpochStats>,
}

impl EpochAggregate {
    /// The aggregate of a single checkin; applying it is equivalent to the
    /// classic [`Server::checkin`].
    pub fn from_payload(payload: &CheckinPayload) -> Self {
        EpochAggregate {
            gradient_sum: payload.gradient.to_dense(),
            checkin_count: 1,
            min_checkout_iteration: payload.checkout_iteration,
            device_stats: vec![DeviceEpochStats {
                device_id: payload.device_id,
                checkins: 1,
                samples: payload.num_samples as u64,
                errors: payload.error_count,
                label_counts: payload.label_counts.clone(),
            }],
        }
    }
}

/// The result of applying a checkin (Server Routine 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckinOutcome {
    /// Whether the gradient was applied (a stopped server rejects new gradients).
    pub accepted: bool,
    /// The server iteration after this checkin.
    pub iteration: u64,
    /// Whether the stopping criterion is now met.
    pub stopped: bool,
    /// How many updates happened between the device's checkout and this checkin
    /// (the staleness the delay analysis of §IV-B3 reasons about).
    pub staleness: u64,
}

/// The complete mutable state of a [`Server`], in a deterministic layout.
///
/// This is what the persistence subsystem (`crowd-store`) snapshots and what
/// [`Server::restore`] rebuilds: parameters, iteration, the learning-rate
/// schedule position (including AdaGrad's accumulated squared gradients — the
/// only stateful schedule), the per-device monitoring counters, and the
/// per-device ε ledger. All maps are exported sorted by device id so two
/// bitwise-equal servers export bitwise-equal states. The model and the
/// [`ServerConfig`] are *not* part of the state; restoring requires the same
/// ones the original server ran with.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerState {
    /// The global parameters `w`.
    pub params: Vector,
    /// Number of applied epochs `t`.
    pub iteration: u64,
    /// Total samples reported across devices.
    pub total_samples: u64,
    /// Total (perturbed) misclassifications reported across devices.
    pub total_errors: i64,
    /// Per-device monitoring counters, ascending by device id.
    pub progress: Vec<(u64, DeviceProgress)>,
    /// The learning-rate schedule, including any internal position/state.
    pub schedule: LearningRate,
    /// Per-device cumulative ε spend, ascending by device id.
    pub budget_ledger: Vec<(u64, f64)>,
}

/// The Crowd-ML server.
#[derive(Debug, Clone)]
pub struct Server<M: Model> {
    model: M,
    config: ServerConfig,
    schedule: LearningRate,
    params: Vector,
    iteration: u64,
    // A BTreeMap so per-device progress iterates in device-id order: it feeds
    // exported state and the class-prior estimate, which must be reproducible.
    progress: BTreeMap<u64, DeviceProgress>,
    total_samples: u64,
    total_errors: i64,
    accountant: BudgetAccountant,
}

/// Ledger key for a device (the accountant tracks entities by string).
fn budget_entity(device_id: u64) -> String {
    device_id.to_string()
}

impl<M: Model> Server<M> {
    /// Creates a server with zero-initialized parameters.
    pub fn new(model: M, config: ServerConfig) -> Result<Self> {
        config.validate()?;
        let params = model.init_params();
        let accountant = BudgetAccountant::new(config.budget.ceiling);
        Ok(Server {
            schedule: config.schedule.clone(),
            model,
            config,
            params,
            iteration: 0,
            progress: BTreeMap::new(),
            total_samples: 0,
            total_errors: 0,
            accountant,
        })
    }

    /// Creates a server with small random initial parameters (Algorithm 2's
    /// "randomized w" initialization), scaled to fit well inside the projection
    /// ball.
    pub fn with_random_init<R: Rng + ?Sized>(
        model: M,
        config: ServerConfig,
        rng: &mut R,
    ) -> Result<Self> {
        let mut server = Server::new(model, config)?;
        let mut init = normal_vector(rng, server.params.len());
        init.scale(0.01);
        project_l2_ball(&mut init, server.config.radius);
        server.params = init;
        Ok(server)
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The current parameters.
    pub fn params(&self) -> &Vector {
        &self.params
    }

    /// The current iteration `t` (number of applied checkins).
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Total samples reported across devices (`Σ_m N_s^m`).
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Number of devices that have checked in at least once.
    pub fn active_devices(&self) -> usize {
        self.progress.len()
    }

    /// Per-device progress, if the device has checked in.
    pub fn device_progress(&self, device_id: u64) -> Option<&DeviceProgress> {
        self.progress.get(&device_id)
    }

    /// Total ε spent so far by `device_id` (zero if never charged).
    pub fn budget_spent(&self, device_id: u64) -> f64 {
        self.accountant.spent(&budget_entity(device_id))
    }

    /// `true` when the device has reached its ε ceiling and must not be
    /// queried further. Always `false` while accounting is disabled.
    pub fn budget_exhausted(&self, device_id: u64) -> bool {
        // The float-accumulation slack scales down with the ceiling so a tiny
        // (but valid) ceiling is not pre-exhausted for never-charged devices.
        let ceiling = self.config.budget.ceiling;
        let slack = 1e-12 * ceiling.min(1.0);
        !self.config.budget.is_disabled() && self.budget_spent(device_id) >= ceiling - slack
    }

    /// The per-device ε ledger, ascending by device id.
    pub fn budget_ledger(&self) -> Vec<(u64, f64)> {
        let mut ledger: Vec<(u64, f64)> = self
            .accountant
            .iter()
            .filter_map(|(entity, spent)| entity.parse::<u64>().ok().map(|id| (id, spent)))
            .collect();
        ledger.sort_unstable_by_key(|&(id, _)| id);
        ledger
    }

    /// The ε each device in `epoch` will be charged when the epoch is applied:
    /// `per_checkin_epsilon · checkins`, ascending by device id. Pure — safe to
    /// compute before [`Server::apply_aggregate`] (e.g. for a write-ahead log
    /// entry) and deterministic, so a recovery replay recomputes it bit for bit.
    pub fn epoch_charges(&self, epoch: &EpochAggregate) -> Vec<(u64, f64)> {
        if self.config.budget.is_disabled() {
            return Vec::new();
        }
        epoch
            .device_stats
            .iter()
            .map(|stats| {
                (
                    stats.device_id,
                    self.config.budget.per_checkin_epsilon * stats.checkins as f64,
                )
            })
            .collect()
    }

    /// Exports the complete mutable state in the deterministic layout of
    /// [`ServerState`] (maps sorted by device id).
    pub fn export_state(&self) -> ServerState {
        // BTreeMap iteration is already ascending by device id.
        let progress: Vec<(u64, DeviceProgress)> = self
            .progress
            .iter()
            .map(|(&id, p)| (id, p.clone()))
            .collect();
        ServerState {
            params: self.params.clone(),
            iteration: self.iteration,
            total_samples: self.total_samples,
            total_errors: self.total_errors,
            progress,
            schedule: self.schedule.clone(),
            budget_ledger: self.budget_ledger(),
        }
    }

    /// Rebuilds a server from an exported [`ServerState`].
    ///
    /// `model` and `config` must be the ones the exporting server ran with (the
    /// state stores neither); the parameter dimension is checked, the rest is
    /// the caller's contract. The restored server is bitwise identical to the
    /// exporter: same parameters, iteration, schedule position, counters, and
    /// ε ledger.
    pub fn restore(model: M, config: ServerConfig, state: ServerState) -> Result<Self> {
        let mut server = Server::new(model, config)?;
        if state.params.len() != server.params.len() {
            return Err(CoreError::Protocol(format!(
                "restored parameters have dimension {}, model expects {}",
                state.params.len(),
                server.params.len()
            )));
        }
        for (_, progress) in &state.progress {
            if progress.label_counts.len() != server.model.num_classes() {
                return Err(CoreError::Protocol(format!(
                    "restored progress has {} label counts, model expects {}",
                    progress.label_counts.len(),
                    server.model.num_classes()
                )));
            }
        }
        server.params = state.params;
        server.iteration = state.iteration;
        server.total_samples = state.total_samples;
        server.total_errors = state.total_errors;
        server.progress = state.progress.into_iter().collect();
        server.schedule = state.schedule;
        server
            .accountant
            .restore_spent(
                state
                    .budget_ledger
                    .into_iter()
                    .map(|(id, spent)| (budget_entity(id), spent)),
            )
            .map_err(CoreError::Privacy)?;
        Ok(server)
    }

    /// The privately estimated overall error rate `Σ N_e / Σ N_s` (Eq. 14), or
    /// `None` before any samples have been reported. Clamped to `[0, 1]` since the
    /// perturbed counts can stray outside the valid range.
    pub fn error_estimate(&self) -> Option<f64> {
        if self.total_samples == 0 {
            None
        } else {
            Some((self.total_errors as f64 / self.total_samples as f64).clamp(0.0, 1.0))
        }
    }

    /// The privately estimated class prior `P(y = k)` (Eq. 14), or `None` before
    /// any samples have been reported. Negative perturbed counts are clamped to 0
    /// before normalization.
    pub fn prior_estimate(&self) -> Option<Vec<f64>> {
        if self.total_samples == 0 {
            return None;
        }
        let mut totals = vec![0.0; self.model.num_classes()];
        for p in self.progress.values() {
            for (t, &c) in totals.iter_mut().zip(p.label_counts.iter()) {
                *t += (c.max(0)) as f64;
            }
        }
        let sum: f64 = totals.iter().sum();
        if sum <= 0.0 {
            return Some(vec![0.0; self.model.num_classes()]);
        }
        Some(totals.into_iter().map(|t| t / sum).collect())
    }

    /// Whether the stopping criterion (`t ≥ T_max` or error estimate ≤ ρ) is met.
    pub fn stopped(&self) -> bool {
        if self.iteration >= self.config.max_iterations {
            return true;
        }
        if self.config.target_error > 0.0 {
            if let Some(err) = self.error_estimate() {
                // Require a minimal amount of evidence before trusting the noisy
                // estimate.
                if self.total_samples >= 20 && err <= self.config.target_error {
                    return true;
                }
            }
        }
        false
    }

    /// Server Routine 1: serve the current parameters.
    pub fn checkout(&self) -> CheckoutTicket {
        CheckoutTicket {
            iteration: self.iteration,
            params: self.params.clone(),
            stopped: self.stopped(),
        }
    }

    /// Server Routine 2: apply one sanitized checkin.
    pub fn checkin(&mut self, payload: &CheckinPayload) -> Result<CheckinOutcome> {
        if payload.gradient.dim() != self.params.len() {
            return Err(CoreError::Protocol(format!(
                "checkin gradient has dimension {}, expected {}",
                payload.gradient.dim(),
                self.params.len()
            )));
        }
        if payload.label_counts.len() != self.model.num_classes() {
            return Err(CoreError::Protocol(format!(
                "checkin reports {} label counts, expected {}",
                payload.label_counts.len(),
                self.model.num_classes()
            )));
        }
        if payload.num_samples == 0 {
            return Err(CoreError::Protocol(
                "checkin must cover at least one sample".into(),
            ));
        }

        self.apply_aggregate(&EpochAggregate::from_payload(payload))
    }

    /// The write path of the split server: applies one merged aggregation epoch.
    ///
    /// Folds every contributing device's monitoring counters (regardless of
    /// acceptance, so the server's view of data volume stays accurate) and, if
    /// the task has not stopped, takes one projected SGD step with the epoch's
    /// *mean* gradient `w ← Π_W[w − η(t)·(Σĝ)/k]`.
    pub fn apply_aggregate(&mut self, epoch: &EpochAggregate) -> Result<CheckinOutcome> {
        if epoch.gradient_sum.len() != self.params.len() {
            return Err(CoreError::Protocol(format!(
                "epoch gradient has dimension {}, expected {}",
                epoch.gradient_sum.len(),
                self.params.len()
            )));
        }
        if epoch.checkin_count == 0 || epoch.device_stats.is_empty() {
            return Err(CoreError::Protocol(
                "epoch must contain at least one checkin".into(),
            ));
        }
        for stats in &epoch.device_stats {
            if stats.label_counts.len() != self.model.num_classes() {
                return Err(CoreError::Protocol(format!(
                    "epoch reports {} label counts for device {}, expected {}",
                    stats.label_counts.len(),
                    stats.device_id,
                    self.model.num_classes()
                )));
            }
        }

        let staleness = self.iteration.saturating_sub(epoch.min_checkout_iteration);

        for stats in &epoch.device_stats {
            let progress = self
                .progress
                .entry(stats.device_id)
                .or_insert_with(|| DeviceProgress {
                    label_counts: vec![0; self.model.num_classes()],
                    ..DeviceProgress::default()
                });
            progress.samples += stats.samples;
            progress.errors += stats.errors;
            for (acc, &c) in progress
                .label_counts
                .iter_mut()
                .zip(stats.label_counts.iter())
            {
                *acc += c;
            }
            progress.checkins += stats.checkins;
            self.total_samples += stats.samples;
            self.total_errors += stats.errors;
        }

        // Charge the ε ledger in the same fixed device order as the fold, and
        // regardless of acceptance below — by the time a checkin reaches the
        // server the device has already spent the privacy budget, so the
        // ledger must count it even when the gradient is not applied.
        for (device_id, cost) in self.epoch_charges(epoch) {
            self.accountant
                .record(&budget_entity(device_id), cost)
                .map_err(CoreError::Privacy)?;
        }

        if self.stopped() {
            return Ok(CheckinOutcome {
                accepted: false,
                iteration: self.iteration,
                stopped: true,
                staleness,
            });
        }

        // The projected SGD update of Eq. 3, on the epoch's mean gradient.
        // Dividing by 1 is exact, so a singleton epoch reproduces the classic
        // per-checkin update bit for bit.
        let mut mean = epoch.gradient_sum.clone();
        mean.scale(1.0 / epoch.checkin_count as f64);
        self.iteration += 1;
        let eta = self.schedule.rate(self.iteration as usize, &mean);
        self.params
            .axpy(-eta, &mean)
            .map_err(|e| CoreError::Protocol(format!("update failed: {e}")))?;
        project_l2_ball(&mut self.params, self.config.radius);

        Ok(CheckinOutcome {
            accepted: true,
            iteration: self.iteration,
            stopped: self.stopped(),
            staleness,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use crowd_learning::MulticlassLogistic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn payload(device_id: u64, grad: Vec<f64>, iteration: u64) -> CheckinPayload {
        CheckinPayload {
            device_id,
            checkout_iteration: iteration,
            nonce: 0,
            gradient: Vector::from_vec(grad).into(),
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1, 0],
        }
    }

    fn server() -> Server<MulticlassLogistic> {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        Server::new(model, ServerConfig::new().with_rate_constant(1.0)).unwrap()
    }

    #[test]
    fn checkout_returns_current_state() {
        let s = server();
        let ticket = s.checkout();
        assert_eq!(ticket.iteration, 0);
        assert_eq!(ticket.params.len(), 6);
        assert!(!ticket.stopped);
    }

    #[test]
    fn checkin_applies_projected_update_and_counts() {
        let mut s = server();
        let g = vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let outcome = s.checkin(&payload(3, g, 0)).unwrap();
        assert!(outcome.accepted);
        assert_eq!(outcome.iteration, 1);
        assert_eq!(outcome.staleness, 0);
        // η(1) = 1/√1 = 1, so w moved by -1 on the first coordinate.
        assert!((s.params()[0] + 1.0).abs() < 1e-12);
        assert_eq!(s.total_samples(), 2);
        assert_eq!(s.active_devices(), 1);
        let progress = s.device_progress(3).unwrap();
        assert_eq!(progress.samples, 2);
        assert_eq!(progress.errors, 1);
        assert_eq!(progress.checkins, 1);
        assert_eq!(s.error_estimate(), Some(0.5));
        let prior = s.prior_estimate().unwrap();
        assert!((prior[0] - 0.5).abs() < 1e-12);
        assert_eq!(prior[2], 0.0);
    }

    #[test]
    fn staleness_is_measured_against_checkout_iteration() {
        let mut s = server();
        let g = vec![0.1; 6];
        s.checkin(&payload(0, g.clone(), 0)).unwrap();
        s.checkin(&payload(1, g.clone(), 0)).unwrap();
        let outcome = s.checkin(&payload(2, g, 0)).unwrap();
        assert_eq!(outcome.staleness, 2);
        assert_eq!(s.iteration(), 3);
    }

    #[test]
    fn projection_bounds_parameters() {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let mut config = ServerConfig::new().with_rate_constant(100.0);
        config.radius = 1.0;
        let mut s = Server::new(model, config).unwrap();
        s.checkin(&payload(0, vec![5.0; 6], 0)).unwrap();
        assert!(s.params().norm_l2() <= 1.0 + 1e-9);
    }

    #[test]
    fn stopping_on_max_iterations() {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let config = ServerConfig::new().with_max_iterations(2);
        let mut s = Server::new(model, config).unwrap();
        assert!(s.checkin(&payload(0, vec![0.1; 6], 0)).unwrap().accepted);
        let second = s.checkin(&payload(0, vec![0.1; 6], 1)).unwrap();
        assert!(second.accepted);
        assert!(second.stopped);
        // Once stopped, further gradients are rejected but still counted.
        let third = s.checkin(&payload(0, vec![0.1; 6], 2)).unwrap();
        assert!(!third.accepted);
        assert_eq!(s.iteration(), 2);
        assert!(s.checkout().stopped);
    }

    #[test]
    fn stopping_on_target_error() {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let config = ServerConfig::new().with_target_error(0.2);
        let mut s = Server::new(model, config).unwrap();
        // Report 30 samples with zero errors: estimate 0 ≤ 0.2 and enough evidence.
        let p = CheckinPayload {
            device_id: 1,
            checkout_iteration: 0,
            nonce: 0,
            gradient: Vector::zeros(6).into(),
            num_samples: 30,
            error_count: 0,
            label_counts: vec![10, 10, 10],
        };
        let outcome = s.checkin(&p).unwrap();
        assert!(outcome.stopped);
    }

    #[test]
    fn malformed_checkins_rejected() {
        let mut s = server();
        let bad_dim = CheckinPayload {
            device_id: 0,
            checkout_iteration: 0,
            nonce: 0,
            gradient: Vector::zeros(5).into(),
            num_samples: 1,
            error_count: 0,
            label_counts: vec![0, 0, 0],
        };
        assert!(s.checkin(&bad_dim).is_err());
        let bad_counts = CheckinPayload {
            device_id: 0,
            checkout_iteration: 0,
            nonce: 0,
            gradient: Vector::zeros(6).into(),
            num_samples: 1,
            error_count: 0,
            label_counts: vec![0, 0],
        };
        assert!(s.checkin(&bad_counts).is_err());
        let zero_samples = CheckinPayload {
            device_id: 0,
            checkout_iteration: 0,
            nonce: 0,
            gradient: Vector::zeros(6).into(),
            num_samples: 0,
            error_count: 0,
            label_counts: vec![0, 0, 0],
        };
        assert!(s.checkin(&zero_samples).is_err());
        assert_eq!(s.iteration(), 0);
    }

    #[test]
    fn random_init_is_small_and_inside_ball() {
        let model = MulticlassLogistic::new(4, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let s = Server::with_random_init(model, ServerConfig::new(), &mut rng).unwrap();
        assert!(s.params().norm_l2() > 0.0);
        assert!(s.params().norm_l2() <= s.config().radius);
        assert_eq!(s.error_estimate(), None);
        assert_eq!(s.prior_estimate(), None);
    }

    #[test]
    fn singleton_aggregate_matches_classic_checkin_bitwise() {
        let mut classic = server();
        let mut split = server();
        for (device, step) in [(0u64, 0u64), (1, 0), (0, 1), (2, 2)] {
            let g: Vec<f64> = (0..6).map(|i| 0.3 * (i as f64 + 1.0) / 7.0).collect();
            let a = classic.checkin(&payload(device, g.clone(), step)).unwrap();
            let b = split
                .apply_aggregate(&EpochAggregate::from_payload(&payload(device, g, step)))
                .unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(classic.params().as_slice(), split.params().as_slice());
        assert_eq!(classic.iteration(), split.iteration());
        assert_eq!(classic.total_samples(), split.total_samples());
    }

    #[test]
    fn multi_checkin_epoch_applies_mean_gradient_once() {
        let mut s = server();
        let epoch = EpochAggregate {
            // Two checkins whose gradients sum to (2, 0, ...): the mean (1, 0, ...)
            // moves w by -η(1)·1 = -1 on the first coordinate, in ONE iteration.
            gradient_sum: Vector::from_vec(vec![2.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
            checkin_count: 2,
            min_checkout_iteration: 0,
            device_stats: vec![
                DeviceEpochStats {
                    device_id: 1,
                    checkins: 1,
                    samples: 2,
                    errors: 1,
                    label_counts: vec![1, 1, 0],
                },
                DeviceEpochStats {
                    device_id: 2,
                    checkins: 1,
                    samples: 3,
                    errors: 0,
                    label_counts: vec![0, 2, 1],
                },
            ],
        };
        let outcome = s.apply_aggregate(&epoch).unwrap();
        assert!(outcome.accepted);
        assert_eq!(outcome.iteration, 1);
        assert!((s.params()[0] + 1.0).abs() < 1e-12);
        assert_eq!(s.total_samples(), 5);
        assert_eq!(s.active_devices(), 2);
        assert_eq!(s.device_progress(2).unwrap().checkins, 1);
    }

    #[test]
    fn malformed_epochs_rejected() {
        let mut s = server();
        let empty = EpochAggregate {
            gradient_sum: Vector::zeros(6),
            checkin_count: 0,
            min_checkout_iteration: 0,
            device_stats: vec![],
        };
        assert!(s.apply_aggregate(&empty).is_err());
        let bad_dim = EpochAggregate {
            gradient_sum: Vector::zeros(5),
            checkin_count: 1,
            min_checkout_iteration: 0,
            device_stats: vec![DeviceEpochStats {
                device_id: 0,
                checkins: 1,
                samples: 1,
                errors: 0,
                label_counts: vec![0, 0, 0],
            }],
        };
        assert!(s.apply_aggregate(&bad_dim).is_err());
        let bad_counts = EpochAggregate {
            gradient_sum: Vector::zeros(6),
            checkin_count: 1,
            min_checkout_iteration: 0,
            device_stats: vec![DeviceEpochStats {
                device_id: 0,
                checkins: 1,
                samples: 1,
                errors: 0,
                label_counts: vec![0, 0],
            }],
        };
        assert!(s.apply_aggregate(&bad_counts).is_err());
        assert_eq!(s.iteration(), 0);
        assert_eq!(s.total_samples(), 0);
    }

    #[test]
    fn budget_accounting_tracks_and_flags_exhaustion() {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let config = ServerConfig::new().with_budget(0.5, 1.0);
        let mut s = Server::new(model, config).unwrap();
        assert_eq!(s.budget_spent(7), 0.0);
        assert!(!s.budget_exhausted(7));
        s.checkin(&payload(7, vec![0.1; 6], 0)).unwrap();
        assert!((s.budget_spent(7) - 0.5).abs() < 1e-12);
        assert!(!s.budget_exhausted(7));
        // The checkin that reaches the ceiling is still counted in full.
        s.checkin(&payload(7, vec![0.1; 6], 1)).unwrap();
        assert!((s.budget_spent(7) - 1.0).abs() < 1e-12);
        assert!(s.budget_exhausted(7));
        assert!(!s.budget_exhausted(8));
        assert_eq!(s.budget_ledger(), vec![(7, 1.0)]);
        // Disabled accounting keeps the ledger empty and never exhausts.
        let mut off = server();
        off.checkin(&payload(3, vec![0.1; 6], 0)).unwrap();
        assert!(off.budget_ledger().is_empty());
        assert!(!off.budget_exhausted(3));
        // A valid ceiling below the absolute slack must not pre-exhaust
        // never-charged devices.
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let tiny = Server::new(model, ServerConfig::new().with_budget(1e-14, 1e-13)).unwrap();
        assert!(!tiny.budget_exhausted(0));
    }

    #[test]
    fn epoch_charges_are_per_device_checkin_counts() {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let s = Server::new(model, ServerConfig::new().with_budget(0.25, f64::INFINITY)).unwrap();
        let epoch = EpochAggregate {
            gradient_sum: Vector::zeros(6),
            checkin_count: 3,
            min_checkout_iteration: 0,
            device_stats: vec![
                DeviceEpochStats {
                    device_id: 1,
                    checkins: 2,
                    samples: 4,
                    errors: 0,
                    label_counts: vec![2, 2, 0],
                },
                DeviceEpochStats {
                    device_id: 5,
                    checkins: 1,
                    samples: 2,
                    errors: 1,
                    label_counts: vec![1, 1, 0],
                },
            ],
        };
        assert_eq!(s.epoch_charges(&epoch), vec![(1, 0.5), (5, 0.25)]);
    }

    #[test]
    fn export_restore_round_trips_bitwise() {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let config = ServerConfig::new()
            .with_rate_constant(1.0)
            .with_budget(0.1, 10.0);
        let mut original = Server::new(model, config.clone()).unwrap();
        for (device, step) in [(4u64, 0u64), (1, 0), (4, 1), (9, 2)] {
            let g: Vec<f64> = (0..6).map(|i| 0.17 * (i as f64 - 2.5)).collect();
            original.checkin(&payload(device, g, step)).unwrap();
        }
        let state = original.export_state();
        // The exported layout is sorted by device id.
        let ids: Vec<u64> = state.progress.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![1, 4, 9]);
        let ledger_ids: Vec<u64> = state.budget_ledger.iter().map(|&(id, _)| id).collect();
        assert_eq!(ledger_ids, vec![1, 4, 9]);

        let model = MulticlassLogistic::new(2, 3).unwrap();
        let mut restored = Server::restore(model, config, state.clone()).unwrap();
        assert_eq!(restored.params().as_slice(), original.params().as_slice());
        assert_eq!(restored.iteration(), original.iteration());
        assert_eq!(restored.total_samples(), original.total_samples());
        assert_eq!(restored.budget_ledger(), original.budget_ledger());
        assert_eq!(restored.export_state(), state);

        // The restored server continues exactly where the original would: the
        // next checkin produces bitwise-identical parameters on both.
        let g = vec![0.3, -0.2, 0.1, 0.0, -0.4, 0.2];
        original.checkin(&payload(2, g.clone(), 3)).unwrap();
        restored.checkin(&payload(2, g, 3)).unwrap();
        assert_eq!(restored.params().as_slice(), original.params().as_slice());
        assert_eq!(restored.export_state(), original.export_state());
    }

    #[test]
    fn restore_rejects_mismatched_state() {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let mut s = Server::new(model, ServerConfig::new()).unwrap();
        s.checkin(&payload(0, vec![0.1; 6], 0)).unwrap();
        let mut bad_params = s.export_state();
        bad_params.params = Vector::zeros(5);
        let model = MulticlassLogistic::new(2, 3).unwrap();
        assert!(Server::restore(model, ServerConfig::new(), bad_params).is_err());
        let mut bad_counts = s.export_state();
        bad_counts.progress[0].1.label_counts = vec![0, 0];
        let model = MulticlassLogistic::new(2, 3).unwrap();
        assert!(Server::restore(model, ServerConfig::new(), bad_counts).is_err());
    }

    #[test]
    fn negative_perturbed_counts_clamp_in_estimates() {
        let mut s = server();
        let p = CheckinPayload {
            device_id: 0,
            checkout_iteration: 0,
            nonce: 0,
            gradient: Vector::zeros(6).into(),
            num_samples: 5,
            error_count: -3,
            label_counts: vec![-2, 4, 1],
        };
        s.checkin(&p).unwrap();
        assert_eq!(s.error_estimate(), Some(0.0));
        let prior = s.prior_estimate().unwrap();
        assert_eq!(prior[0], 0.0);
        assert!((prior.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
