//! Server-side state machine: Server Routines 1–2 of Algorithm 2.
//!
//! The [`Server`] hands out the current parameters on checkout, applies the
//! projected SGD update `w ← Π_W[w − η(t)·ĝ]` on checkin, accumulates the
//! per-device counters `N_s^m`, `N_e^m`, `N_y^{k,m}`, and evaluates the stopping
//! criterion `t ≥ T_max` or `Σ N_e / Σ N_s ≤ ρ`.

use crate::config::{RoundSettings, ServerConfig};
use crate::device::CheckinPayload;
use crate::error::CoreError;
use crate::Result;
use crowd_dp::BudgetAccountant;
use crowd_learning::model::Model;
use crowd_learning::LearningRate;
use crowd_linalg::ops::project_l2_ball;
use crowd_linalg::random::normal_vector;
use crowd_linalg::Vector;
use rand::Rng;
use std::collections::BTreeMap;

/// Per-device progress statistics maintained by the server.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceProgress {
    /// Total samples reported (`N_s^m`).
    pub samples: u64,
    /// Total (perturbed) misclassifications reported (`N_e^m`).
    pub errors: i64,
    /// Total (perturbed) per-class label counts (`N_y^{k,m}`).
    pub label_counts: Vec<i64>,
    /// Number of checkins received from the device.
    pub checkins: u64,
}

/// The result of serving a checkout request (Server Routine 1).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckoutTicket {
    /// The server iteration at which the parameters were read.
    pub iteration: u64,
    /// A copy of the current parameters.
    pub params: Vector,
    /// Whether the stopping criterion has already been met.
    pub stopped: bool,
}

/// Per-device contribution to one aggregation epoch.
///
/// Produced by the sharded accumulation runtime (`crowd-agg`): each device's
/// checkins within the epoch are pre-summed on the device's shard, and the
/// merged epoch lists devices in ascending-id order so the floating-point fold
/// is bitwise reproducible regardless of shard count or thread interleaving.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceEpochStats {
    /// The contributing device.
    pub device_id: u64,
    /// Checkins the device contributed to this epoch.
    pub checkins: u64,
    /// Samples reported (`Σ n_s` over the device's epoch checkins).
    pub samples: u64,
    /// Perturbed misclassification counts (`Σ n̂_e`).
    pub errors: i64,
    /// Perturbed per-class label counts (`Σ n̂_y^k`).
    pub label_counts: Vec<i64>,
}

/// A merged aggregation epoch: the write-path input of the split server.
///
/// [`Server::checkout`] is the read path (a parameter snapshot); applying one of
/// these is the entire write path. With `checkin_count == 1` the update is
/// bit-for-bit the paper's per-checkin step `w ← Π_W[w − η(t)ĝ]`; with more
/// checkins the *mean* of the epoch's gradients is applied as one step.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochAggregate {
    /// Sum of the sanitized gradients folded in fixed device order.
    pub gradient_sum: Vector,
    /// Number of checkins in the epoch (the divisor for the mean gradient).
    pub checkin_count: u64,
    /// The oldest checkout iteration among the epoch's checkins (staleness is
    /// measured against the most out-of-date contribution).
    pub min_checkout_iteration: u64,
    /// Per-device monitoring statistics, ascending by device id.
    pub device_stats: Vec<DeviceEpochStats>,
}

impl EpochAggregate {
    /// The aggregate of a single checkin; applying it is equivalent to the
    /// classic [`Server::checkin`].
    pub fn from_payload(payload: &CheckinPayload) -> Self {
        EpochAggregate {
            gradient_sum: payload.gradient.to_dense(),
            checkin_count: 1,
            min_checkout_iteration: payload.checkout_iteration,
            device_stats: vec![DeviceEpochStats {
                device_id: payload.device_id,
                checkins: 1,
                samples: payload.num_samples as u64,
                errors: payload.error_count,
                label_counts: payload.label_counts.clone(),
            }],
        }
    }
}

/// The result of applying a checkin (Server Routine 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckinOutcome {
    /// Whether the gradient was applied (a stopped server rejects new gradients).
    pub accepted: bool,
    /// The server iteration after this checkin.
    pub iteration: u64,
    /// Whether the stopping criterion is now met.
    pub stopped: bool,
    /// How many updates happened between the device's checkout and this checkin
    /// (the staleness the delay analysis of §IV-B3 reasons about).
    pub staleness: u64,
    /// `true` when this outcome is a replay of an earlier identical checkin
    /// (same device and nonce) rather than a fresh apply. The core apply path
    /// never sets this; the deduplicating runtime does when it answers a
    /// retried request from its table.
    pub deduped: bool,
}

/// One selected device's masked round contribution, held by the server until
/// its round finalizes (cohort complete or deadline reached).
#[derive(Debug, Clone, PartialEq)]
pub struct PendingSubmission {
    /// The contributing device.
    pub device_id: u64,
    /// The checkin's idempotency nonce (identifies the submission on retry).
    pub nonce: u64,
    /// The server iteration the device checked parameters out at.
    pub checkout_iteration: u64,
    /// The masked gradient words (`crowd_rounds::mask` output), one per
    /// coordinate.
    pub words: Vec<u64>,
    /// Samples behind the gradient (`n_s`).
    pub num_samples: u32,
    /// Perturbed misclassification count (`n̂_e`).
    pub error_count: i64,
    /// Perturbed per-class label counts (`n̂_y^k`).
    pub label_counts: Vec<i64>,
}

/// Round protocol state in the deterministic snapshot layout: everything
/// needed to resume a half-finished round after a crash. The cohort is *not*
/// stored — it is recomputed from the configured [`RoundSettings`] and the
/// round id, exactly as every device recomputes it.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundStateSnapshot {
    /// The currently open round (starts at 1).
    pub round_id: u64,
    /// Server iteration when the round opened; the round expires once
    /// `iteration ≥ opened_iteration + deadline_epochs`.
    pub opened_iteration: u64,
    /// Submissions accepted so far, ascending by device id.
    pub pending: Vec<PendingSubmission>,
}

/// How the server classified a round submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundAdmission {
    /// Recorded; `cohort_complete` when every cohort member has now submitted
    /// (the caller should finalize the round).
    Accepted {
        /// Whether this submission completed the cohort.
        cohort_complete: bool,
    },
    /// The device already contributed this exact `(round_id, nonce)` — either
    /// to the still-open round or to an already-finalized one. The original
    /// acceptance stands; nothing was recorded twice.
    Duplicate,
    /// The named round is no longer (or not yet) the server's current round;
    /// the device must refetch parameters and resync.
    Outdated {
        /// The server's current round id, for the device's resync.
        current_round: u64,
    },
    /// The device is not in the round's cohort and must free-run instead.
    NotSelected,
}

/// The current round's published parameters (the server-side source of the
/// wire-level `RoundParams`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundInfo {
    /// The currently open round (starts at 1; 0 is reserved for "free-run").
    pub round_id: u64,
    /// This round's derived selection/mask seed.
    pub seed: u64,
    /// Configured cohort fraction.
    pub select_fraction: f64,
    /// Configured deadline in applied epochs.
    pub deadline_epochs: u32,
    /// Configured device population.
    pub population: u64,
}

/// Live round bookkeeping inside the server.
#[derive(Debug, Clone)]
struct RoundRuntime {
    round_id: u64,
    opened_iteration: u64,
    /// Derived seed for this round (cached from `round_seed`).
    seed: u64,
    /// Ascending cohort member ids for this round.
    cohort: Vec<u64>,
    /// Accepted submissions by device id.
    pending: BTreeMap<u64, PendingSubmission>,
}

impl RoundRuntime {
    fn open(settings: &RoundSettings, round_id: u64, opened_iteration: u64) -> Self {
        let seed = crowd_rounds::round_seed(settings.seed, round_id);
        let cohort = crowd_rounds::cohort(seed, settings.population, settings.select_fraction);
        RoundRuntime {
            round_id,
            opened_iteration,
            seed,
            cohort,
            pending: BTreeMap::new(),
        }
    }
}

/// The complete mutable state of a [`Server`], in a deterministic layout.
///
/// This is what the persistence subsystem (`crowd-store`) snapshots and what
/// [`Server::restore`] rebuilds: parameters, iteration, the learning-rate
/// schedule position (including AdaGrad's accumulated squared gradients — the
/// only stateful schedule), the per-device monitoring counters, and the
/// per-device ε ledger. All maps are exported sorted by device id so two
/// bitwise-equal servers export bitwise-equal states. The model and the
/// [`ServerConfig`] are *not* part of the state; restoring requires the same
/// ones the original server ran with.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerState {
    /// The global parameters `w`.
    pub params: Vector,
    /// Number of applied epochs `t`.
    pub iteration: u64,
    /// Total samples reported across devices.
    pub total_samples: u64,
    /// Total (perturbed) misclassifications reported across devices.
    pub total_errors: i64,
    /// Per-device monitoring counters, ascending by device id.
    pub progress: Vec<(u64, DeviceProgress)>,
    /// The learning-rate schedule, including any internal position/state.
    pub schedule: LearningRate,
    /// Per-device cumulative ε spend, ascending by device id.
    pub budget_ledger: Vec<(u64, f64)>,
    /// The open round (with its pending submissions) when the round protocol
    /// is configured; `None` on a free-running server.
    pub round: Option<RoundStateSnapshot>,
    /// Per-device `(round_id, nonce)` of the last accepted round submission,
    /// ascending by device id. Lets a retry that straddles a round advance be
    /// answered as a duplicate instead of `Outdated` (which would provoke a
    /// double contribution).
    pub last_round: Vec<(u64, u64, u64)>,
}

/// The Crowd-ML server.
#[derive(Debug, Clone)]
pub struct Server<M: Model> {
    model: M,
    config: ServerConfig,
    schedule: LearningRate,
    params: Vector,
    iteration: u64,
    // A BTreeMap so per-device progress iterates in device-id order: it feeds
    // exported state and the class-prior estimate, which must be reproducible.
    progress: BTreeMap<u64, DeviceProgress>,
    total_samples: u64,
    total_errors: i64,
    accountant: BudgetAccountant,
    /// The open round when `config.rounds` is set.
    round: Option<RoundRuntime>,
    /// Per-device `(round_id, nonce)` of the last accepted round submission.
    last_round: BTreeMap<u64, (u64, u64)>,
}

/// Ledger key for a device (the accountant tracks entities by string).
fn budget_entity(device_id: u64) -> String {
    device_id.to_string()
}

impl<M: Model> Server<M> {
    /// Creates a server with zero-initialized parameters.
    pub fn new(model: M, config: ServerConfig) -> Result<Self> {
        config.validate()?;
        let params = model.init_params();
        let accountant = BudgetAccountant::new(config.budget.ceiling);
        let round = config
            .rounds
            .as_ref()
            .map(|settings| RoundRuntime::open(settings, 1, 0));
        Ok(Server {
            schedule: config.schedule.clone(),
            model,
            config,
            params,
            iteration: 0,
            progress: BTreeMap::new(),
            total_samples: 0,
            total_errors: 0,
            accountant,
            round,
            last_round: BTreeMap::new(),
        })
    }

    /// Creates a server with small random initial parameters (Algorithm 2's
    /// "randomized w" initialization), scaled to fit well inside the projection
    /// ball.
    pub fn with_random_init<R: Rng + ?Sized>(
        model: M,
        config: ServerConfig,
        rng: &mut R,
    ) -> Result<Self> {
        let mut server = Server::new(model, config)?;
        let mut init = normal_vector(rng, server.params.len());
        init.scale(0.01);
        project_l2_ball(&mut init, server.config.radius);
        server.params = init;
        Ok(server)
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The current parameters.
    pub fn params(&self) -> &Vector {
        &self.params
    }

    /// The current iteration `t` (number of applied checkins).
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Total samples reported across devices (`Σ_m N_s^m`).
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Number of devices that have checked in at least once.
    pub fn active_devices(&self) -> usize {
        self.progress.len()
    }

    /// Per-device progress, if the device has checked in.
    pub fn device_progress(&self, device_id: u64) -> Option<&DeviceProgress> {
        self.progress.get(&device_id)
    }

    /// Total ε spent so far by `device_id` (zero if never charged).
    pub fn budget_spent(&self, device_id: u64) -> f64 {
        self.accountant.spent(&budget_entity(device_id))
    }

    /// `true` when the device has reached its ε ceiling and must not be
    /// queried further. Always `false` while accounting is disabled.
    pub fn budget_exhausted(&self, device_id: u64) -> bool {
        // The float-accumulation slack scales down with the ceiling so a tiny
        // (but valid) ceiling is not pre-exhausted for never-charged devices.
        let ceiling = self.config.budget.ceiling;
        let slack = 1e-12 * ceiling.min(1.0);
        !self.config.budget.is_disabled() && self.budget_spent(device_id) >= ceiling - slack
    }

    /// The per-device ε ledger, ascending by device id.
    pub fn budget_ledger(&self) -> Vec<(u64, f64)> {
        let mut ledger: Vec<(u64, f64)> = self
            .accountant
            .iter()
            .filter_map(|(entity, spent)| entity.parse::<u64>().ok().map(|id| (id, spent)))
            .collect();
        ledger.sort_unstable_by_key(|&(id, _)| id);
        ledger
    }

    /// The ε each device in `epoch` will be charged when the epoch is applied:
    /// `per_checkin_epsilon · checkins`, ascending by device id. Pure — safe to
    /// compute before [`Server::apply_aggregate`] (e.g. for a write-ahead log
    /// entry) and deterministic, so a recovery replay recomputes it bit for bit.
    pub fn epoch_charges(&self, epoch: &EpochAggregate) -> Vec<(u64, f64)> {
        if self.config.budget.is_disabled() {
            return Vec::new();
        }
        epoch
            .device_stats
            .iter()
            .map(|stats| {
                (
                    stats.device_id,
                    self.config.budget.per_checkin_epsilon * stats.checkins as f64,
                )
            })
            .collect()
    }

    /// The current round's published parameters, or `None` on a free-running
    /// server.
    pub fn round_info(&self) -> Option<RoundInfo> {
        let (round, settings) = (self.round.as_ref()?, self.config.rounds.as_ref()?);
        Some(RoundInfo {
            round_id: round.round_id,
            seed: round.seed,
            select_fraction: settings.select_fraction,
            deadline_epochs: settings.deadline_epochs,
            population: settings.population,
        })
    }

    /// The current round's cohort (ascending device ids), or `None` on a
    /// free-running server.
    pub fn round_cohort(&self) -> Option<&[u64]> {
        self.round.as_ref().map(|r| r.cohort.as_slice())
    }

    /// Submissions accepted into the open round and not yet finalized.
    pub fn round_pending(&self) -> usize {
        self.round.as_ref().map_or(0, |r| r.pending.len())
    }

    /// Classifies and (when current) records one masked round submission.
    ///
    /// On [`RoundAdmission::Accepted`] the submission is pending until
    /// [`Server::finalize_round`]; the device's `(round_id, nonce)` is also
    /// remembered so a retried submission — even one arriving after the round
    /// advanced — is answered [`RoundAdmission::Duplicate`] instead of being
    /// double-counted or bounced into a second contribution.
    pub fn round_submit(
        &mut self,
        round_id: u64,
        submission: PendingSubmission,
    ) -> Result<RoundAdmission> {
        let num_classes = self.model.num_classes();
        let dim = self.params.len();
        let round = self.round.as_mut().ok_or_else(|| {
            CoreError::Protocol("round submission to a server without rounds".into())
        })?;
        if self.last_round.get(&submission.device_id) == Some(&(round_id, submission.nonce)) {
            return Ok(RoundAdmission::Duplicate);
        }
        if round_id != round.round_id {
            return Ok(RoundAdmission::Outdated {
                current_round: round.round_id,
            });
        }
        if round.cohort.binary_search(&submission.device_id).is_err() {
            return Ok(RoundAdmission::NotSelected);
        }
        if round.pending.contains_key(&submission.device_id) {
            // Same device, same round, different nonce: the device lost the
            // ack and re-derived a nonce. Its contribution already stands.
            return Ok(RoundAdmission::Duplicate);
        }
        if submission.words.len() != dim {
            return Err(CoreError::Protocol(format!(
                "round submission has {} masked words, expected {dim}",
                submission.words.len()
            )));
        }
        if submission.label_counts.len() != num_classes {
            return Err(CoreError::Protocol(format!(
                "round submission reports {} label counts, expected {num_classes}",
                submission.label_counts.len()
            )));
        }
        if submission.num_samples == 0 {
            return Err(CoreError::Protocol(
                "round submission must cover at least one sample".into(),
            ));
        }
        self.last_round
            .insert(submission.device_id, (round_id, submission.nonce));
        round.pending.insert(submission.device_id, submission);
        Ok(RoundAdmission::Accepted {
            cohort_complete: round.pending.len() == round.cohort.len(),
        })
    }

    /// Whether the open round has passed its deadline
    /// (`iteration ≥ opened_iteration + deadline_epochs`). Always `false` on
    /// a free-running server.
    pub fn round_expired(&self) -> bool {
        match (&self.round, &self.config.rounds) {
            (Some(round), Some(settings)) => {
                self.iteration >= round.opened_iteration + settings.deadline_epochs as u64
            }
            _ => false,
        }
    }

    /// Closes the open round and opens the next one: unmasks the survivors'
    /// submissions (recomputing each one's full-cohort net mask — the dropout
    /// compensation), folds them in ascending device order, and returns the
    /// closed round id plus the finalization epoch (`None` when nobody
    /// submitted). The caller applies the epoch through the ordinary
    /// [`Server::apply_aggregate`] path, which is what makes the finalized
    /// cohort sum bitwise identical to the unmasked equivalent.
    pub fn finalize_round(&mut self) -> Result<(u64, Option<EpochAggregate>)> {
        let settings = *self.config.rounds.as_ref().ok_or_else(|| {
            CoreError::Protocol("finalize_round on a server without rounds".into())
        })?;
        let dim = self.params.len();
        let round = self
            .round
            .as_mut()
            .ok_or_else(|| CoreError::Protocol("no open round".into()))?;
        let closed = round.round_id;
        let epoch = if round.pending.is_empty() {
            None
        } else {
            let survivors: Vec<(u64, Vec<u64>)> = round
                .pending
                .values()
                .map(|s| (s.device_id, s.words.clone()))
                .collect();
            let sum = crowd_rounds::finalize_sum(round.seed, &round.cohort, &survivors, dim)
                .ok_or_else(|| {
                    CoreError::Protocol("round survivors inconsistent with cohort".into())
                })?;
            let min_checkout_iteration = round
                .pending
                .values()
                .map(|s| s.checkout_iteration)
                .min()
                .unwrap_or(0);
            // BTreeMap iteration gives the ascending device order the
            // deterministic fold requires.
            let device_stats = round
                .pending
                .values()
                .map(|s| DeviceEpochStats {
                    device_id: s.device_id,
                    checkins: 1,
                    samples: s.num_samples as u64,
                    errors: s.error_count,
                    label_counts: s.label_counts.clone(),
                })
                .collect();
            Some(EpochAggregate {
                gradient_sum: Vector::from_vec(sum),
                checkin_count: round.pending.len() as u64,
                min_checkout_iteration,
                device_stats,
            })
        };
        self.round = Some(RoundRuntime::open(&settings, closed + 1, self.iteration));
        Ok((closed, epoch))
    }

    /// Replay counterpart of the round advance inside
    /// [`Server::finalize_round`]: closes `closed_round_id` (which must be
    /// the open round) and opens its successor, discarding pending
    /// submissions — the finalization epoch, if any, is replayed separately
    /// as an ordinary epoch record.
    pub fn advance_round(&mut self, closed_round_id: u64) -> Result<()> {
        let settings = *self.config.rounds.as_ref().ok_or_else(|| {
            CoreError::Protocol("advance_round on a server without rounds".into())
        })?;
        let round = self
            .round
            .as_ref()
            .ok_or_else(|| CoreError::Protocol("no open round".into()))?;
        if round.round_id != closed_round_id {
            return Err(CoreError::Protocol(format!(
                "advance closes round {closed_round_id} but round {} is open",
                round.round_id
            )));
        }
        self.round = Some(RoundRuntime::open(
            &settings,
            closed_round_id + 1,
            self.iteration,
        ));
        Ok(())
    }

    /// Exports the complete mutable state in the deterministic layout of
    /// [`ServerState`] (maps sorted by device id).
    pub fn export_state(&self) -> ServerState {
        // BTreeMap iteration is already ascending by device id.
        let progress: Vec<(u64, DeviceProgress)> = self
            .progress
            .iter()
            .map(|(&id, p)| (id, p.clone()))
            .collect();
        ServerState {
            params: self.params.clone(),
            iteration: self.iteration,
            total_samples: self.total_samples,
            total_errors: self.total_errors,
            progress,
            schedule: self.schedule.clone(),
            budget_ledger: self.budget_ledger(),
            round: self.round.as_ref().map(|r| RoundStateSnapshot {
                round_id: r.round_id,
                opened_iteration: r.opened_iteration,
                pending: r.pending.values().cloned().collect(),
            }),
            last_round: self
                .last_round
                .iter()
                .map(|(&d, &(r, n))| (d, r, n))
                .collect(),
        }
    }

    /// Rebuilds a server from an exported [`ServerState`].
    ///
    /// `model` and `config` must be the ones the exporting server ran with (the
    /// state stores neither); the parameter dimension is checked, the rest is
    /// the caller's contract. The restored server is bitwise identical to the
    /// exporter: same parameters, iteration, schedule position, counters, and
    /// ε ledger.
    pub fn restore(model: M, config: ServerConfig, state: ServerState) -> Result<Self> {
        let mut server = Server::new(model, config)?;
        if state.params.len() != server.params.len() {
            return Err(CoreError::Protocol(format!(
                "restored parameters have dimension {}, model expects {}",
                state.params.len(),
                server.params.len()
            )));
        }
        for (_, progress) in &state.progress {
            if progress.label_counts.len() != server.model.num_classes() {
                return Err(CoreError::Protocol(format!(
                    "restored progress has {} label counts, model expects {}",
                    progress.label_counts.len(),
                    server.model.num_classes()
                )));
            }
        }
        server.params = state.params;
        server.iteration = state.iteration;
        server.total_samples = state.total_samples;
        server.total_errors = state.total_errors;
        server.progress = state.progress.into_iter().collect();
        server.schedule = state.schedule;
        match (&server.config.rounds, state.round) {
            (Some(settings), Some(snap)) => {
                // Reopen the round and recompute its cohort from config, as
                // every device does; only the pending submissions are data.
                let mut round = RoundRuntime::open(settings, snap.round_id, snap.opened_iteration);
                for sub in snap.pending {
                    round.pending.insert(sub.device_id, sub);
                }
                server.round = Some(round);
            }
            (None, None) => {}
            (Some(_), None) | (None, Some(_)) => {
                return Err(CoreError::Protocol(
                    "round configuration does not match the persisted state".into(),
                ));
            }
        }
        server.last_round = state
            .last_round
            .into_iter()
            .map(|(d, r, n)| (d, (r, n)))
            .collect();
        server
            .accountant
            .restore_spent(
                state
                    .budget_ledger
                    .into_iter()
                    .map(|(id, spent)| (budget_entity(id), spent)),
            )
            .map_err(CoreError::Privacy)?;
        Ok(server)
    }

    /// The privately estimated overall error rate `Σ N_e / Σ N_s` (Eq. 14), or
    /// `None` before any samples have been reported. Clamped to `[0, 1]` since the
    /// perturbed counts can stray outside the valid range.
    pub fn error_estimate(&self) -> Option<f64> {
        if self.total_samples == 0 {
            None
        } else {
            Some((self.total_errors as f64 / self.total_samples as f64).clamp(0.0, 1.0))
        }
    }

    /// The privately estimated class prior `P(y = k)` (Eq. 14), or `None` before
    /// any samples have been reported. Negative perturbed counts are clamped to 0
    /// before normalization.
    pub fn prior_estimate(&self) -> Option<Vec<f64>> {
        if self.total_samples == 0 {
            return None;
        }
        let mut totals = vec![0.0; self.model.num_classes()];
        for p in self.progress.values() {
            for (t, &c) in totals.iter_mut().zip(p.label_counts.iter()) {
                *t += (c.max(0)) as f64;
            }
        }
        let sum: f64 = totals.iter().sum();
        if sum <= 0.0 {
            return Some(vec![0.0; self.model.num_classes()]);
        }
        Some(totals.into_iter().map(|t| t / sum).collect())
    }

    /// Whether the stopping criterion (`t ≥ T_max` or error estimate ≤ ρ) is met.
    pub fn stopped(&self) -> bool {
        if self.iteration >= self.config.max_iterations {
            return true;
        }
        if self.config.target_error > 0.0 {
            if let Some(err) = self.error_estimate() {
                // Require a minimal amount of evidence before trusting the noisy
                // estimate.
                if self.total_samples >= 20 && err <= self.config.target_error {
                    return true;
                }
            }
        }
        false
    }

    /// Server Routine 1: serve the current parameters.
    pub fn checkout(&self) -> CheckoutTicket {
        CheckoutTicket {
            iteration: self.iteration,
            params: self.params.clone(),
            stopped: self.stopped(),
        }
    }

    /// Server Routine 2: apply one sanitized checkin.
    pub fn checkin(&mut self, payload: &CheckinPayload) -> Result<CheckinOutcome> {
        if payload.gradient.dim() != self.params.len() {
            return Err(CoreError::Protocol(format!(
                "checkin gradient has dimension {}, expected {}",
                payload.gradient.dim(),
                self.params.len()
            )));
        }
        if payload.label_counts.len() != self.model.num_classes() {
            return Err(CoreError::Protocol(format!(
                "checkin reports {} label counts, expected {}",
                payload.label_counts.len(),
                self.model.num_classes()
            )));
        }
        if payload.num_samples == 0 {
            return Err(CoreError::Protocol(
                "checkin must cover at least one sample".into(),
            ));
        }

        self.apply_aggregate(&EpochAggregate::from_payload(payload))
    }

    /// The write path of the split server: applies one merged aggregation epoch.
    ///
    /// Folds every contributing device's monitoring counters (regardless of
    /// acceptance, so the server's view of data volume stays accurate) and, if
    /// the task has not stopped, takes one projected SGD step with the epoch's
    /// *mean* gradient `w ← Π_W[w − η(t)·(Σĝ)/k]`.
    pub fn apply_aggregate(&mut self, epoch: &EpochAggregate) -> Result<CheckinOutcome> {
        if epoch.gradient_sum.len() != self.params.len() {
            return Err(CoreError::Protocol(format!(
                "epoch gradient has dimension {}, expected {}",
                epoch.gradient_sum.len(),
                self.params.len()
            )));
        }
        if epoch.checkin_count == 0 || epoch.device_stats.is_empty() {
            return Err(CoreError::Protocol(
                "epoch must contain at least one checkin".into(),
            ));
        }
        for stats in &epoch.device_stats {
            if stats.label_counts.len() != self.model.num_classes() {
                return Err(CoreError::Protocol(format!(
                    "epoch reports {} label counts for device {}, expected {}",
                    stats.label_counts.len(),
                    stats.device_id,
                    self.model.num_classes()
                )));
            }
        }

        let staleness = self.iteration.saturating_sub(epoch.min_checkout_iteration);

        for stats in &epoch.device_stats {
            let progress = self
                .progress
                .entry(stats.device_id)
                .or_insert_with(|| DeviceProgress {
                    label_counts: vec![0; self.model.num_classes()],
                    ..DeviceProgress::default()
                });
            progress.samples += stats.samples;
            progress.errors += stats.errors;
            for (acc, &c) in progress
                .label_counts
                .iter_mut()
                .zip(stats.label_counts.iter())
            {
                *acc += c;
            }
            progress.checkins += stats.checkins;
            self.total_samples += stats.samples;
            self.total_errors += stats.errors;
        }

        // Charge the ε ledger in the same fixed device order as the fold, and
        // regardless of acceptance below — by the time a checkin reaches the
        // server the device has already spent the privacy budget, so the
        // ledger must count it even when the gradient is not applied.
        for (device_id, cost) in self.epoch_charges(epoch) {
            self.accountant
                .record(&budget_entity(device_id), cost)
                .map_err(CoreError::Privacy)?;
        }

        if self.stopped() {
            return Ok(CheckinOutcome {
                accepted: false,
                iteration: self.iteration,
                stopped: true,
                staleness,
                deduped: false,
            });
        }

        // The projected SGD update of Eq. 3, on the epoch's mean gradient.
        // Dividing by 1 is exact, so a singleton epoch reproduces the classic
        // per-checkin update bit for bit.
        let mut mean = epoch.gradient_sum.clone();
        mean.scale(1.0 / epoch.checkin_count as f64);
        self.iteration += 1;
        let eta = self.schedule.rate(self.iteration as usize, &mean);
        self.params
            .axpy(-eta, &mean)
            .map_err(|e| CoreError::Protocol(format!("update failed: {e}")))?;
        project_l2_ball(&mut self.params, self.config.radius);

        Ok(CheckinOutcome {
            accepted: true,
            iteration: self.iteration,
            stopped: self.stopped(),
            staleness,
            deduped: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use crowd_learning::MulticlassLogistic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn payload(device_id: u64, grad: Vec<f64>, iteration: u64) -> CheckinPayload {
        CheckinPayload {
            device_id,
            checkout_iteration: iteration,
            nonce: 0,
            gradient: Vector::from_vec(grad).into(),
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1, 0],
        }
    }

    fn server() -> Server<MulticlassLogistic> {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        Server::new(model, ServerConfig::new().with_rate_constant(1.0)).unwrap()
    }

    #[test]
    fn checkout_returns_current_state() {
        let s = server();
        let ticket = s.checkout();
        assert_eq!(ticket.iteration, 0);
        assert_eq!(ticket.params.len(), 6);
        assert!(!ticket.stopped);
    }

    #[test]
    fn checkin_applies_projected_update_and_counts() {
        let mut s = server();
        let g = vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let outcome = s.checkin(&payload(3, g, 0)).unwrap();
        assert!(outcome.accepted);
        assert_eq!(outcome.iteration, 1);
        assert_eq!(outcome.staleness, 0);
        // η(1) = 1/√1 = 1, so w moved by -1 on the first coordinate.
        assert!((s.params()[0] + 1.0).abs() < 1e-12);
        assert_eq!(s.total_samples(), 2);
        assert_eq!(s.active_devices(), 1);
        let progress = s.device_progress(3).unwrap();
        assert_eq!(progress.samples, 2);
        assert_eq!(progress.errors, 1);
        assert_eq!(progress.checkins, 1);
        assert_eq!(s.error_estimate(), Some(0.5));
        let prior = s.prior_estimate().unwrap();
        assert!((prior[0] - 0.5).abs() < 1e-12);
        assert_eq!(prior[2], 0.0);
    }

    #[test]
    fn staleness_is_measured_against_checkout_iteration() {
        let mut s = server();
        let g = vec![0.1; 6];
        s.checkin(&payload(0, g.clone(), 0)).unwrap();
        s.checkin(&payload(1, g.clone(), 0)).unwrap();
        let outcome = s.checkin(&payload(2, g, 0)).unwrap();
        assert_eq!(outcome.staleness, 2);
        assert_eq!(s.iteration(), 3);
    }

    #[test]
    fn projection_bounds_parameters() {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let mut config = ServerConfig::new().with_rate_constant(100.0);
        config.radius = 1.0;
        let mut s = Server::new(model, config).unwrap();
        s.checkin(&payload(0, vec![5.0; 6], 0)).unwrap();
        assert!(s.params().norm_l2() <= 1.0 + 1e-9);
    }

    #[test]
    fn stopping_on_max_iterations() {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let config = ServerConfig::new().with_max_iterations(2);
        let mut s = Server::new(model, config).unwrap();
        assert!(s.checkin(&payload(0, vec![0.1; 6], 0)).unwrap().accepted);
        let second = s.checkin(&payload(0, vec![0.1; 6], 1)).unwrap();
        assert!(second.accepted);
        assert!(second.stopped);
        // Once stopped, further gradients are rejected but still counted.
        let third = s.checkin(&payload(0, vec![0.1; 6], 2)).unwrap();
        assert!(!third.accepted);
        assert_eq!(s.iteration(), 2);
        assert!(s.checkout().stopped);
    }

    #[test]
    fn stopping_on_target_error() {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let config = ServerConfig::new().with_target_error(0.2);
        let mut s = Server::new(model, config).unwrap();
        // Report 30 samples with zero errors: estimate 0 ≤ 0.2 and enough evidence.
        let p = CheckinPayload {
            device_id: 1,
            checkout_iteration: 0,
            nonce: 0,
            gradient: Vector::zeros(6).into(),
            num_samples: 30,
            error_count: 0,
            label_counts: vec![10, 10, 10],
        };
        let outcome = s.checkin(&p).unwrap();
        assert!(outcome.stopped);
    }

    #[test]
    fn malformed_checkins_rejected() {
        let mut s = server();
        let bad_dim = CheckinPayload {
            device_id: 0,
            checkout_iteration: 0,
            nonce: 0,
            gradient: Vector::zeros(5).into(),
            num_samples: 1,
            error_count: 0,
            label_counts: vec![0, 0, 0],
        };
        assert!(s.checkin(&bad_dim).is_err());
        let bad_counts = CheckinPayload {
            device_id: 0,
            checkout_iteration: 0,
            nonce: 0,
            gradient: Vector::zeros(6).into(),
            num_samples: 1,
            error_count: 0,
            label_counts: vec![0, 0],
        };
        assert!(s.checkin(&bad_counts).is_err());
        let zero_samples = CheckinPayload {
            device_id: 0,
            checkout_iteration: 0,
            nonce: 0,
            gradient: Vector::zeros(6).into(),
            num_samples: 0,
            error_count: 0,
            label_counts: vec![0, 0, 0],
        };
        assert!(s.checkin(&zero_samples).is_err());
        assert_eq!(s.iteration(), 0);
    }

    #[test]
    fn random_init_is_small_and_inside_ball() {
        let model = MulticlassLogistic::new(4, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let s = Server::with_random_init(model, ServerConfig::new(), &mut rng).unwrap();
        assert!(s.params().norm_l2() > 0.0);
        assert!(s.params().norm_l2() <= s.config().radius);
        assert_eq!(s.error_estimate(), None);
        assert_eq!(s.prior_estimate(), None);
    }

    #[test]
    fn singleton_aggregate_matches_classic_checkin_bitwise() {
        let mut classic = server();
        let mut split = server();
        for (device, step) in [(0u64, 0u64), (1, 0), (0, 1), (2, 2)] {
            let g: Vec<f64> = (0..6).map(|i| 0.3 * (i as f64 + 1.0) / 7.0).collect();
            let a = classic.checkin(&payload(device, g.clone(), step)).unwrap();
            let b = split
                .apply_aggregate(&EpochAggregate::from_payload(&payload(device, g, step)))
                .unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(classic.params().as_slice(), split.params().as_slice());
        assert_eq!(classic.iteration(), split.iteration());
        assert_eq!(classic.total_samples(), split.total_samples());
    }

    #[test]
    fn multi_checkin_epoch_applies_mean_gradient_once() {
        let mut s = server();
        let epoch = EpochAggregate {
            // Two checkins whose gradients sum to (2, 0, ...): the mean (1, 0, ...)
            // moves w by -η(1)·1 = -1 on the first coordinate, in ONE iteration.
            gradient_sum: Vector::from_vec(vec![2.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
            checkin_count: 2,
            min_checkout_iteration: 0,
            device_stats: vec![
                DeviceEpochStats {
                    device_id: 1,
                    checkins: 1,
                    samples: 2,
                    errors: 1,
                    label_counts: vec![1, 1, 0],
                },
                DeviceEpochStats {
                    device_id: 2,
                    checkins: 1,
                    samples: 3,
                    errors: 0,
                    label_counts: vec![0, 2, 1],
                },
            ],
        };
        let outcome = s.apply_aggregate(&epoch).unwrap();
        assert!(outcome.accepted);
        assert_eq!(outcome.iteration, 1);
        assert!((s.params()[0] + 1.0).abs() < 1e-12);
        assert_eq!(s.total_samples(), 5);
        assert_eq!(s.active_devices(), 2);
        assert_eq!(s.device_progress(2).unwrap().checkins, 1);
    }

    #[test]
    fn malformed_epochs_rejected() {
        let mut s = server();
        let empty = EpochAggregate {
            gradient_sum: Vector::zeros(6),
            checkin_count: 0,
            min_checkout_iteration: 0,
            device_stats: vec![],
        };
        assert!(s.apply_aggregate(&empty).is_err());
        let bad_dim = EpochAggregate {
            gradient_sum: Vector::zeros(5),
            checkin_count: 1,
            min_checkout_iteration: 0,
            device_stats: vec![DeviceEpochStats {
                device_id: 0,
                checkins: 1,
                samples: 1,
                errors: 0,
                label_counts: vec![0, 0, 0],
            }],
        };
        assert!(s.apply_aggregate(&bad_dim).is_err());
        let bad_counts = EpochAggregate {
            gradient_sum: Vector::zeros(6),
            checkin_count: 1,
            min_checkout_iteration: 0,
            device_stats: vec![DeviceEpochStats {
                device_id: 0,
                checkins: 1,
                samples: 1,
                errors: 0,
                label_counts: vec![0, 0],
            }],
        };
        assert!(s.apply_aggregate(&bad_counts).is_err());
        assert_eq!(s.iteration(), 0);
        assert_eq!(s.total_samples(), 0);
    }

    #[test]
    fn budget_accounting_tracks_and_flags_exhaustion() {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let config = ServerConfig::new().with_budget(0.5, 1.0);
        let mut s = Server::new(model, config).unwrap();
        assert_eq!(s.budget_spent(7), 0.0);
        assert!(!s.budget_exhausted(7));
        s.checkin(&payload(7, vec![0.1; 6], 0)).unwrap();
        assert!((s.budget_spent(7) - 0.5).abs() < 1e-12);
        assert!(!s.budget_exhausted(7));
        // The checkin that reaches the ceiling is still counted in full.
        s.checkin(&payload(7, vec![0.1; 6], 1)).unwrap();
        assert!((s.budget_spent(7) - 1.0).abs() < 1e-12);
        assert!(s.budget_exhausted(7));
        assert!(!s.budget_exhausted(8));
        assert_eq!(s.budget_ledger(), vec![(7, 1.0)]);
        // Disabled accounting keeps the ledger empty and never exhausts.
        let mut off = server();
        off.checkin(&payload(3, vec![0.1; 6], 0)).unwrap();
        assert!(off.budget_ledger().is_empty());
        assert!(!off.budget_exhausted(3));
        // A valid ceiling below the absolute slack must not pre-exhaust
        // never-charged devices.
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let tiny = Server::new(model, ServerConfig::new().with_budget(1e-14, 1e-13)).unwrap();
        assert!(!tiny.budget_exhausted(0));
    }

    #[test]
    fn epoch_charges_are_per_device_checkin_counts() {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let s = Server::new(model, ServerConfig::new().with_budget(0.25, f64::INFINITY)).unwrap();
        let epoch = EpochAggregate {
            gradient_sum: Vector::zeros(6),
            checkin_count: 3,
            min_checkout_iteration: 0,
            device_stats: vec![
                DeviceEpochStats {
                    device_id: 1,
                    checkins: 2,
                    samples: 4,
                    errors: 0,
                    label_counts: vec![2, 2, 0],
                },
                DeviceEpochStats {
                    device_id: 5,
                    checkins: 1,
                    samples: 2,
                    errors: 1,
                    label_counts: vec![1, 1, 0],
                },
            ],
        };
        assert_eq!(s.epoch_charges(&epoch), vec![(1, 0.5), (5, 0.25)]);
    }

    #[test]
    fn export_restore_round_trips_bitwise() {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let config = ServerConfig::new()
            .with_rate_constant(1.0)
            .with_budget(0.1, 10.0);
        let mut original = Server::new(model, config.clone()).unwrap();
        for (device, step) in [(4u64, 0u64), (1, 0), (4, 1), (9, 2)] {
            let g: Vec<f64> = (0..6).map(|i| 0.17 * (i as f64 - 2.5)).collect();
            original.checkin(&payload(device, g, step)).unwrap();
        }
        let state = original.export_state();
        // The exported layout is sorted by device id.
        let ids: Vec<u64> = state.progress.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![1, 4, 9]);
        let ledger_ids: Vec<u64> = state.budget_ledger.iter().map(|&(id, _)| id).collect();
        assert_eq!(ledger_ids, vec![1, 4, 9]);

        let model = MulticlassLogistic::new(2, 3).unwrap();
        let mut restored = Server::restore(model, config, state.clone()).unwrap();
        assert_eq!(restored.params().as_slice(), original.params().as_slice());
        assert_eq!(restored.iteration(), original.iteration());
        assert_eq!(restored.total_samples(), original.total_samples());
        assert_eq!(restored.budget_ledger(), original.budget_ledger());
        assert_eq!(restored.export_state(), state);

        // The restored server continues exactly where the original would: the
        // next checkin produces bitwise-identical parameters on both.
        let g = vec![0.3, -0.2, 0.1, 0.0, -0.4, 0.2];
        original.checkin(&payload(2, g.clone(), 3)).unwrap();
        restored.checkin(&payload(2, g, 3)).unwrap();
        assert_eq!(restored.params().as_slice(), original.params().as_slice());
        assert_eq!(restored.export_state(), original.export_state());
    }

    #[test]
    fn restore_rejects_mismatched_state() {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let mut s = Server::new(model, ServerConfig::new()).unwrap();
        s.checkin(&payload(0, vec![0.1; 6], 0)).unwrap();
        let mut bad_params = s.export_state();
        bad_params.params = Vector::zeros(5);
        let model = MulticlassLogistic::new(2, 3).unwrap();
        assert!(Server::restore(model, ServerConfig::new(), bad_params).is_err());
        let mut bad_counts = s.export_state();
        bad_counts.progress[0].1.label_counts = vec![0, 0];
        let model = MulticlassLogistic::new(2, 3).unwrap();
        assert!(Server::restore(model, ServerConfig::new(), bad_counts).is_err());
    }

    fn round_server(population: u64, fraction: f64) -> Server<MulticlassLogistic> {
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let config = ServerConfig::new().with_rate_constant(1.0).with_rounds(
            crate::config::RoundSettings::new(population)
                .with_select_fraction(fraction)
                .with_deadline_epochs(3)
                .with_seed(42),
        );
        Server::new(model, config).unwrap()
    }

    fn submission(
        server: &Server<MulticlassLogistic>,
        device_id: u64,
        nonce: u64,
    ) -> PendingSubmission {
        let info = server.round_info().unwrap();
        let cohort = server.round_cohort().unwrap().to_vec();
        let gradient: Vec<f64> = (0..6)
            .map(|i| (device_id as f64 + 1.0) * 0.1 + i as f64 * 0.01)
            .collect();
        let mask_words = crowd_rounds::net_mask(info.seed, device_id, &cohort, 6);
        PendingSubmission {
            device_id,
            nonce,
            checkout_iteration: server.iteration(),
            words: crowd_rounds::mask(&gradient, &mask_words),
            num_samples: 2,
            error_count: 1,
            label_counts: vec![1, 1, 0],
        }
    }

    #[test]
    fn round_lifecycle_accepts_finalizes_and_advances() {
        let mut s = round_server(4, 1.0);
        let info = s.round_info().unwrap();
        assert_eq!(info.round_id, 1);
        assert_eq!(s.round_cohort().unwrap(), &[0, 1, 2, 3]);
        assert!(!s.round_expired());

        for d in 0..3u64 {
            let admission = s.round_submit(1, submission(&s, d, 100 + d)).unwrap();
            assert_eq!(
                admission,
                RoundAdmission::Accepted {
                    cohort_complete: false
                }
            );
        }
        // A retried submission (same round, same nonce) is a duplicate.
        assert_eq!(
            s.round_submit(1, submission(&s, 0, 100)).unwrap(),
            RoundAdmission::Duplicate
        );
        // Same device, same round, fresh nonce: still a duplicate (the
        // contribution already stands).
        assert_eq!(
            s.round_submit(1, submission(&s, 0, 999)).unwrap(),
            RoundAdmission::Duplicate
        );
        let last = s.round_submit(1, submission(&s, 3, 103)).unwrap();
        assert_eq!(
            last,
            RoundAdmission::Accepted {
                cohort_complete: true
            }
        );

        let (closed, epoch) = s.finalize_round().unwrap();
        assert_eq!(closed, 1);
        let epoch = epoch.unwrap();
        assert_eq!(epoch.checkin_count, 4);
        // The unmasked fold equals the raw-gradient fold bitwise.
        let mut expected = [0.0f64; 6];
        for d in 0..4u64 {
            for (e, i) in expected.iter_mut().zip(0..6) {
                *e += (d as f64 + 1.0) * 0.1 + i as f64 * 0.01;
            }
        }
        assert_eq!(
            epoch
                .gradient_sum
                .as_slice()
                .iter()
                .map(|f| f.to_bits())
                .collect::<Vec<_>>(),
            expected.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
        s.apply_aggregate(&epoch).unwrap();
        assert_eq!(s.round_info().unwrap().round_id, 2);
        // A straggler of round 1 with its original nonce: duplicate, not
        // outdated (it was already counted).
        assert_eq!(
            s.round_submit(1, submission(&s, 2, 102)).unwrap(),
            RoundAdmission::Duplicate
        );
        // A genuinely stale newcomer gets Outdated with the current round.
        let stale = s.round_submit(1, submission(&s, 2, 555)).unwrap();
        assert_eq!(stale, RoundAdmission::Outdated { current_round: 2 });
    }

    #[test]
    fn round_rejects_outsiders_and_malformed_submissions() {
        let mut s = round_server(8, 0.4);
        let cohort = s.round_cohort().unwrap().to_vec();
        assert!(!cohort.is_empty() && cohort.len() < 8);
        let outsider = (0..8).find(|d| !cohort.contains(d)).unwrap();
        assert_eq!(
            s.round_submit(1, submission(&s, outsider, 1)).unwrap(),
            RoundAdmission::NotSelected
        );
        let member = cohort[0];
        let mut bad_dim = submission(&s, member, 2);
        bad_dim.words.pop();
        assert!(s.round_submit(1, bad_dim).is_err());
        let mut bad_counts = submission(&s, member, 3);
        bad_counts.label_counts.pop();
        assert!(s.round_submit(1, bad_counts).is_err());
        let mut no_samples = submission(&s, member, 4);
        no_samples.num_samples = 0;
        assert!(s.round_submit(1, no_samples).is_err());
        // A free-running server refuses round traffic outright.
        let mut free = server();
        let sub = PendingSubmission {
            device_id: 0,
            nonce: 0,
            checkout_iteration: 0,
            words: vec![0; 6],
            num_samples: 1,
            error_count: 0,
            label_counts: vec![0, 0, 0],
        };
        assert!(free.round_submit(1, sub).is_err());
        assert!(free.finalize_round().is_err());
        assert!(free.round_info().is_none());
        assert!(!free.round_expired());
    }

    #[test]
    fn round_expiry_finalizes_survivors_with_compensation() {
        let mut s = round_server(4, 1.0);
        // Two of four submit; the others vanish.
        s.round_submit(1, submission(&s, 1, 11)).unwrap();
        s.round_submit(1, submission(&s, 3, 13)).unwrap();
        // Free-run epochs advance the clock past the 3-epoch deadline.
        for step in 0..3 {
            assert!(!s.round_expired());
            s.checkin(&payload(9, vec![0.1; 6], step)).unwrap();
        }
        assert!(s.round_expired());
        let (closed, epoch) = s.finalize_round().unwrap();
        assert_eq!(closed, 1);
        let epoch = epoch.unwrap();
        assert_eq!(epoch.checkin_count, 2);
        // Survivor sum (devices 1 and 3) bitwise: dropout compensation
        // recovered the exact bits despite devices 0 and 2 never submitting.
        let mut expected = [0.0f64; 6];
        for d in [1u64, 3] {
            for (e, i) in expected.iter_mut().zip(0..6) {
                *e += (d as f64 + 1.0) * 0.1 + i as f64 * 0.01;
            }
        }
        assert_eq!(
            epoch
                .gradient_sum
                .as_slice()
                .iter()
                .map(|f| f.to_bits())
                .collect::<Vec<_>>(),
            expected.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
        // Round 2 opened at the current iteration: not instantly expired.
        assert!(!s.round_expired());
        // An empty expired round finalizes to no epoch but still advances.
        for step in 3..6 {
            s.checkin(&payload(9, vec![0.1; 6], step)).unwrap();
        }
        assert!(s.round_expired());
        let (closed, epoch) = s.finalize_round().unwrap();
        assert_eq!(closed, 2);
        assert!(epoch.is_none());
        assert_eq!(s.round_info().unwrap().round_id, 3);
    }

    #[test]
    fn round_state_export_restore_round_trips() {
        let mut s = round_server(4, 1.0);
        s.round_submit(1, submission(&s, 0, 10)).unwrap();
        s.round_submit(1, submission(&s, 2, 12)).unwrap();
        s.checkin(&payload(7, vec![0.2; 6], 0)).unwrap();
        let state = s.export_state();
        let snap = state.round.as_ref().unwrap();
        assert_eq!(snap.round_id, 1);
        assert_eq!(snap.pending.len(), 2);
        assert_eq!(state.last_round, vec![(0, 1, 10), (2, 1, 12)]);

        let model = MulticlassLogistic::new(2, 3).unwrap();
        let mut restored = Server::restore(model, s.config().clone(), state.clone()).unwrap();
        assert_eq!(restored.export_state(), state);
        assert_eq!(restored.round_cohort(), s.round_cohort());
        // Both finalize to the identical epoch.
        let (_, a) = s.finalize_round().unwrap();
        let (_, b) = restored.finalize_round().unwrap();
        assert_eq!(a, b);

        // Config/state round mismatches are refused both ways.
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let mut no_rounds = ServerConfig::new();
        no_rounds.rounds = None;
        assert!(Server::restore(model, no_rounds, s.export_state()).is_err());
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let plain = server().export_state();
        assert!(Server::restore(
            model,
            s.config().clone(),
            ServerState {
                round: None,
                ..plain
            }
        )
        .is_err());
    }

    #[test]
    fn advance_round_replays_the_finalize_transition() {
        let mut s = round_server(4, 1.0);
        s.round_submit(1, submission(&s, 0, 10)).unwrap();
        assert!(s.advance_round(2).is_err());
        s.advance_round(1).unwrap();
        assert_eq!(s.round_info().unwrap().round_id, 2);
        // Pending submissions of the closed round are discarded.
        assert!(s.export_state().round.unwrap().pending.is_empty());
        assert!(server().advance_round(1).is_err());
    }

    #[test]
    fn negative_perturbed_counts_clamp_in_estimates() {
        let mut s = server();
        let p = CheckinPayload {
            device_id: 0,
            checkout_iteration: 0,
            nonce: 0,
            gradient: Vector::zeros(6).into(),
            num_samples: 5,
            error_count: -3,
            label_counts: vec![-2, 4, 1],
        };
        s.checkin(&p).unwrap();
        assert_eq!(s.error_estimate(), Some(0.0));
        let prior = s.prior_estimate().unwrap();
        assert_eq!(prior[0], 0.0);
        assert!((prior.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
