//! Plain-text rendering of experiment results.
//!
//! The figure binaries in `crowd-bench` print one CSV block per curve (the same
//! series the paper plots) followed by a compact summary table; EXPERIMENTS.md
//! records the summary rows next to the paper's reported values.

use crowd_learning::metrics::ErrorCurve;

/// A named error curve (one line/series of a figure).
#[derive(Debug, Clone, PartialEq)]
pub struct NamedCurve {
    /// Legend label, e.g. "Crowd-ML (SGD, b=20)".
    pub label: String,
    /// The curve data.
    pub curve: ErrorCurve,
}

impl NamedCurve {
    /// Creates a named curve.
    pub fn new(label: impl Into<String>, curve: ErrorCurve) -> Self {
        NamedCurve {
            label: label.into(),
            curve,
        }
    }
}

/// A figure report: a title plus its series and optional constant reference lines
/// (e.g. the "Central (batch)" horizontal line).
#[derive(Debug, Clone, Default)]
pub struct FigureReport {
    /// Figure title, e.g. "Fig. 4: MNIST-like, no privacy, no delay".
    pub title: String,
    /// The plotted series.
    pub curves: Vec<NamedCurve>,
    /// Constant reference lines as `(label, value)`.
    pub constants: Vec<(String, f64)>,
}

impl FigureReport {
    /// Creates an empty report with a title.
    pub fn new(title: impl Into<String>) -> Self {
        FigureReport {
            title: title.into(),
            curves: Vec::new(),
            constants: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn add_curve(&mut self, label: impl Into<String>, curve: ErrorCurve) {
        self.curves.push(NamedCurve::new(label, curve));
    }

    /// Adds a constant reference line.
    pub fn add_constant(&mut self, label: impl Into<String>, value: f64) {
        self.constants.push((label.into(), value));
    }

    /// Renders the full report: one CSV block per series plus the summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n\n", self.title));
        for named in &self.curves {
            out.push_str(&format!("## series: {}\n", named.label));
            out.push_str(&named.curve.to_csv());
            out.push('\n');
        }
        for (label, value) in &self.constants {
            out.push_str(&format!("## constant: {label}\nvalue,{value:.6}\n\n"));
        }
        out.push_str(&self.summary_table());
        out
    }

    /// Renders only the summary table: final error and tail-mean error per series.
    pub fn summary_table(&self) -> String {
        let mut out = String::from("series,final_error,tail_mean_error\n");
        for named in &self.curves {
            let last = named.curve.final_error().unwrap_or(f64::NAN);
            let tail = named.curve.tail_mean(5).unwrap_or(f64::NAN);
            out.push_str(&format!("{},{last:.4},{tail:.4}\n", named.label));
        }
        for (label, value) in &self.constants {
            out.push_str(&format!("{label},{value:.4},{value:.4}\n"));
        }
        out
    }
}

/// Renders a vector of `(x, y)` pairs as a CSV block with a custom header — used
/// by the Fig. 3 binary for the time-averaged online error series.
pub fn series_to_csv(header: &str, values: &[f64]) -> String {
    let mut out = format!("index,{header}\n");
    for (i, v) in values.iter().enumerate() {
        out.push_str(&format!("{},{:.6}\n", i + 1, v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(values: &[(usize, f64)]) -> ErrorCurve {
        let mut c = ErrorCurve::new();
        for &(i, e) in values {
            c.push(i, e);
        }
        c
    }

    #[test]
    fn report_renders_all_sections() {
        let mut report = FigureReport::new("Fig. X: test");
        report.add_curve("Crowd-ML (b=1)", curve(&[(10, 0.5), (20, 0.25)]));
        report.add_curve("Central (SGD)", curve(&[(10, 0.6), (20, 0.55)]));
        report.add_constant("Central (batch)", 0.1);
        let rendered = report.render();
        assert!(rendered.contains("# Fig. X: test"));
        assert!(rendered.contains("## series: Crowd-ML (b=1)"));
        assert!(rendered.contains("20,0.250000"));
        assert!(rendered.contains("## constant: Central (batch)"));
        assert!(rendered.contains("value,0.100000"));
        let summary = report.summary_table();
        assert!(summary.contains("Crowd-ML (b=1),0.2500"));
        assert!(summary.contains("Central (batch),0.1000"));
    }

    #[test]
    fn empty_curve_summary_is_nan_not_panic() {
        let mut report = FigureReport::new("empty");
        report.add_curve("nothing", ErrorCurve::new());
        let summary = report.summary_table();
        assert!(summary.contains("NaN"));
    }

    #[test]
    fn series_csv_is_one_indexed() {
        let csv = series_to_csv("online_error", &[1.0, 0.5]);
        assert!(csv.starts_with("index,online_error\n"));
        assert!(csv.contains("1,1.000000"));
        assert!(csv.contains("2,0.500000"));
    }
}
