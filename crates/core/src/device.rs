//! Device-side state machine: Device Routines 1–3 of Algorithm 1.
//!
//! A [`Device`] buffers locally generated samples (Routine 1), asks for a checkout
//! once the buffer reaches the minibatch size `b`, and — when the server's
//! parameters arrive — computes the averaged regularized gradient, the
//! misclassification count, and the label counts over its buffer, sanitizes them
//! (Routine 3 via [`crate::privacy::Sanitizer`]), and produces a
//! [`CheckinPayload`] to upload (Routine 2). Failed checkouts simply leave the
//! buffer intact so the device retries later (Remark 1 of the paper).

use crate::config::{DeviceConfig, PrivacyConfig};
use crate::error::CoreError;
use crate::privacy::Sanitizer;
use crate::Result;
use crowd_data::Sample;
use crowd_learning::model::{minibatch_statistics, Model};
use crowd_linalg::{GradientUpdate, QuantizedVector, Vector};
use rand::Rng;

/// What a device did with an observed sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceAction {
    /// The sample was added to the buffer; nothing else to do yet.
    Buffered,
    /// The buffer is at its maximum size `B`; the sample was discarded
    /// ("stop collection to prevent resource outage").
    Dropped,
    /// The buffer has reached the minibatch size: the device should check out the
    /// current parameters from the server.
    RequestCheckout,
}

/// The sanitized statistics a device uploads at checkin
/// (`ĝ`, `n_s`, `n̂_e`, `n̂_y^k` plus bookkeeping).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckinPayload {
    /// The uploading device's id.
    pub device_id: u64,
    /// Server iteration at which the parameters used for this gradient were read.
    pub checkout_iteration: u64,
    /// Duplicate-detection nonce, unique per checkin within a device (0 = no
    /// dedup requested). Devices number their checkins 1, 2, 3, …; a retry of
    /// the same payload carries the same nonce, which is what lets the server
    /// apply and ε-charge a retried upload exactly once.
    pub nonce: u64,
    /// The sanitized averaged gradient `ĝ`, in whichever representation the
    /// device chose for the wire (dense, or sparse when mostly exact zeros).
    pub gradient: GradientUpdate,
    /// The number of samples `n_s` the statistics were computed from.
    pub num_samples: usize,
    /// The sanitized misclassification count `n̂_e`.
    pub error_count: i64,
    /// The sanitized per-class label counts `n̂_y^k`.
    pub label_counts: Vec<i64>,
}

/// A Crowd-ML device.
#[derive(Debug, Clone)]
pub struct Device {
    id: u64,
    config: DeviceConfig,
    privacy: PrivacyConfig,
    buffer: Vec<Sample>,
    awaiting_params: bool,
    samples_observed: u64,
    samples_dropped: u64,
    checkins_completed: u64,
}

impl Device {
    /// Creates a device with the given configuration.
    pub fn new(id: u64, config: DeviceConfig, privacy: PrivacyConfig) -> Result<Self> {
        config.validate()?;
        Ok(Device {
            id,
            config,
            privacy,
            buffer: Vec::with_capacity(config.minibatch_size),
            awaiting_params: false,
            samples_observed: 0,
            samples_dropped: 0,
            checkins_completed: 0,
        })
    }

    /// The device id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of samples currently buffered.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// Total samples observed (buffered or dropped).
    pub fn samples_observed(&self) -> u64 {
        self.samples_observed
    }

    /// Samples dropped because the buffer was full.
    pub fn samples_dropped(&self) -> u64 {
        self.samples_dropped
    }

    /// Completed checkins.
    pub fn checkins_completed(&self) -> u64 {
        self.checkins_completed
    }

    /// Whether the device has requested a checkout and is waiting for parameters.
    pub fn is_awaiting_params(&self) -> bool {
        self.awaiting_params
    }

    /// Whether the buffer has reached the minibatch size (and the device is not
    /// already waiting on a checkout).
    pub fn ready_for_checkout(&self) -> bool {
        !self.awaiting_params && self.buffer.len() >= self.config.minibatch_size
    }

    /// Device Routine 1: receive one sample.
    pub fn observe(&mut self, sample: Sample) -> DeviceAction {
        self.samples_observed += 1;
        if self.buffer.len() >= self.config.max_buffer {
            self.samples_dropped += 1;
            return DeviceAction::Dropped;
        }
        self.buffer.push(sample);
        if self.ready_for_checkout() {
            DeviceAction::RequestCheckout
        } else {
            DeviceAction::Buffered
        }
    }

    /// Marks the device as having issued a checkout request. Returns an error if a
    /// checkout is already outstanding.
    pub fn begin_checkout(&mut self) -> Result<()> {
        if self.awaiting_params {
            return Err(CoreError::Protocol(format!(
                "device {} already has an outstanding checkout",
                self.id
            )));
        }
        self.awaiting_params = true;
        Ok(())
    }

    /// Abandons an outstanding checkout (e.g. after a network failure), keeping
    /// the buffered samples so the device can retry later.
    pub fn abort_checkout(&mut self) {
        self.awaiting_params = false;
    }

    /// Device Routines 2 and 3: given the parameters received from the server,
    /// compute the minibatch statistics over the buffered samples, sanitize them,
    /// clear the buffer, and return the payload to upload.
    ///
    /// `lambda` is the regularization strength of the global risk (Eq. 2);
    /// `checkout_iteration` is the server iteration tagged on the parameters.
    pub fn compute_checkin<M: Model + ?Sized, R: Rng + ?Sized>(
        &mut self,
        model: &M,
        params: &Vector,
        checkout_iteration: u64,
        lambda: f64,
        rng: &mut R,
    ) -> Result<CheckinPayload> {
        if self.buffer.is_empty() {
            return Err(CoreError::Protocol(format!(
                "device {} has no buffered samples to check in",
                self.id
            )));
        }

        // Remark 2: optionally set aside a random fraction of the buffer as
        // held-out samples whose gradients are excluded from the average.
        let holdout: Vec<usize> = if self.config.holdout_fraction > 0.0 {
            let count =
                ((self.buffer.len() as f64) * self.config.holdout_fraction).floor() as usize;
            let mut indices: Vec<usize> = (0..self.buffer.len()).collect();
            for i in (1..indices.len()).rev() {
                let j = rng.gen_range(0..=i);
                indices.swap(i, j);
            }
            indices.truncate(count.min(self.buffer.len().saturating_sub(1)));
            indices
        } else {
            Vec::new()
        };

        let stats = minibatch_statistics(model, params, &self.buffer, lambda, &holdout)?;
        let sanitizer = Sanitizer::new(&self.privacy, stats.num_samples)?;
        let sanitized =
            sanitizer.sanitize(rng, &stats.gradient, stats.num_errors, &stats.label_counts);

        self.buffer.clear();
        self.awaiting_params = false;
        self.checkins_completed += 1;

        // Wire v5: a DP-noised gradient whose Laplace scale dominates the
        // i16 quantization step ships as stochastically rounded fixed-point
        // levels — 2 bytes per coordinate instead of 8, with rounding error
        // provably below the noise already injected. Otherwise ship the
        // lossless encoding (sparse when the measured density makes it
        // smaller on the wire; noised gradients are always dense).
        let max_abs = sanitized
            .gradient
            .iter()
            .fold(0.0_f64, |m, &v| m.max(v.abs()));
        let quant_step = max_abs / f64::from(crowd_linalg::quant::QMAX);
        let gradient =
            if crowd_dp::noise_dominates_quantization(sanitizer.gradient_noise_scale(), quant_step)
            {
                GradientUpdate::Quantized(
                    QuantizedVector::quantize_stochastic(sanitized.gradient.as_slice(), rng)
                        .map_err(|e| CoreError::Protocol(e.to_string()))?,
                )
            } else {
                GradientUpdate::from_dense_auto(sanitized.gradient)
            };

        Ok(CheckinPayload {
            device_id: self.id,
            checkout_iteration,
            // 1-based checkin counter: unique within the device for the whole
            // run (and deterministic), never the "no dedup" sentinel 0.
            nonce: self.checkins_completed,
            gradient,
            num_samples: stats.num_samples,
            error_count: sanitized.error_count,
            label_counts: sanitized.label_counts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeviceConfig, PrivacyConfig};
    use crowd_learning::MulticlassLogistic;
    use crowd_linalg::Vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(label: usize) -> Sample {
        Sample::new(Vector::from_vec(vec![0.3, -0.7]), label)
    }

    fn device(b: usize) -> Device {
        Device::new(7, DeviceConfig::new(b), PrivacyConfig::non_private()).unwrap()
    }

    #[test]
    fn observe_triggers_checkout_at_minibatch_size() {
        let mut d = device(3);
        assert_eq!(d.observe(sample(0)), DeviceAction::Buffered);
        assert_eq!(d.observe(sample(1)), DeviceAction::Buffered);
        assert_eq!(d.observe(sample(2)), DeviceAction::RequestCheckout);
        assert!(d.ready_for_checkout());
        assert_eq!(d.buffer_len(), 3);
        assert_eq!(d.samples_observed(), 3);
    }

    #[test]
    fn buffer_bound_drops_samples() {
        let mut d = Device::new(
            1,
            DeviceConfig::new(2).with_max_buffer(2),
            PrivacyConfig::non_private(),
        )
        .unwrap();
        d.observe(sample(0));
        d.observe(sample(1));
        assert_eq!(d.observe(sample(2)), DeviceAction::Dropped);
        assert_eq!(d.samples_dropped(), 1);
        assert_eq!(d.buffer_len(), 2);
    }

    #[test]
    fn checkout_state_machine() {
        let mut d = device(1);
        d.observe(sample(0));
        assert!(d.begin_checkout().is_ok());
        assert!(d.is_awaiting_params());
        // Double checkout is a protocol error.
        assert!(d.begin_checkout().is_err());
        // While awaiting, new samples do not re-trigger a checkout.
        assert_eq!(d.observe(sample(1)), DeviceAction::Buffered);
        d.abort_checkout();
        assert!(!d.is_awaiting_params());
        assert!(d.ready_for_checkout());
    }

    #[test]
    fn compute_checkin_produces_payload_and_clears_buffer() {
        let mut d = device(2);
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let params = model.init_params();
        d.observe(sample(0));
        d.observe(sample(2));
        d.begin_checkout().unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let payload = d
            .compute_checkin(&model, &params, 5, 0.0, &mut rng)
            .unwrap();
        assert_eq!(payload.device_id, 7);
        assert_eq!(payload.checkout_iteration, 5);
        assert_eq!(payload.num_samples, 2);
        assert_eq!(payload.label_counts.len(), 3);
        assert_eq!(payload.label_counts[0], 1);
        assert_eq!(payload.label_counts[2], 1);
        assert_eq!(payload.gradient.dim(), model.param_dim());
        assert_eq!(d.buffer_len(), 0);
        assert!(!d.is_awaiting_params());
        assert_eq!(d.checkins_completed(), 1);
    }

    #[test]
    fn checkin_without_samples_is_protocol_error() {
        let mut d = device(1);
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let params = model.init_params();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(d
            .compute_checkin(&model, &params, 0, 0.0, &mut rng)
            .is_err());
    }

    #[test]
    fn private_checkin_noise_changes_gradient() {
        let mut noisy = Device::new(
            1,
            DeviceConfig::new(1),
            PrivacyConfig::with_total_epsilon(0.5),
        )
        .unwrap();
        let mut clean = device(1);
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let params = model.init_params();
        noisy.observe(sample(1));
        clean.observe(sample(1));
        let mut rng = StdRng::seed_from_u64(2);
        let noisy_payload = noisy
            .compute_checkin(&model, &params, 0, 0.0, &mut rng)
            .unwrap();
        let clean_payload = clean
            .compute_checkin(&model, &params, 0, 0.0, &mut rng)
            .unwrap();
        assert_ne!(noisy_payload.gradient, clean_payload.gradient);
    }

    #[test]
    fn private_checkin_quantizes_when_noise_floor_dominates() {
        // ε = 0.5 over one checkin gives a Laplace scale far above the i16
        // quantization step of a unit-clipped gradient, so the lossy
        // encoding is provably safe and must be selected.
        let mut noisy = Device::new(
            1,
            DeviceConfig::new(1),
            PrivacyConfig::with_total_epsilon(0.5),
        )
        .unwrap();
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let params = model.init_params();
        noisy.observe(sample(1));
        let mut rng = StdRng::seed_from_u64(11);
        let payload = noisy
            .compute_checkin(&model, &params, 0, 0.0, &mut rng)
            .unwrap();
        assert!(
            matches!(payload.gradient, GradientUpdate::Quantized(_)),
            "DP-noised upload should select the quantized encoding"
        );
        assert_eq!(payload.gradient.dim(), model.param_dim());

        // A non-private device must never pay the quantization loss.
        let mut clean = device(1);
        clean.observe(sample(1));
        let payload = clean
            .compute_checkin(&model, &params, 0, 0.0, &mut rng)
            .unwrap();
        assert!(!matches!(payload.gradient, GradientUpdate::Quantized(_)));
    }

    #[test]
    fn holdout_fraction_excludes_gradients() {
        let config = DeviceConfig::new(4).with_holdout_fraction(0.99);
        let mut d = Device::new(1, config, PrivacyConfig::non_private()).unwrap();
        let model = MulticlassLogistic::new(2, 3).unwrap();
        let params = model.init_params();
        for label in [0, 1, 2, 0] {
            d.observe(sample(label));
        }
        let mut rng = StdRng::seed_from_u64(3);
        let payload = d
            .compute_checkin(&model, &params, 0, 0.0, &mut rng)
            .unwrap();
        // At least one sample always contributes a gradient (we never hold out all
        // of them), and the payload still reports the full sample count.
        assert_eq!(payload.num_samples, 4);
        assert!(payload.gradient.dim() == model.param_dim());
    }
}
