//! The Crowd-ML framework: privacy-preserving distributed learning for a crowd of
//! smart devices (Hamm et al., ICDCS 2015).
//!
//! The crate implements the paper's Algorithms 1 and 2 and everything the
//! evaluation section needs around them:
//!
//! * [`config`] — device, server, and privacy configuration (minibatch size `b`,
//!   buffer bound `B`, learning-rate schedule `η(t) = c/√t`, regularization λ,
//!   parameter-ball radius `R`, stopping criteria `T_max`/ρ, and the ε budget
//!   split).
//! * [`device`] — Device Routines 1–3: sample buffering, checkout triggering,
//!   minibatch-gradient computation, and local sanitization of `(g̃, n_e, n_y^k)`.
//! * [`server`] — Server Routines 1–2: parameter serving, the projected SGD update
//!   `w ← Π_W[w − η(t)ĝ]`, per-device progress counters, and the stopping rule.
//! * [`baselines`] — the three comparison systems of §V: Centralized (batch),
//!   Centralized (SGD) on feature/label-perturbed data (Appendix C), and
//!   Decentralized per-device SGD.
//! * [`simulation`] — the asynchronous, delay-aware discrete-event simulation of a
//!   fleet of devices (§V-C's simulated environment), built on `crowd-sim`.
//! * [`experiment`] — high-level experiment runners that produce the
//!   error-vs-iteration curves of Figs. 3–9.
//! * [`report`] — plain-text/CSV rendering used by the figure binaries and
//!   EXPERIMENTS.md.

#![forbid(unsafe_code)]

pub mod baselines;
pub mod config;
pub mod device;
pub mod error;
pub mod experiment;
pub mod privacy;
pub mod report;
pub mod server;
pub mod simulation;

pub use config::{
    AggSettings, BudgetSettings, CrowdMlConfig, DeviceConfig, PersistSettings, PrivacyConfig,
    RoundSettings, ServerConfig,
};
pub use device::{CheckinPayload, Device, DeviceAction};
pub use error::CoreError;
pub use server::{
    CheckinOutcome, DeviceEpochStats, EpochAggregate, PendingSubmission, RoundAdmission, RoundInfo,
    RoundStateSnapshot, Server, ServerState,
};

/// Result alias for the core crate.
pub type Result<T> = std::result::Result<T, CoreError>;
