//! The comparison systems of the paper's evaluation.
//!
//! * **Centralized (batch)** — all raw data is pooled at the server and trained
//!   with a batch algorithm. With privacy, each feature vector is perturbed with
//!   Laplace noise (Eq. 15) and each label is flipped through the exponential
//!   mechanism (Eq. 16) *before* leaving the device; test data is never perturbed
//!   (footnote 8).
//! * **Centralized (SGD)** — the same (possibly perturbed) pooled data trained by
//!   minibatch SGD, so the curves of Fig. 5 can be reproduced.
//! * **Decentralized (SGD)** — every device trains only on its own `~N/M` samples
//!   with no communication; the reported error is the average over devices.

use crate::config::PrivacyConfig;
use crate::Result;
use crowd_data::{Dataset, Sample};
use crowd_dp::sensitivity::feature_release;
use crowd_dp::{Epsilon, ExponentialMechanism, LaplaceMechanism};
use crowd_learning::batch::{BatchConfig, BatchTrainer};
use crowd_learning::metrics::{error_rate, ErrorCurve};
use crowd_learning::model::Model;
use crowd_learning::sgd::{SgdConfig, SgdTrainer};
use crowd_linalg::Vector;
use rand::Rng;

/// Input perturbation for the centralized baselines (Appendix C).
///
/// The total ε is split evenly between features and labels
/// (`ε_x = ε_y = ε/2`, as in the paper's experiments). Passing a non-private
/// configuration returns an unmodified copy.
pub fn perturb_dataset_for_central<R: Rng + ?Sized>(
    data: &Dataset,
    privacy: &PrivacyConfig,
    rng: &mut R,
) -> Result<Dataset> {
    let total = privacy.budget.total_per_checkin(data.num_classes());
    if privacy.is_non_private() || total <= 0.0 {
        return Ok(data.clone());
    }
    let eps_x = Epsilon::finite(total / 2.0).map_err(crate::CoreError::Privacy)?;
    let eps_y = Epsilon::finite(total / 2.0).map_err(crate::CoreError::Privacy)?;
    let feature_mechanism =
        LaplaceMechanism::new(eps_x, feature_release()).map_err(crate::CoreError::Privacy)?;
    let label_mechanism =
        ExponentialMechanism::new(eps_y, 1.0).map_err(crate::CoreError::Privacy)?;

    let mut out = Dataset::empty(data.dim(), data.num_classes())?;
    for s in data.iter() {
        let features = feature_mechanism.perturb_vector(rng, &s.features);
        let label = label_mechanism
            .perturb_label(rng, s.label, data.num_classes())
            .map_err(crate::CoreError::Privacy)?;
        out.push(Sample::new(features, label))?;
    }
    Ok(out)
}

/// Result of a centralized batch run.
#[derive(Debug, Clone)]
pub struct CentralBatchResult {
    /// Learned parameters.
    pub params: Vector,
    /// Test error of the learned model (the horizontal line of Figs. 4–9).
    pub test_error: f64,
}

/// Runs the "Central (batch)" baseline: pool (optionally perturbed) training data,
/// run batch training, evaluate on the clean test set.
pub fn central_batch<M: Model + Clone, R: Rng + ?Sized>(
    model: &M,
    train: &Dataset,
    test: &Dataset,
    privacy: &PrivacyConfig,
    config: &BatchConfig,
    rng: &mut R,
) -> Result<CentralBatchResult> {
    let released = perturb_dataset_for_central(train, privacy, rng)?;
    let trainer = BatchTrainer::new(model.clone(), config.clone())?;
    let outcome = trainer.train(&released)?;
    let test_error = error_rate(model, &outcome.params, test)?;
    Ok(CentralBatchResult {
        params: outcome.params,
        test_error,
    })
}

/// Result of a centralized SGD run.
#[derive(Debug, Clone)]
pub struct CentralSgdResult {
    /// Learned parameters.
    pub params: Vector,
    /// Error-vs-iteration curve on the clean test set.
    pub curve: ErrorCurve,
}

/// Runs the "Central (SGD)" baseline: pool (optionally perturbed) training data and
/// run minibatch SGD, recording the test-error curve.
pub fn central_sgd<M: Model + Clone, R: Rng + ?Sized>(
    model: &M,
    train: &Dataset,
    test: &Dataset,
    privacy: &PrivacyConfig,
    config: &SgdConfig,
    rng: &mut R,
) -> Result<CentralSgdResult> {
    let released = perturb_dataset_for_central(train, privacy, rng)?;
    let trainer = SgdTrainer::new(model.clone(), config.clone())?;
    let outcome = trainer.train(&released, Some(test), rng)?;
    Ok(CentralSgdResult {
        params: outcome.params,
        curve: outcome.curve,
    })
}

/// Result of the decentralized baseline.
#[derive(Debug, Clone)]
pub struct DecentralizedResult {
    /// Error-vs-total-iterations curve, where the error at each point is averaged
    /// over the evaluated devices and the iteration axis counts samples consumed
    /// across the whole fleet.
    pub curve: ErrorCurve,
    /// Final per-device test errors for the evaluated devices.
    pub final_device_errors: Vec<f64>,
}

/// Runs the "Decentralized (SGD)" baseline.
///
/// Each device trains only on its own partition. Training every one of `M = 1000`
/// devices and evaluating it on the full test set is wasteful when the devices are
/// statistically identical, so at most `max_eval_devices` devices (chosen from the
/// front of the partition list) are actually trained and their curves averaged;
/// the iteration axis is then scaled by the total number of devices so it remains
/// comparable to the other approaches, exactly as the paper plots it.
pub fn decentralized<M: Model + Clone, R: Rng + ?Sized>(
    model: &M,
    partitions: &[Dataset],
    test: &Dataset,
    config: &SgdConfig,
    max_eval_devices: usize,
    rng: &mut R,
) -> Result<DecentralizedResult> {
    if partitions.is_empty() {
        return Err(crate::CoreError::Config(
            "decentralized baseline needs at least one device partition".into(),
        ));
    }
    let eval_count = max_eval_devices.clamp(1, partitions.len());
    let mut curves = Vec::new();
    let mut final_errors = Vec::new();
    for part in partitions.iter().filter(|p| !p.is_empty()).take(eval_count) {
        // Evaluate after every local sample so curves from devices with few
        // samples still have enough resolution to be averaged.
        let mut local_config = config.clone();
        local_config.eval_every = 1;
        let trainer = SgdTrainer::new(model.clone(), local_config)?;
        let outcome = trainer.train(part, Some(test), rng)?;
        final_errors.push(error_rate(model, &outcome.params, test)?);
        curves.push(outcome.curve);
    }
    if curves.is_empty() {
        return Err(crate::CoreError::Config(
            "all device partitions were empty".into(),
        ));
    }

    // Average the curves point-wise up to the shortest curve, then rescale the
    // iteration axis from per-device samples to fleet-wide samples.
    let min_len = curves.iter().map(|c| c.len()).min().unwrap_or(0);
    let mut averaged = ErrorCurve::new();
    for i in 0..min_len {
        let mean_err =
            curves.iter().map(|c| c.points()[i].error).sum::<f64>() / curves.len() as f64;
        let per_device_iter = curves[0].points()[i].iteration;
        averaged.push(per_device_iter * partitions.len(), mean_err);
    }
    Ok(DecentralizedResult {
        curve: averaged,
        final_device_errors: final_errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrivacyConfig;
    use crowd_data::partition::{partition, PartitionStrategy};
    use crowd_data::synthetic::GaussianMixtureSpec;
    use crowd_learning::MulticlassLogistic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn task(seed: u64) -> (Dataset, Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        GaussianMixtureSpec::new(10, 4)
            .with_train_size(1200)
            .with_test_size(300)
            .with_mean_scale(2.5)
            .with_noise_std(0.6)
            .generate(&mut rng)
            .unwrap()
    }

    #[test]
    fn perturbation_is_identity_when_non_private() {
        let (train, _) = task(0);
        let mut rng = StdRng::seed_from_u64(1);
        let released =
            perturb_dataset_for_central(&train, &PrivacyConfig::non_private(), &mut rng).unwrap();
        assert_eq!(released, train);
    }

    #[test]
    fn perturbation_changes_features_and_some_labels() {
        let (train, _) = task(2);
        let privacy = PrivacyConfig::with_total_epsilon(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let released = perturb_dataset_for_central(&train, &privacy, &mut rng).unwrap();
        assert_eq!(released.len(), train.len());
        // Features must differ.
        let changed_features = train
            .iter()
            .zip(released.iter())
            .filter(|(a, b)| a.features != b.features)
            .count();
        assert_eq!(changed_features, train.len());
        // With ε_y = 0.5 and 4 classes most labels should flip away from truth
        // sometimes; require at least a few flips.
        let flipped = train
            .iter()
            .zip(released.iter())
            .filter(|(a, b)| a.label != b.label)
            .count();
        assert!(flipped > train.len() / 10, "only {flipped} labels flipped");
    }

    #[test]
    fn central_batch_beats_chance_and_privacy_hurts() {
        let (train, test) = task(4);
        let model = MulticlassLogistic::new(10, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let clean = central_batch(
            &model,
            &train,
            &test,
            &PrivacyConfig::non_private(),
            &BatchConfig::new(),
            &mut rng,
        )
        .unwrap();
        assert!(clean.test_error < 0.15, "clean error {}", clean.test_error);

        let noisy = central_batch(
            &model,
            &train,
            &test,
            &PrivacyConfig::with_total_epsilon(1.0),
            &BatchConfig::new(),
            &mut rng,
        )
        .unwrap();
        assert!(
            noisy.test_error > clean.test_error,
            "privacy should cost accuracy: clean {} noisy {}",
            clean.test_error,
            noisy.test_error
        );
    }

    #[test]
    fn central_sgd_produces_decreasing_curve() {
        let (train, test) = task(6);
        let model = MulticlassLogistic::new(10, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut config = SgdConfig::new();
        config.eval_every = 200;
        config.passes = 2.0;
        let result = central_sgd(
            &model,
            &train,
            &test,
            &PrivacyConfig::non_private(),
            &config,
            &mut rng,
        )
        .unwrap();
        assert!(!result.curve.is_empty());
        let first = result.curve.points()[0].error;
        let last = result.curve.final_error().unwrap();
        // Both evaluations are stochastic estimates on 300 test points; allow
        // a fluctuation of a few samples rather than demanding strict
        // monotonicity between two already-converged curve points.
        assert!(
            last <= first + 0.02,
            "curve should not get worse: {first} → {last}"
        );
        assert!(last < 0.2);
    }

    #[test]
    fn decentralized_is_worse_than_central() {
        let (train, test) = task(8);
        let model = MulticlassLogistic::new(10, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let parts = partition(&train, 200, PartitionStrategy::Iid, &mut rng).unwrap();
        let result = decentralized(&model, &parts, &test, &SgdConfig::new(), 10, &mut rng).unwrap();
        assert!(!result.curve.is_empty());
        let central = central_batch(
            &model,
            &train,
            &test,
            &PrivacyConfig::non_private(),
            &BatchConfig::new(),
            &mut rng,
        )
        .unwrap();
        let dec_err = result.curve.final_error().unwrap();
        assert!(
            dec_err > central.test_error + 0.05,
            "decentralized {dec_err} should be clearly worse than central {}",
            central.test_error
        );
        // Iteration axis is fleet-wide.
        assert!(result.curve.points().last().unwrap().iteration >= 200);
        assert_eq!(result.final_device_errors.len(), 10);
    }

    #[test]
    fn decentralized_rejects_empty_input() {
        let model = MulticlassLogistic::new(4, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let test = Dataset::empty(4, 2).unwrap();
        assert!(decentralized(&model, &[], &test, &SgdConfig::new(), 5, &mut rng).is_err());
        let empty_parts = vec![Dataset::empty(4, 2).unwrap()];
        assert!(
            decentralized(&model, &empty_parts, &test, &SgdConfig::new(), 5, &mut rng).is_err()
        );
    }
}
