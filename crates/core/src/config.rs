//! Configuration types for devices, the server, and the privacy mechanisms.

use crate::error::CoreError;
use crate::Result;
use crowd_dp::{Epsilon, PrivacyBudget};
use crowd_learning::LearningRate;

/// Privacy configuration for a Crowd-ML deployment.
///
/// Wraps the per-checkin [`PrivacyBudget`] (ε_g for gradients, ε_e for the error
/// counter, ε_y for each label counter) plus the number of classes needed to
/// compute the total `ε = ε_g + ε_e + C·ε_y` of Appendix B.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyConfig {
    /// Per-checkin budget split.
    pub budget: PrivacyBudget,
}

impl PrivacyConfig {
    /// Fully non-private configuration (the ε⁻¹ = 0 setting of Figs. 3–4).
    pub fn non_private() -> Self {
        PrivacyConfig {
            budget: PrivacyBudget::non_private(),
        }
    }

    /// Splits a total ε following the paper's guidance (Appendix B, Remark 1):
    /// 99% of the budget to the gradient, 1% shared by the monitoring counters.
    pub fn with_total_epsilon(total: f64) -> Self {
        let eps = Epsilon::finite(total).unwrap_or(Epsilon::NonPrivate);
        PrivacyConfig {
            budget: PrivacyBudget::split_total(eps, 10, 0.01)
                .unwrap_or_else(|_| PrivacyBudget::non_private()),
        }
    }

    /// Builds the configuration from the inverse ε the paper reports
    /// (`ε⁻¹ = 0.1` in Figs. 5–6 and 8–9; `ε⁻¹ = 0` means non-private).
    pub fn from_inverse_epsilon(inverse: f64) -> Result<Self> {
        let eps = Epsilon::from_inverse(inverse).map_err(CoreError::Privacy)?;
        Ok(match eps {
            Epsilon::NonPrivate => Self::non_private(),
            Epsilon::Finite(v) => Self::with_total_epsilon(v),
        })
    }

    /// The gradient budget ε_g.
    pub fn gradient_epsilon(&self) -> Epsilon {
        self.budget.gradient
    }

    /// `true` when no noise is added anywhere.
    pub fn is_non_private(&self) -> bool {
        self.budget.is_non_private()
    }
}

impl Default for PrivacyConfig {
    fn default() -> Self {
        Self::non_private()
    }
}

/// Per-device configuration (Algorithm 1 inputs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceConfig {
    /// Minibatch size `b`: the device checks out parameters once it has buffered
    /// this many samples.
    pub minibatch_size: usize,
    /// Maximum buffer size `B`: sample collection pauses beyond this bound "to
    /// prevent resource outage".
    pub max_buffer: usize,
    /// Fraction of buffered samples set aside as held-out test data (Remark 2);
    /// their gradients are excluded from the average.
    pub holdout_fraction: f64,
}

impl DeviceConfig {
    /// Creates a device configuration with buffer bound `4·b` and no holdout.
    pub fn new(minibatch_size: usize) -> Self {
        DeviceConfig {
            minibatch_size,
            max_buffer: minibatch_size.saturating_mul(4).max(1),
            holdout_fraction: 0.0,
        }
    }

    /// Sets the maximum buffer size.
    pub fn with_max_buffer(mut self, max_buffer: usize) -> Self {
        self.max_buffer = max_buffer;
        self
    }

    /// Sets the held-out fraction.
    pub fn with_holdout_fraction(mut self, fraction: f64) -> Self {
        self.holdout_fraction = fraction;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.minibatch_size == 0 {
            return Err(CoreError::Config("minibatch_size must be positive".into()));
        }
        if self.max_buffer < self.minibatch_size {
            return Err(CoreError::Config(format!(
                "max_buffer {} must be at least the minibatch size {}",
                self.max_buffer, self.minibatch_size
            )));
        }
        if !(0.0..1.0).contains(&self.holdout_fraction) {
            return Err(CoreError::Config(format!(
                "holdout_fraction {} must be in [0, 1)",
                self.holdout_fraction
            )));
        }
        Ok(())
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig::new(1)
    }
}

/// Server configuration (Algorithm 2 inputs).
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Learning-rate schedule η(t); the paper's default is `c/√t`.
    pub schedule: LearningRate,
    /// L2 regularization strength λ.
    pub lambda: f64,
    /// Radius `R` of the parameter ball for the projection `Π_W`.
    pub radius: f64,
    /// Maximum number of server updates `T_max`.
    pub max_iterations: u64,
    /// Desired overall error ρ: the task stops when the (privately estimated)
    /// error falls below this value. Use 0 to disable the error-based stop.
    pub target_error: f64,
}

impl ServerConfig {
    /// A default configuration: `η(t) = 1/√t`, no regularization, radius 100,
    /// effectively unbounded iterations, no error-based stop.
    pub fn new() -> Self {
        ServerConfig {
            schedule: LearningRate::InvSqrt { c: 1.0 },
            lambda: 0.0,
            radius: 100.0,
            max_iterations: u64::MAX,
            target_error: 0.0,
        }
    }

    /// Sets the learning-rate constant `c` of the paper's `c/√t` schedule.
    pub fn with_rate_constant(mut self, c: f64) -> Self {
        self.schedule = LearningRate::InvSqrt { c };
        self
    }

    /// Sets the regularization strength.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the maximum iteration count.
    pub fn with_max_iterations(mut self, t_max: u64) -> Self {
        self.max_iterations = t_max;
        self
    }

    /// Sets the target error ρ.
    pub fn with_target_error(mut self, rho: f64) -> Self {
        self.target_error = rho;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.schedule.c() <= 0.0 || !self.schedule.c().is_finite() {
            return Err(CoreError::Config(
                "learning-rate constant must be positive".into(),
            ));
        }
        if self.lambda < 0.0 || !self.lambda.is_finite() {
            return Err(CoreError::Config("lambda must be non-negative".into()));
        }
        if self.radius <= 0.0 || !self.radius.is_finite() {
            return Err(CoreError::Config("radius must be positive".into()));
        }
        if self.max_iterations == 0 {
            return Err(CoreError::Config("max_iterations must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.target_error) {
            return Err(CoreError::Config("target_error must be in [0, 1]".into()));
        }
        Ok(())
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig::new()
    }
}

/// Complete configuration of a Crowd-ML task.
#[derive(Debug, Clone, PartialEq)]
pub struct CrowdMlConfig {
    /// Per-device configuration.
    pub device: DeviceConfig,
    /// Server configuration.
    pub server: ServerConfig,
    /// Privacy configuration.
    pub privacy: PrivacyConfig,
}

impl CrowdMlConfig {
    /// Creates a configuration from its parts, validating each.
    pub fn new(device: DeviceConfig, server: ServerConfig, privacy: PrivacyConfig) -> Result<Self> {
        device.validate()?;
        server.validate()?;
        Ok(CrowdMlConfig {
            device,
            server,
            privacy,
        })
    }

    /// A non-private single-sample-minibatch configuration (the paper's Fig. 4
    /// Crowd-ML setting).
    pub fn default_non_private() -> Self {
        CrowdMlConfig {
            device: DeviceConfig::new(1),
            server: ServerConfig::new(),
            privacy: PrivacyConfig::non_private(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privacy_config_constructors() {
        assert!(PrivacyConfig::non_private().is_non_private());
        assert!(PrivacyConfig::default().is_non_private());
        let p = PrivacyConfig::with_total_epsilon(10.0);
        assert!(!p.is_non_private());
        assert!(p.gradient_epsilon().is_private());
        // Inverse convention: 0 → non-private, 0.1 → ε = 10.
        assert!(PrivacyConfig::from_inverse_epsilon(0.0)
            .unwrap()
            .is_non_private());
        let q = PrivacyConfig::from_inverse_epsilon(0.1).unwrap();
        assert!((q.budget.total_per_checkin(10) - 10.0).abs() < 1e-9);
        assert!(PrivacyConfig::from_inverse_epsilon(-1.0).is_err());
        // Degenerate total falls back to non-private rather than panicking.
        assert!(PrivacyConfig::with_total_epsilon(0.0).is_non_private());
    }

    #[test]
    fn device_config_validation() {
        assert!(DeviceConfig::new(1).validate().is_ok());
        assert!(DeviceConfig::new(0).validate().is_err());
        assert!(DeviceConfig::new(10).with_max_buffer(5).validate().is_err());
        assert!(DeviceConfig::new(10)
            .with_holdout_fraction(1.5)
            .validate()
            .is_err());
        let d = DeviceConfig::new(20);
        assert_eq!(d.max_buffer, 80);
        assert_eq!(DeviceConfig::default().minibatch_size, 1);
    }

    #[test]
    fn server_config_validation() {
        assert!(ServerConfig::new().validate().is_ok());
        assert!(ServerConfig::new()
            .with_rate_constant(0.0)
            .validate()
            .is_err());
        assert!(ServerConfig::new().with_lambda(-1.0).validate().is_err());
        let mut s = ServerConfig::new();
        s.radius = 0.0;
        assert!(s.validate().is_err());
        s = ServerConfig::new();
        s.max_iterations = 0;
        assert!(s.validate().is_err());
        assert!(ServerConfig::new()
            .with_target_error(1.5)
            .validate()
            .is_err());
        assert_eq!(ServerConfig::default(), ServerConfig::new());
    }

    #[test]
    fn crowd_config_composition() {
        let ok = CrowdMlConfig::new(
            DeviceConfig::new(5),
            ServerConfig::new().with_rate_constant(0.5),
            PrivacyConfig::with_total_epsilon(1.0),
        );
        assert!(ok.is_ok());
        let bad = CrowdMlConfig::new(
            DeviceConfig::new(0),
            ServerConfig::new(),
            PrivacyConfig::non_private(),
        );
        assert!(bad.is_err());
        let d = CrowdMlConfig::default_non_private();
        assert!(d.privacy.is_non_private());
        assert_eq!(d.device.minibatch_size, 1);
    }
}
