//! Configuration types for devices, the server, and the privacy mechanisms.

use crate::error::CoreError;
use crate::Result;
use crowd_dp::{Epsilon, PrivacyBudget};
use crowd_learning::LearningRate;
use std::path::PathBuf;

/// Privacy configuration for a Crowd-ML deployment.
///
/// Wraps the per-checkin [`PrivacyBudget`] (ε_g for gradients, ε_e for the error
/// counter, ε_y for each label counter) plus the number of classes needed to
/// compute the total `ε = ε_g + ε_e + C·ε_y` of Appendix B.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyConfig {
    /// Per-checkin budget split.
    pub budget: PrivacyBudget,
}

impl PrivacyConfig {
    /// Fully non-private configuration (the ε⁻¹ = 0 setting of Figs. 3–4).
    pub fn non_private() -> Self {
        PrivacyConfig {
            budget: PrivacyBudget::non_private(),
        }
    }

    /// Splits a total ε following the paper's guidance (Appendix B, Remark 1):
    /// 99% of the budget to the gradient, 1% shared by the monitoring counters.
    pub fn with_total_epsilon(total: f64) -> Self {
        let eps = Epsilon::finite(total).unwrap_or(Epsilon::NonPrivate);
        PrivacyConfig {
            budget: PrivacyBudget::split_total(eps, 10, 0.01)
                .unwrap_or_else(|_| PrivacyBudget::non_private()),
        }
    }

    /// Builds the configuration from the inverse ε the paper reports
    /// (`ε⁻¹ = 0.1` in Figs. 5–6 and 8–9; `ε⁻¹ = 0` means non-private).
    pub fn from_inverse_epsilon(inverse: f64) -> Result<Self> {
        let eps = Epsilon::from_inverse(inverse).map_err(CoreError::Privacy)?;
        Ok(match eps {
            Epsilon::NonPrivate => Self::non_private(),
            Epsilon::Finite(v) => Self::with_total_epsilon(v),
        })
    }

    /// The gradient budget ε_g.
    pub fn gradient_epsilon(&self) -> Epsilon {
        self.budget.gradient
    }

    /// `true` when no noise is added anywhere.
    pub fn is_non_private(&self) -> bool {
        self.budget.is_non_private()
    }
}

impl Default for PrivacyConfig {
    fn default() -> Self {
        Self::non_private()
    }
}

/// Per-device configuration (Algorithm 1 inputs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceConfig {
    /// Minibatch size `b`: the device checks out parameters once it has buffered
    /// this many samples.
    pub minibatch_size: usize,
    /// Maximum buffer size `B`: sample collection pauses beyond this bound "to
    /// prevent resource outage".
    pub max_buffer: usize,
    /// Fraction of buffered samples set aside as held-out test data (Remark 2);
    /// their gradients are excluded from the average.
    pub holdout_fraction: f64,
}

impl DeviceConfig {
    /// Creates a device configuration with buffer bound `4·b` and no holdout.
    pub fn new(minibatch_size: usize) -> Self {
        DeviceConfig {
            minibatch_size,
            max_buffer: minibatch_size.saturating_mul(4).max(1),
            holdout_fraction: 0.0,
        }
    }

    /// Sets the maximum buffer size.
    pub fn with_max_buffer(mut self, max_buffer: usize) -> Self {
        self.max_buffer = max_buffer;
        self
    }

    /// Sets the held-out fraction.
    pub fn with_holdout_fraction(mut self, fraction: f64) -> Self {
        self.holdout_fraction = fraction;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.minibatch_size == 0 {
            return Err(CoreError::Config("minibatch_size must be positive".into()));
        }
        if self.max_buffer < self.minibatch_size {
            return Err(CoreError::Config(format!(
                "max_buffer {} must be at least the minibatch size {}",
                self.max_buffer, self.minibatch_size
            )));
        }
        if !(0.0..1.0).contains(&self.holdout_fraction) {
            return Err(CoreError::Config(format!(
                "holdout_fraction {} must be in [0, 1)",
                self.holdout_fraction
            )));
        }
        Ok(())
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig::new(1)
    }
}

/// Tuning knobs of the sharded aggregation runtime (`crowd-agg`) that serves the
/// checkin write path behind a deployed server.
///
/// The runtime keeps `shard_count` independently locked gradient accumulators,
/// admits at most `queue_bound` checkins into its ingest queue (rejecting the
/// rest with a retry-after hint instead of piling up handler threads), and folds
/// the accumulated gradients into one projected SGD step once `epoch_size`
/// checkins have arrived. `epoch_size = 1` reproduces the paper's per-checkin
/// update `w ← Π_W[w − η(t)ĝ]` exactly; larger epochs apply the *mean* of the
/// epoch's gradients as a single step (synchronous minibatch aggregation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggSettings {
    /// Number of lock stripes for the gradient accumulators. Checkins hash to a
    /// stripe by device id, so concurrent devices rarely contend.
    pub shard_count: usize,
    /// Capacity of the bounded ingest queue. A full queue rejects checkins with
    /// a "server busy" reply carrying [`AggSettings::retry_after_ms`].
    pub queue_bound: usize,
    /// Number of checkins folded into one server update. 1 = per-checkin SGD.
    pub epoch_size: u64,
    /// Worker threads draining the ingest queue into the shards.
    pub worker_threads: usize,
    /// Retry hint (milliseconds) returned with backpressure rejections.
    pub retry_after_ms: u32,
    /// Idle flush interval in milliseconds: a partially filled epoch is applied
    /// once the ingest queue stays empty this long, so a trickle of checkins
    /// never stalls behind an unreachable `epoch_size`. 0 disables idle flushes
    /// (epochs then close only on `epoch_size` or shutdown), which makes epoch
    /// boundaries — and therefore the whole run — independent of thread timing.
    pub flush_idle_ms: u32,
}

impl AggSettings {
    /// Defaults: 8 shards, 1024-deep queue, per-checkin updates, 2 workers,
    /// 2 ms retry hint, 1 ms idle flush.
    pub fn new() -> Self {
        AggSettings {
            shard_count: 8,
            queue_bound: 1024,
            epoch_size: 1,
            worker_threads: 2,
            retry_after_ms: 2,
            flush_idle_ms: 1,
        }
    }

    /// Validates the settings.
    pub fn validate(&self) -> Result<()> {
        if self.shard_count == 0 {
            return Err(CoreError::Config("shard_count must be positive".into()));
        }
        if self.queue_bound == 0 {
            return Err(CoreError::Config("queue_bound must be positive".into()));
        }
        if self.epoch_size == 0 {
            return Err(CoreError::Config("epoch_size must be positive".into()));
        }
        if self.worker_threads == 0 {
            return Err(CoreError::Config("worker_threads must be positive".into()));
        }
        Ok(())
    }
}

impl Default for AggSettings {
    fn default() -> Self {
        AggSettings::new()
    }
}

/// Durability knobs of the persistence subsystem (`crowd-store`).
///
/// A server with a `data_dir` keeps a CRC-framed write-ahead log of every
/// applied epoch (appended and group-committed *before* the epoch's checkins
/// are acknowledged) plus periodic atomic-rename full snapshots; on restart it
/// loads the latest snapshot and replays the WAL tail to a state bitwise
/// identical to an uninterrupted run. With `data_dir = None` (the default) the
/// server is volatile, exactly as before.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistSettings {
    /// Directory holding the snapshot and WAL files. `None` disables
    /// persistence entirely.
    pub data_dir: Option<PathBuf>,
    /// Full snapshot (and WAL rotation/compaction) every this many applied
    /// epochs. 0 = snapshot only at clean shutdown.
    pub snapshot_every_epochs: u64,
    /// `fsync` the WAL after every append and the snapshot after every write.
    /// Required for durability across power loss; off by default because the
    /// tests and benches only need durability across process crashes.
    pub fsync: bool,
}

impl PersistSettings {
    /// Defaults: persistence disabled, snapshot every 256 epochs once enabled,
    /// no fsync.
    pub fn new() -> Self {
        PersistSettings {
            data_dir: None,
            snapshot_every_epochs: 256,
            fsync: false,
        }
    }

    /// `true` when a data directory is configured.
    pub fn is_enabled(&self) -> bool {
        self.data_dir.is_some()
    }

    /// Validates the settings.
    pub fn validate(&self) -> Result<()> {
        if let Some(dir) = &self.data_dir {
            if dir.as_os_str().is_empty() {
                return Err(CoreError::Config("data_dir must not be empty".into()));
            }
        }
        Ok(())
    }
}

impl Default for PersistSettings {
    fn default() -> Self {
        PersistSettings::new()
    }
}

/// Per-device privacy-budget accounting enforced on the server's write path.
///
/// The server is the custodian of how much ε each device has already spent;
/// every checkin a device contributes is charged `per_checkin_epsilon` to its
/// ledger (the `ε_g + ε_e + C·ε_y` total of Appendix B), and once a device
/// reaches `ceiling` the server refuses to serve it further checkouts or accept
/// its checkins — it will not silently over-query a device past its ε budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetSettings {
    /// ε charged per checkin. 0 disables accounting.
    pub per_checkin_epsilon: f64,
    /// Per-device ε ceiling; `f64::INFINITY` = track spend without enforcing.
    pub ceiling: f64,
}

impl BudgetSettings {
    /// Defaults: accounting disabled (no per-checkin cost, infinite ceiling).
    pub fn new() -> Self {
        BudgetSettings {
            per_checkin_epsilon: 0.0,
            ceiling: f64::INFINITY,
        }
    }

    /// `true` when no spend would ever be recorded.
    pub fn is_disabled(&self) -> bool {
        self.per_checkin_epsilon == 0.0 && self.ceiling.is_infinite()
    }

    /// Validates the settings.
    pub fn validate(&self) -> Result<()> {
        if self.per_checkin_epsilon < 0.0 || !self.per_checkin_epsilon.is_finite() {
            return Err(CoreError::Config(
                "per_checkin_epsilon must be finite and non-negative".into(),
            ));
        }
        if self.ceiling <= 0.0 || self.ceiling.is_nan() {
            return Err(CoreError::Config(
                "budget ceiling must be positive (or infinite)".into(),
            ));
        }
        Ok(())
    }
}

impl Default for BudgetSettings {
    fn default() -> Self {
        BudgetSettings::new()
    }
}

/// Round-based cohort protocol settings (wire v6).
///
/// When configured, the server runs the `crowd-rounds` protocol: it publishes
/// [`crowd_proto::message::RoundParams`]-shaped parameters in every checkout,
/// accepts exactly one masked submission per selected device per round, and
/// folds the unmasked cohort sum into the model when the round finalizes
/// (cohort complete or `deadline_epochs` applied epochs elapsed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundSettings {
    /// Fraction of the population selected into each round's cohort, in
    /// `(0, 1]`.
    pub select_fraction: f64,
    /// A round expires after this many applied server epochs without cohort
    /// completion; survivors are then finalized with dropout compensation.
    pub deadline_epochs: u32,
    /// Device-id population the selection draws from (`0..population`).
    pub population: u64,
    /// Base seed; each round's selection seed is derived from
    /// `(seed, round_id)`.
    pub seed: u64,
}

impl RoundSettings {
    /// Defaults: half the population per round, 8-epoch deadline.
    pub fn new(population: u64) -> Self {
        RoundSettings {
            select_fraction: 0.5,
            deadline_epochs: 8,
            population,
            seed: 0x0C0D_0217,
        }
    }

    /// Sets the cohort selection fraction.
    pub fn with_select_fraction(mut self, fraction: f64) -> Self {
        self.select_fraction = fraction;
        self
    }

    /// Sets the round deadline in applied epochs.
    pub fn with_deadline_epochs(mut self, epochs: u32) -> Self {
        self.deadline_epochs = epochs;
        self
    }

    /// Sets the base selection seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the settings.
    pub fn validate(&self) -> Result<()> {
        if !(self.select_fraction.is_finite()
            && self.select_fraction > 0.0
            && self.select_fraction <= 1.0)
        {
            return Err(CoreError::Config(format!(
                "select_fraction {} must be in (0, 1]",
                self.select_fraction
            )));
        }
        if self.deadline_epochs == 0 {
            return Err(CoreError::Config("deadline_epochs must be positive".into()));
        }
        if self.population == 0 {
            return Err(CoreError::Config(
                "round population must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Server configuration (Algorithm 2 inputs).
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Learning-rate schedule η(t); the paper's default is `c/√t`.
    pub schedule: LearningRate,
    /// L2 regularization strength λ.
    pub lambda: f64,
    /// Radius `R` of the parameter ball for the projection `Π_W`.
    pub radius: f64,
    /// Maximum number of server updates `T_max`.
    pub max_iterations: u64,
    /// Desired overall error ρ: the task stops when the (privately estimated)
    /// error falls below this value. Use 0 to disable the error-based stop.
    pub target_error: f64,
    /// Aggregation-runtime knobs used by deployed (networked) servers.
    pub agg: AggSettings,
    /// Durability knobs of the persistence subsystem (`crowd-store`).
    pub persist: PersistSettings,
    /// Per-device privacy-budget accounting on the checkin write path.
    pub budget: BudgetSettings,
    /// Round-based cohort protocol; `None` (the default) free-runs as before.
    pub rounds: Option<RoundSettings>,
}

impl ServerConfig {
    /// A default configuration: `η(t) = 1/√t`, no regularization, radius 100,
    /// effectively unbounded iterations, no error-based stop.
    pub fn new() -> Self {
        ServerConfig {
            schedule: LearningRate::InvSqrt { c: 1.0 },
            lambda: 0.0,
            radius: 100.0,
            max_iterations: u64::MAX,
            target_error: 0.0,
            agg: AggSettings::new(),
            persist: PersistSettings::new(),
            budget: BudgetSettings::new(),
            rounds: None,
        }
    }

    /// Sets the learning-rate constant `c` of the paper's `c/√t` schedule.
    pub fn with_rate_constant(mut self, c: f64) -> Self {
        self.schedule = LearningRate::InvSqrt { c };
        self
    }

    /// Sets the regularization strength.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the maximum iteration count.
    pub fn with_max_iterations(mut self, t_max: u64) -> Self {
        self.max_iterations = t_max;
        self
    }

    /// Sets the target error ρ.
    pub fn with_target_error(mut self, rho: f64) -> Self {
        self.target_error = rho;
        self
    }

    /// Replaces the aggregation-runtime settings wholesale.
    pub fn with_agg(mut self, agg: AggSettings) -> Self {
        self.agg = agg;
        self
    }

    /// Sets the number of accumulator shards of the aggregation runtime.
    pub fn with_shard_count(mut self, shards: usize) -> Self {
        self.agg.shard_count = shards;
        self
    }

    /// Sets the ingest-queue capacity of the aggregation runtime.
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        self.agg.queue_bound = bound;
        self
    }

    /// Sets how many checkins are folded into one server update.
    pub fn with_epoch_size(mut self, epoch: u64) -> Self {
        self.agg.epoch_size = epoch;
        self
    }

    /// Enables durability: WAL + snapshots under `data_dir`, recovery at start.
    pub fn with_data_dir(mut self, data_dir: impl Into<PathBuf>) -> Self {
        self.persist.data_dir = Some(data_dir.into());
        self
    }

    /// Sets the snapshot/rotation cadence (applied epochs between snapshots;
    /// 0 = snapshot only at clean shutdown).
    pub fn with_snapshot_every(mut self, epochs: u64) -> Self {
        self.persist.snapshot_every_epochs = epochs;
        self
    }

    /// Enables `fsync` on WAL appends and snapshot writes.
    pub fn with_fsync(mut self, fsync: bool) -> Self {
        self.persist.fsync = fsync;
        self
    }

    /// Enables per-device ε accounting: `per_checkin_epsilon` charged per
    /// checkin against a per-device `ceiling` (use `f64::INFINITY` to track
    /// without enforcing).
    pub fn with_budget(mut self, per_checkin_epsilon: f64, ceiling: f64) -> Self {
        self.budget = BudgetSettings {
            per_checkin_epsilon,
            ceiling,
        };
        self
    }

    /// Enables the round-based cohort protocol.
    pub fn with_rounds(mut self, rounds: RoundSettings) -> Self {
        self.rounds = Some(rounds);
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.schedule.c() <= 0.0 || !self.schedule.c().is_finite() {
            return Err(CoreError::Config(
                "learning-rate constant must be positive".into(),
            ));
        }
        if self.lambda < 0.0 || !self.lambda.is_finite() {
            return Err(CoreError::Config("lambda must be non-negative".into()));
        }
        if self.radius <= 0.0 || !self.radius.is_finite() {
            return Err(CoreError::Config("radius must be positive".into()));
        }
        if self.max_iterations == 0 {
            return Err(CoreError::Config("max_iterations must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.target_error) {
            return Err(CoreError::Config("target_error must be in [0, 1]".into()));
        }
        self.agg.validate()?;
        self.persist.validate()?;
        self.budget.validate()?;
        if let Some(rounds) = &self.rounds {
            rounds.validate()?;
        }
        Ok(())
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig::new()
    }
}

/// Complete configuration of a Crowd-ML task.
#[derive(Debug, Clone, PartialEq)]
pub struct CrowdMlConfig {
    /// Per-device configuration.
    pub device: DeviceConfig,
    /// Server configuration.
    pub server: ServerConfig,
    /// Privacy configuration.
    pub privacy: PrivacyConfig,
}

impl CrowdMlConfig {
    /// Creates a configuration from its parts, validating each.
    pub fn new(device: DeviceConfig, server: ServerConfig, privacy: PrivacyConfig) -> Result<Self> {
        device.validate()?;
        server.validate()?;
        Ok(CrowdMlConfig {
            device,
            server,
            privacy,
        })
    }

    /// A non-private single-sample-minibatch configuration (the paper's Fig. 4
    /// Crowd-ML setting).
    pub fn default_non_private() -> Self {
        CrowdMlConfig {
            device: DeviceConfig::new(1),
            server: ServerConfig::new(),
            privacy: PrivacyConfig::non_private(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privacy_config_constructors() {
        assert!(PrivacyConfig::non_private().is_non_private());
        assert!(PrivacyConfig::default().is_non_private());
        let p = PrivacyConfig::with_total_epsilon(10.0);
        assert!(!p.is_non_private());
        assert!(p.gradient_epsilon().is_private());
        // Inverse convention: 0 → non-private, 0.1 → ε = 10.
        assert!(PrivacyConfig::from_inverse_epsilon(0.0)
            .unwrap()
            .is_non_private());
        let q = PrivacyConfig::from_inverse_epsilon(0.1).unwrap();
        assert!((q.budget.total_per_checkin(10) - 10.0).abs() < 1e-9);
        assert!(PrivacyConfig::from_inverse_epsilon(-1.0).is_err());
        // Degenerate total falls back to non-private rather than panicking.
        assert!(PrivacyConfig::with_total_epsilon(0.0).is_non_private());
    }

    #[test]
    fn device_config_validation() {
        assert!(DeviceConfig::new(1).validate().is_ok());
        assert!(DeviceConfig::new(0).validate().is_err());
        assert!(DeviceConfig::new(10).with_max_buffer(5).validate().is_err());
        assert!(DeviceConfig::new(10)
            .with_holdout_fraction(1.5)
            .validate()
            .is_err());
        let d = DeviceConfig::new(20);
        assert_eq!(d.max_buffer, 80);
        assert_eq!(DeviceConfig::default().minibatch_size, 1);
    }

    #[test]
    fn server_config_validation() {
        assert!(ServerConfig::new().validate().is_ok());
        assert!(ServerConfig::new()
            .with_rate_constant(0.0)
            .validate()
            .is_err());
        assert!(ServerConfig::new().with_lambda(-1.0).validate().is_err());
        let mut s = ServerConfig::new();
        s.radius = 0.0;
        assert!(s.validate().is_err());
        s = ServerConfig::new();
        s.max_iterations = 0;
        assert!(s.validate().is_err());
        assert!(ServerConfig::new()
            .with_target_error(1.5)
            .validate()
            .is_err());
        assert_eq!(ServerConfig::default(), ServerConfig::new());
    }

    #[test]
    fn agg_settings_validation_and_builders() {
        assert!(AggSettings::new().validate().is_ok());
        assert_eq!(AggSettings::default(), AggSettings::new());
        for broken in [
            AggSettings {
                shard_count: 0,
                ..AggSettings::new()
            },
            AggSettings {
                queue_bound: 0,
                ..AggSettings::new()
            },
            AggSettings {
                epoch_size: 0,
                ..AggSettings::new()
            },
            AggSettings {
                worker_threads: 0,
                ..AggSettings::new()
            },
        ] {
            assert!(broken.validate().is_err());
            assert!(ServerConfig::new().with_agg(broken).validate().is_err());
        }
        let tuned = ServerConfig::new()
            .with_shard_count(4)
            .with_queue_bound(16)
            .with_epoch_size(32);
        assert_eq!(tuned.agg.shard_count, 4);
        assert_eq!(tuned.agg.queue_bound, 16);
        assert_eq!(tuned.agg.epoch_size, 32);
        assert!(tuned.validate().is_ok());
    }

    #[test]
    fn persist_and_budget_settings_validate() {
        assert!(PersistSettings::new().validate().is_ok());
        assert!(!PersistSettings::new().is_enabled());
        assert_eq!(PersistSettings::default(), PersistSettings::new());
        let enabled = ServerConfig::new()
            .with_data_dir("/tmp/crowd-store")
            .with_snapshot_every(8)
            .with_fsync(true);
        assert!(enabled.persist.is_enabled());
        assert_eq!(enabled.persist.snapshot_every_epochs, 8);
        assert!(enabled.persist.fsync);
        assert!(enabled.validate().is_ok());
        let empty_dir = ServerConfig::new().with_data_dir("");
        assert!(empty_dir.validate().is_err());

        assert!(BudgetSettings::new().validate().is_ok());
        assert!(BudgetSettings::new().is_disabled());
        assert_eq!(BudgetSettings::default(), BudgetSettings::new());
        let tracked = ServerConfig::new().with_budget(0.5, 10.0);
        assert!(!tracked.budget.is_disabled());
        assert!(tracked.validate().is_ok());
        assert!(ServerConfig::new()
            .with_budget(-0.1, 10.0)
            .validate()
            .is_err());
        assert!(ServerConfig::new()
            .with_budget(f64::NAN, 10.0)
            .validate()
            .is_err());
        assert!(ServerConfig::new()
            .with_budget(0.5, 0.0)
            .validate()
            .is_err());
        assert!(ServerConfig::new()
            .with_budget(0.5, f64::NAN)
            .validate()
            .is_err());
        // Tracking-only (infinite ceiling, positive cost) is valid and enabled.
        let tracking = BudgetSettings {
            per_checkin_epsilon: 0.1,
            ceiling: f64::INFINITY,
        };
        assert!(tracking.validate().is_ok());
        assert!(!tracking.is_disabled());
    }

    #[test]
    fn round_settings_validate() {
        assert!(RoundSettings::new(8).validate().is_ok());
        let cfg = ServerConfig::new().with_rounds(
            RoundSettings::new(8)
                .with_select_fraction(0.25)
                .with_deadline_epochs(4)
                .with_seed(99),
        );
        let r = cfg.rounds.unwrap();
        assert_eq!(r.select_fraction, 0.25);
        assert_eq!(r.deadline_epochs, 4);
        assert_eq!(r.seed, 99);
        assert!(cfg.validate().is_ok());
        for broken in [
            RoundSettings::new(8).with_select_fraction(0.0),
            RoundSettings::new(8).with_select_fraction(1.5),
            RoundSettings::new(8).with_select_fraction(f64::NAN),
            RoundSettings::new(8).with_deadline_epochs(0),
            RoundSettings::new(0),
        ] {
            assert!(broken.validate().is_err());
            assert!(ServerConfig::new().with_rounds(broken).validate().is_err());
        }
        // ServerConfig::new() stays round-free (wire round_id 0 = free-run).
        assert!(ServerConfig::new().rounds.is_none());
    }

    #[test]
    fn crowd_config_composition() {
        let ok = CrowdMlConfig::new(
            DeviceConfig::new(5),
            ServerConfig::new().with_rate_constant(0.5),
            PrivacyConfig::with_total_epsilon(1.0),
        );
        assert!(ok.is_ok());
        let bad = CrowdMlConfig::new(
            DeviceConfig::new(0),
            ServerConfig::new(),
            PrivacyConfig::non_private(),
        );
        assert!(bad.is_err());
        let d = CrowdMlConfig::default_non_private();
        assert!(d.privacy.is_non_private());
        assert_eq!(d.device.minibatch_size, 1);
    }
}
