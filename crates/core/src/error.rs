//! Error type for the Crowd-ML core crate.

use std::fmt;

/// Errors produced by the Crowd-ML framework.
#[derive(Debug)]
pub enum CoreError {
    /// Invalid configuration value.
    Config(String),
    /// An error bubbled up from the learning substrate.
    Learning(crowd_learning::LearningError),
    /// An error bubbled up from the privacy substrate.
    Privacy(crowd_dp::DpError),
    /// An error bubbled up from the data substrate.
    Data(crowd_data::DataError),
    /// A device or the server was used in a way that violates the protocol state
    /// machine (e.g. a checkin without a preceding checkout).
    Protocol(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Config(msg) => write!(f, "configuration error: {msg}"),
            CoreError::Learning(e) => write!(f, "learning error: {e}"),
            CoreError::Privacy(e) => write!(f, "privacy error: {e}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
            CoreError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Learning(e) => Some(e),
            CoreError::Privacy(e) => Some(e),
            CoreError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crowd_learning::LearningError> for CoreError {
    fn from(e: crowd_learning::LearningError) -> Self {
        CoreError::Learning(e)
    }
}

impl From<crowd_dp::DpError> for CoreError {
    fn from(e: crowd_dp::DpError) -> Self {
        CoreError::Privacy(e)
    }
}

impl From<crowd_data::DataError> for CoreError {
    fn from(e: crowd_data::DataError) -> Self {
        CoreError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let cfg = CoreError::Config("bad b".into());
        assert!(cfg.to_string().contains("bad b"));
        let learning: CoreError = crowd_learning::LearningError::EmptyData.into();
        assert!(learning.to_string().contains("learning"));
        assert!(std::error::Error::source(&learning).is_some());
        let privacy: CoreError = crowd_dp::DpError::EmptyCandidateSet.into();
        assert!(privacy.to_string().contains("privacy"));
        let data: CoreError = crowd_data::DataError::InvalidArgument("x".into()).into();
        assert!(data.to_string().contains("data"));
        let proto = CoreError::Protocol("double checkout".into());
        assert!(proto.to_string().contains("double checkout"));
        assert!(std::error::Error::source(&proto).is_none());
    }
}
