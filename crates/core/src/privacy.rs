//! Device-side sanitization (Device Routine 3).
//!
//! Everything that leaves a device passes through the [`Sanitizer`]:
//!
//! * the averaged gradient gets element-wise Laplace noise calibrated to the
//!   `4/b` sensitivity of the averaged multiclass-logistic gradient (Eq. 10,
//!   Theorem 1);
//! * the misclassification count and each label count get discrete Laplace noise
//!   (Eqs. 11–12, Theorem 2).
//!
//! The sanitizer is constructed per checkin from the privacy configuration and the
//! *actual* number of samples in the minibatch, because the sensitivity (and hence
//! the noise scale) depends on the averaged batch size.

use crate::config::PrivacyConfig;
use crate::Result;
use crowd_dp::sensitivity::averaged_logistic_gradient;
use crowd_dp::{DiscreteLaplaceMechanism, LaplaceMechanism};
use crowd_linalg::Vector;
use rand::Rng;

/// The sanitized payload produced from raw minibatch statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SanitizedStats {
    /// The perturbed averaged gradient `ĝ`.
    pub gradient: Vector,
    /// The perturbed misclassification count `n̂_e` (may be negative).
    pub error_count: i64,
    /// The perturbed per-class label counts `n̂_y^k` (may be negative).
    pub label_counts: Vec<i64>,
}

/// Applies the paper's local privacy mechanisms to one minibatch's statistics.
#[derive(Debug, Clone)]
pub struct Sanitizer {
    gradient_mechanism: LaplaceMechanism,
    counter_mechanism: DiscreteLaplaceMechanism,
    label_mechanism: DiscreteLaplaceMechanism,
}

impl Sanitizer {
    /// Builds a sanitizer for a minibatch of `batch_size` samples under the given
    /// privacy configuration.
    pub fn new(privacy: &PrivacyConfig, batch_size: usize) -> Result<Self> {
        let sensitivity = averaged_logistic_gradient(batch_size);
        let gradient_mechanism = LaplaceMechanism::new(privacy.budget.gradient, sensitivity)
            .map_err(crate::CoreError::Privacy)?;
        Ok(Sanitizer {
            gradient_mechanism,
            counter_mechanism: DiscreteLaplaceMechanism::new(privacy.budget.error_count),
            label_mechanism: DiscreteLaplaceMechanism::new(privacy.budget.label_count),
        })
    }

    /// The per-coordinate Laplace scale applied to the gradient (`4/(b·ε_g)`).
    pub fn gradient_noise_scale(&self) -> f64 {
        self.gradient_mechanism.scale()
    }

    /// Sanitizes one minibatch's statistics.
    pub fn sanitize<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        gradient: &Vector,
        num_errors: usize,
        label_counts: &[u64],
    ) -> SanitizedStats {
        let gradient = self.gradient_mechanism.perturb_vector(rng, gradient);
        let error_count = self.counter_mechanism.perturb_count(rng, num_errors as i64);
        let label_counts = label_counts
            .iter()
            .map(|&c| self.label_mechanism.perturb_count(rng, c as i64))
            .collect();
        SanitizedStats {
            gradient,
            error_count,
            label_counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrivacyConfig;
    use crowd_linalg::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn non_private_sanitizer_is_identity() {
        let s = Sanitizer::new(&PrivacyConfig::non_private(), 10).unwrap();
        assert_eq!(s.gradient_noise_scale(), 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let g = Vector::from_vec(vec![0.5, -0.5, 1.0]);
        let out = s.sanitize(&mut rng, &g, 3, &[1, 2, 0]);
        assert_eq!(out.gradient, g);
        assert_eq!(out.error_count, 3);
        assert_eq!(out.label_counts, vec![1, 2, 0]);
    }

    #[test]
    fn noise_scale_matches_eq_10() {
        // ε total 1.0 split 99/1: ε_g = 0.99, b = 20 → scale = 4/(20·0.99).
        let privacy = PrivacyConfig::with_total_epsilon(1.0);
        let s = Sanitizer::new(&privacy, 20).unwrap();
        let expected = 4.0 / (20.0 * 0.99);
        assert!((s.gradient_noise_scale() - expected).abs() < 1e-12);
        // Larger minibatch → proportionally less noise.
        let s1 = Sanitizer::new(&privacy, 1).unwrap();
        assert!((s1.gradient_noise_scale() / s.gradient_noise_scale() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn private_sanitizer_perturbs_every_component() {
        let privacy = PrivacyConfig::with_total_epsilon(0.5);
        let s = Sanitizer::new(&privacy, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let g = Vector::zeros(50);
        let out = s.sanitize(&mut rng, &g, 0, &[0; 10]);
        assert!(out.gradient.norm_l1() > 0.0);
        // With a tiny counter budget, noise on counters should frequently be
        // non-zero across repeated draws.
        let mut changed = 0;
        for _ in 0..200 {
            let o = s.sanitize(&mut rng, &g, 0, &[0; 3]);
            if o.error_count != 0 || o.label_counts.iter().any(|&c| c != 0) {
                changed += 1;
            }
        }
        assert!(changed > 150, "counters changed only {changed}/200 times");
    }

    #[test]
    fn gradient_noise_variance_scales_with_batch_size() {
        // Empirically verify the 1/b² variance reduction of Eq. 13's Laplace term.
        let privacy = PrivacyConfig::with_total_epsilon(1.0);
        let small = Sanitizer::new(&privacy, 1).unwrap();
        let large = Sanitizer::new(&privacy, 20).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let g = Vector::zeros(1);
        let draw = |s: &Sanitizer, rng: &mut StdRng| -> Vec<f64> {
            (0..20_000)
                .map(|_| s.sanitize(rng, &g, 0, &[]).gradient[0])
                .collect()
        };
        let var_small = stats::variance(&draw(&small, &mut rng));
        let var_large = stats::variance(&draw(&large, &mut rng));
        let ratio = var_small / var_large;
        assert!(
            (ratio - 400.0).abs() / 400.0 < 0.25,
            "variance ratio {ratio}, expected ≈400"
        );
    }

    #[test]
    fn sanitization_is_reproducible_per_seed() {
        let privacy = PrivacyConfig::with_total_epsilon(2.0);
        let s = Sanitizer::new(&privacy, 5).unwrap();
        let g = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        let a = s.sanitize(&mut StdRng::seed_from_u64(7), &g, 2, &[1, 1, 3]);
        let b = s.sanitize(&mut StdRng::seed_from_u64(7), &g, 2, &[1, 1, 3]);
        assert_eq!(a, b);
    }
}
