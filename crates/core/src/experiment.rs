//! High-level experiment runners reproducing the paper's evaluation protocol.
//!
//! A [`CrowdMlExperiment`] bundles a [`Workload`] (which dataset, how it is split
//! across devices) with an [`ExperimentConfig`] (number of devices `M`, minibatch
//! size `b`, privacy level, delay, learning rate, seed) and can run:
//!
//! * the Crowd-ML system itself ([`CrowdMlExperiment::run`]), via the asynchronous
//!   simulation;
//! * the Centralized (batch) baseline ([`CrowdMlExperiment::run_central_batch`]);
//! * the Centralized (SGD) baseline on input-perturbed data
//!   ([`CrowdMlExperiment::run_central_sgd`]);
//! * the Decentralized baseline ([`CrowdMlExperiment::run_decentralized`]).
//!
//! The figure binaries in `crowd-bench` are thin wrappers that call these with the
//! parameter grids of Figs. 3–9.

use crate::baselines::{central_batch, central_sgd, decentralized};
use crate::config::{CrowdMlConfig, DeviceConfig, PrivacyConfig, ServerConfig};
use crate::simulation::{run_crowd_ml, SimulationConfig};
use crate::Result;
use crowd_data::activity::{simulate_fleet, ActivityConfig};
use crowd_data::partition::{partition, PartitionStrategy};
use crowd_data::synthetic::{cifar_feature_like, mnist_like, GaussianMixtureSpec};
use crowd_data::Dataset;
use crowd_learning::batch::BatchConfig;
use crowd_learning::metrics::{time_averaged_error, ErrorCurve};
use crowd_learning::sgd::SgdConfig;
use crowd_learning::{LearningRate, MulticlassLogistic};
use crowd_sim::{DelayModel, TraceCollector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which dataset an experiment runs on.
#[derive(Debug, Clone)]
pub enum Workload {
    /// A synthetic Gaussian-mixture task (used by the quickstart and tests).
    GaussianMixture(GaussianMixtureSpec),
    /// The MNIST surrogate of §V-C (50-D, 10 classes); `scale` shrinks the
    /// 60 000/10 000 sample counts proportionally.
    MnistLike {
        /// Fraction of the paper-scale sample counts to generate.
        scale: f64,
    },
    /// The CIFAR-feature surrogate of Appendix D (100-D, 10 classes).
    CifarFeatureLike {
        /// Fraction of the paper-scale sample counts to generate.
        scale: f64,
    },
    /// The activity-recognition workload of §V-B: per-device accelerometer
    /// simulation with label-change-triggered sampling.
    Activity {
        /// Samples each device contributes to training.
        samples_per_device: usize,
        /// Samples generated for the common test set.
        test_samples: usize,
    },
    /// A user-provided dataset pair.
    Custom {
        /// Training data (will be partitioned across devices).
        train: Dataset,
        /// Test data.
        test: Dataset,
    },
}

/// Experiment-level configuration shared by Crowd-ML and the baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Number of devices `M`.
    pub devices: usize,
    /// Minibatch size `b`.
    pub minibatch: usize,
    /// Passes over the training data.
    pub passes: f64,
    /// Privacy configuration (shared ε convention with the baselines).
    pub privacy: PrivacyConfig,
    /// Maximum per-leg communication delay, in units of Δ (fleet-wide sample
    /// arrivals); 0 disables delays.
    pub delay_delta: f64,
    /// Learning-rate constant `c` of the `c/√t` schedule.
    pub rate_constant: f64,
    /// L2 regularization strength λ.
    pub lambda: f64,
    /// Radius of the parameter ball.
    pub radius: f64,
    /// Number of points to record on each error curve.
    pub eval_points: usize,
    /// Random seed controlling data generation, partitioning, noise, and delays.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Starts a builder with the defaults of the paper's Fig. 4 configuration
    /// (M = 100, b = 1, one pass, non-private, no delay, c = 1).
    pub fn builder() -> ExperimentConfigBuilder {
        ExperimentConfigBuilder {
            config: ExperimentConfig {
                devices: 100,
                minibatch: 1,
                passes: 1.0,
                privacy: PrivacyConfig::non_private(),
                delay_delta: 0.0,
                rate_constant: 1.0,
                lambda: 0.0,
                radius: 100.0,
                eval_points: 30,
                seed: 0,
            },
        }
    }

    fn validate(&self) -> Result<()> {
        if self.devices == 0 {
            return Err(crate::CoreError::Config("devices must be positive".into()));
        }
        if self.minibatch == 0 {
            return Err(crate::CoreError::Config(
                "minibatch must be positive".into(),
            ));
        }
        if self.passes <= 0.0 {
            return Err(crate::CoreError::Config("passes must be positive".into()));
        }
        if self.eval_points == 0 {
            return Err(crate::CoreError::Config(
                "eval_points must be positive".into(),
            ));
        }
        if self.delay_delta < 0.0 || !self.delay_delta.is_finite() {
            return Err(crate::CoreError::Config(
                "delay_delta must be non-negative".into(),
            ));
        }
        Ok(())
    }

    fn crowd_config(&self) -> Result<CrowdMlConfig> {
        CrowdMlConfig::new(
            DeviceConfig::new(self.minibatch)
                .with_max_buffer(self.minibatch.saturating_mul(64).max(64)),
            ServerConfig {
                schedule: LearningRate::InvSqrt {
                    c: self.rate_constant,
                },
                lambda: self.lambda,
                radius: self.radius,
                max_iterations: u64::MAX,
                target_error: 0.0,
                agg: crate::config::AggSettings::new(),
                persist: crate::config::PersistSettings::new(),
                budget: crate::config::BudgetSettings::new(),
                rounds: None,
            },
            self.privacy,
        )
    }

    fn sgd_config(&self, train_len: usize) -> SgdConfig {
        SgdConfig {
            schedule: LearningRate::InvSqrt {
                c: self.rate_constant,
            },
            lambda: self.lambda,
            radius: self.radius,
            minibatch_size: self.minibatch,
            passes: self.passes,
            eval_every: self.eval_every(train_len),
        }
    }

    fn eval_every(&self, train_len: usize) -> usize {
        let total = ((train_len as f64) * self.passes).ceil() as usize;
        (total / self.eval_points).max(1)
    }
}

/// Builder for [`ExperimentConfig`].
#[derive(Debug, Clone)]
pub struct ExperimentConfigBuilder {
    config: ExperimentConfig,
}

impl ExperimentConfigBuilder {
    /// Sets the number of devices `M`.
    pub fn devices(mut self, devices: usize) -> Self {
        self.config.devices = devices;
        self
    }

    /// Sets the minibatch size `b`.
    pub fn minibatch(mut self, minibatch: usize) -> Self {
        self.config.minibatch = minibatch;
        self
    }

    /// Sets the number of passes over the training data.
    pub fn passes(mut self, passes: f64) -> Self {
        self.config.passes = passes;
        self
    }

    /// Sets the privacy configuration.
    pub fn privacy(mut self, privacy: PrivacyConfig) -> Self {
        self.config.privacy = privacy;
        self
    }

    /// Sets the maximum per-leg delay in Δ units.
    pub fn delay_delta(mut self, delay: f64) -> Self {
        self.config.delay_delta = delay;
        self
    }

    /// Sets the learning-rate constant `c`.
    pub fn rate_constant(mut self, c: f64) -> Self {
        self.config.rate_constant = c;
        self
    }

    /// Sets the regularization strength λ.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.config.lambda = lambda;
        self
    }

    /// Sets the number of curve evaluation points.
    pub fn eval_points(mut self, points: usize) -> Self {
        self.config.eval_points = points;
        self
    }

    /// Sets the random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> ExperimentConfig {
        self.config
    }
}

/// The outcome of running Crowd-ML on a workload.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// Test-error curve against samples consumed by the server.
    pub curve: ErrorCurve,
    /// Time-averaged online error across devices (the Fig. 3 curve).
    pub online_error: Vec<f64>,
    /// Number of server updates applied.
    pub server_iterations: u64,
    /// Simulation trace (event counts, staleness).
    pub trace: TraceCollector,
}

impl ExperimentOutcome {
    /// The final test error.
    pub fn final_test_error(&self) -> f64 {
        self.curve.final_error().unwrap_or(1.0)
    }
}

/// A fully specified experiment: workload + configuration.
#[derive(Debug, Clone)]
pub struct CrowdMlExperiment {
    workload: Workload,
    config: ExperimentConfig,
}

/// The materialized data of an experiment: per-device training partitions and a
/// common test set.
#[derive(Debug, Clone)]
pub struct MaterializedData {
    /// Per-device training data.
    pub partitions: Vec<Dataset>,
    /// Pooled training data (union of the partitions).
    pub pooled_train: Dataset,
    /// Common test set.
    pub test: Dataset,
    /// Feature dimensionality.
    pub dim: usize,
    /// Number of classes.
    pub num_classes: usize,
}

impl CrowdMlExperiment {
    /// Experiment on a Gaussian-mixture workload.
    pub fn gaussian_mixture(spec: GaussianMixtureSpec, config: ExperimentConfig) -> Self {
        CrowdMlExperiment {
            workload: Workload::GaussianMixture(spec),
            config,
        }
    }

    /// Experiment on the MNIST surrogate (§V-C).
    pub fn mnist_like(scale: f64, config: ExperimentConfig) -> Self {
        CrowdMlExperiment {
            workload: Workload::MnistLike { scale },
            config,
        }
    }

    /// Experiment on the CIFAR-feature surrogate (Appendix D).
    pub fn cifar_feature_like(scale: f64, config: ExperimentConfig) -> Self {
        CrowdMlExperiment {
            workload: Workload::CifarFeatureLike { scale },
            config,
        }
    }

    /// Experiment on the activity-recognition workload (§V-B).
    pub fn activity(
        samples_per_device: usize,
        test_samples: usize,
        config: ExperimentConfig,
    ) -> Self {
        CrowdMlExperiment {
            workload: Workload::Activity {
                samples_per_device,
                test_samples,
            },
            config,
        }
    }

    /// Experiment on user-provided data.
    pub fn custom(train: Dataset, test: Dataset, config: ExperimentConfig) -> Self {
        CrowdMlExperiment {
            workload: Workload::Custom { train, test },
            config,
        }
    }

    /// The experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Generates and partitions the workload data deterministically from the seed.
    pub fn materialize(&self) -> Result<MaterializedData> {
        self.config.validate()?;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let (partitions, pooled_train, test) = match &self.workload {
            Workload::GaussianMixture(spec) => {
                let (train, test) = spec.generate(&mut rng)?;
                let parts = partition(
                    &train,
                    self.config.devices,
                    PartitionStrategy::Iid,
                    &mut rng,
                )?;
                (parts, train, test)
            }
            Workload::MnistLike { scale } => {
                let (train, test) = mnist_like(&mut rng, *scale)?;
                let parts = partition(
                    &train,
                    self.config.devices,
                    PartitionStrategy::Iid,
                    &mut rng,
                )?;
                (parts, train, test)
            }
            Workload::CifarFeatureLike { scale } => {
                let (train, test) = cifar_feature_like(&mut rng, *scale)?;
                let parts = partition(
                    &train,
                    self.config.devices,
                    PartitionStrategy::Iid,
                    &mut rng,
                )?;
                (parts, train, test)
            }
            Workload::Activity {
                samples_per_device,
                test_samples,
            } => {
                let activity_config = ActivityConfig::default();
                let parts = simulate_fleet(
                    &mut rng,
                    &activity_config,
                    self.config.devices,
                    *samples_per_device,
                )?;
                // One additional simulated device provides the common test set.
                let test = simulate_fleet(&mut rng, &activity_config, 1, *test_samples)?
                    .pop()
                    .expect("one test device requested");
                let mut pooled = Dataset::empty(
                    parts.first().map(|p| p.dim()).unwrap_or(0),
                    parts.first().map(|p| p.num_classes()).unwrap_or(1),
                )?;
                for p in &parts {
                    pooled = pooled.concat(p.clone())?;
                }
                (parts, pooled, test)
            }
            Workload::Custom { train, test } => {
                let parts =
                    partition(train, self.config.devices, PartitionStrategy::Iid, &mut rng)?;
                (parts, train.clone(), test.clone())
            }
        };
        let dim = pooled_train.dim();
        let num_classes = pooled_train.num_classes();
        if dim == 0 || pooled_train.is_empty() {
            return Err(crate::CoreError::Config(
                "workload produced no training data".into(),
            ));
        }
        Ok(MaterializedData {
            partitions,
            pooled_train,
            test,
            dim,
            num_classes,
        })
    }

    fn delay_model(&self) -> DelayModel {
        if self.config.delay_delta > 0.0 {
            DelayModel::Uniform {
                max: self.config.delay_delta,
            }
        } else {
            DelayModel::None
        }
    }

    /// Runs the Crowd-ML system on the workload.
    pub fn run(&self) -> Result<ExperimentOutcome> {
        let data = self.materialize()?;
        let model = MulticlassLogistic::new(data.dim, data.num_classes)?;
        let crowd_config = self.config.crowd_config()?;
        let sim = SimulationConfig::new()
            .with_delay(self.delay_model())
            .with_eval_every(self.config.eval_every(data.pooled_train.len()))
            .with_passes(self.config.passes);
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        let result = run_crowd_ml(
            &model,
            &data.partitions,
            &data.test,
            &crowd_config,
            &sim,
            &mut rng,
        )?;
        let mistakes = result.online_mistakes.clone();
        Ok(ExperimentOutcome {
            curve: result.curve,
            online_error: time_averaged_error(&mistakes),
            server_iterations: result.server_iterations,
            trace: result.trace,
        })
    }

    /// Runs the Centralized (batch) baseline, returning its test error.
    pub fn run_central_batch(&self) -> Result<f64> {
        let data = self.materialize()?;
        let model = MulticlassLogistic::new(data.dim, data.num_classes)?;
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(2));
        let result = central_batch(
            &model,
            &data.pooled_train,
            &data.test,
            &self.config.privacy,
            &BatchConfig {
                lambda: self.config.lambda,
                radius: self.config.radius,
                ..BatchConfig::new()
            },
            &mut rng,
        )?;
        Ok(result.test_error)
    }

    /// Runs the Centralized (SGD) baseline on input-perturbed data, returning its
    /// error curve.
    pub fn run_central_sgd(&self) -> Result<ErrorCurve> {
        let data = self.materialize()?;
        let model = MulticlassLogistic::new(data.dim, data.num_classes)?;
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(3));
        let result = central_sgd(
            &model,
            &data.pooled_train,
            &data.test,
            &self.config.privacy,
            &self.config.sgd_config(data.pooled_train.len()),
            &mut rng,
        )?;
        Ok(result.curve)
    }

    /// Runs the Decentralized baseline, returning its error curve (averaged over at
    /// most `max_eval_devices` devices).
    pub fn run_decentralized(&self, max_eval_devices: usize) -> Result<ErrorCurve> {
        let data = self.materialize()?;
        let model = MulticlassLogistic::new(data.dim, data.num_classes)?;
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(4));
        let result = decentralized(
            &model,
            &data.partitions,
            &data.test,
            &self.config.sgd_config(data.pooled_train.len()),
            max_eval_devices,
            &mut rng,
        )?;
        Ok(result.curve)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ExperimentConfig {
        ExperimentConfig::builder()
            .devices(10)
            .minibatch(1)
            .passes(1.0)
            .rate_constant(2.0)
            .eval_points(5)
            .seed(3)
            .build()
    }

    fn small_spec() -> GaussianMixtureSpec {
        GaussianMixtureSpec::new(8, 3)
            .with_train_size(600)
            .with_test_size(150)
            .with_mean_scale(2.5)
            .with_noise_std(0.6)
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let c = ExperimentConfig::builder()
            .devices(42)
            .minibatch(7)
            .delay_delta(3.0)
            .lambda(0.01)
            .build();
        assert_eq!(c.devices, 42);
        assert_eq!(c.minibatch, 7);
        assert_eq!(c.delay_delta, 3.0);
        assert_eq!(c.lambda, 0.01);
        assert!(c.privacy.is_non_private());
    }

    #[test]
    fn invalid_configs_rejected_at_run_time() {
        let bad = ExperimentConfig::builder().devices(0).build();
        let exp = CrowdMlExperiment::gaussian_mixture(small_spec(), bad);
        assert!(exp.run().is_err());
        let bad2 = ExperimentConfig::builder().minibatch(0).build();
        assert!(CrowdMlExperiment::gaussian_mixture(small_spec(), bad2)
            .materialize()
            .is_err());
    }

    #[test]
    fn materialize_partitions_cover_training_data() {
        let exp = CrowdMlExperiment::gaussian_mixture(small_spec(), small_config());
        let data = exp.materialize().unwrap();
        assert_eq!(data.partitions.len(), 10);
        let total: usize = data.partitions.iter().map(|p| p.len()).sum();
        assert_eq!(total, data.pooled_train.len());
        assert_eq!(data.dim, 8);
        assert_eq!(data.num_classes, 3);
        assert_eq!(data.test.len(), 150);
    }

    #[test]
    fn crowd_run_learns_gaussian_mixture() {
        let exp = CrowdMlExperiment::gaussian_mixture(small_spec(), small_config());
        let outcome = exp.run().unwrap();
        assert!(
            outcome.final_test_error() < 0.2,
            "error {}",
            outcome.final_test_error()
        );
        assert!(!outcome.online_error.is_empty());
        assert!(outcome.server_iterations > 0);
        assert!(outcome.trace.get("samples_generated") > 0);
    }

    #[test]
    fn baselines_run_on_the_same_workload() {
        let exp = CrowdMlExperiment::gaussian_mixture(small_spec(), small_config());
        let batch_err = exp.run_central_batch().unwrap();
        assert!(batch_err < 0.2, "central batch error {batch_err}");
        let sgd_curve = exp.run_central_sgd().unwrap();
        assert!(!sgd_curve.is_empty());
        let dec_curve = exp.run_decentralized(5).unwrap();
        assert!(!dec_curve.is_empty());
        // Decentralized should be worse than central batch on this pooled task.
        assert!(dec_curve.final_error().unwrap() > batch_err);
    }

    #[test]
    fn activity_workload_runs_end_to_end() {
        let config = ExperimentConfig::builder()
            .devices(7)
            .minibatch(1)
            // Within the range that moves the parameters on ~210 samples (see
            // the rate sweep in tests/end_to_end.rs: constants below ~1e-1
            // have not learned yet at this sample count).
            .rate_constant(0.1)
            .eval_points(3)
            .seed(11)
            .build();
        let exp = CrowdMlExperiment::activity(30, 60, config);
        let outcome = exp.run().unwrap();
        // 7 devices × 30 samples = 210 online predictions.
        assert_eq!(outcome.online_error.len(), 210);
        // The classifier must beat chance (2/3 error for 3 balanced classes).
        assert!(
            outcome.final_test_error() < 0.55,
            "error {}",
            outcome.final_test_error()
        );
    }

    #[test]
    fn experiment_is_reproducible() {
        let exp = CrowdMlExperiment::mnist_like(
            0.01,
            ExperimentConfig::builder()
                .devices(20)
                .eval_points(4)
                .seed(5)
                .build(),
        );
        let a = exp.run().unwrap();
        let b = exp.run().unwrap();
        assert_eq!(a.curve, b.curve);
        assert_eq!(a.online_error, b.online_error);
    }

    #[test]
    fn delay_config_maps_to_uniform_model() {
        let exp = CrowdMlExperiment::gaussian_mixture(
            small_spec(),
            ExperimentConfig::builder()
                .delay_delta(10.0)
                .devices(5)
                .build(),
        );
        assert_eq!(exp.delay_model(), DelayModel::Uniform { max: 10.0 });
        let no_delay = CrowdMlExperiment::gaussian_mixture(small_spec(), small_config());
        assert_eq!(no_delay.delay_model(), DelayModel::None);
    }
}
