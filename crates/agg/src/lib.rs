//! `crowd-agg`: a sharded, batched gradient-aggregation runtime behind the
//! Crowd-ML server.
//!
//! The paper's server is conceptually a single sequential loop — devices check
//! out the current parameters `w` and check in sanitized gradients that the
//! server folds into the projected SGD update `w ← Π_W[w − η(t)ĝ]` — but a
//! crowd of devices hammers that loop concurrently. Serializing every checkout
//! *and* checkin through one mutex collapses throughput exactly where the
//! paper's premise demands scale. This crate decomposes the server into:
//!
//! * **Sharded accumulators** ([`shard::ShardSet`]) — N lock stripes, each
//!   holding per-device running gradient sums, merged in a fixed device order
//!   at epoch boundaries so the aggregate is bitwise reproducible no matter how
//!   threads interleave (see the related trick of combining many narrow
//!   Hamming/ECC accumulators into one wide word, Freitas et al.,
//!   arXiv:2306.16259).
//! * **Epoch-snapshotted parameters** ([`runtime::ParamSnapshot`]) — checkouts
//!   clone an `Arc` published at the last update; the read path never waits on
//!   gradient application.
//! * **Bounded ingest with backpressure** ([`queue::BoundedQueue`]) — a full
//!   queue rejects with [`AggError::Busy`] and a retry hint instead of growing
//!   an unbounded thread pileup; a small worker pool drains the queue into the
//!   shards and applies merged epochs.
//!
//! All knobs live on `crowd_core::config::ServerConfig::agg`
//! ([`crowd_core::config::AggSettings`]). With the default `epoch_size = 1`
//! the runtime reproduces the paper's per-checkin update bit for bit; larger
//! epochs apply the mean of the epoch's gradients as one step.

#![forbid(unsafe_code)]

mod dedup;
pub mod queue;
pub mod runtime;
pub mod shard;

pub use queue::BoundedQueue;
pub use runtime::{
    AggRuntime, CompletionHandle, ParamSnapshot, RoundSubmitOutcome, SubmitRejection,
};
pub use shard::ShardSet;

use std::fmt;

/// Errors produced by the aggregation runtime.
#[derive(Debug)]
pub enum AggError {
    /// The ingest queue is full; retry after the indicated backoff.
    Busy {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// The checkin payload failed validation.
    Invalid(String),
    /// The runtime is shutting down and no longer accepts checkins.
    ShuttingDown,
    /// A bounded wait for an epoch application elapsed.
    Timeout,
    /// The device has spent its entire privacy budget; the server refuses to
    /// query it further (neither checkouts nor checkins are served).
    BudgetExhausted {
        /// The exhausted device.
        device_id: u64,
    },
    /// The core framework reported an error.
    Core(crowd_core::CoreError),
    /// The persistence subsystem reported an error.
    Store(crowd_store::StoreError),
}

impl fmt::Display for AggError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggError::Busy { retry_after_ms } => {
                write!(f, "server busy; retry after {retry_after_ms} ms")
            }
            AggError::Invalid(detail) => write!(f, "invalid checkin: {detail}"),
            AggError::ShuttingDown => write!(f, "aggregation runtime is shutting down"),
            AggError::Timeout => write!(f, "timed out waiting for epoch application"),
            AggError::BudgetExhausted { device_id } => {
                write!(f, "device {device_id} has exhausted its privacy budget")
            }
            AggError::Core(e) => write!(f, "core error: {e}"),
            AggError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for AggError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AggError::Core(e) => Some(e),
            AggError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crowd_core::CoreError> for AggError {
    fn from(e: crowd_core::CoreError) -> Self {
        AggError::Core(e)
    }
}

impl From<crowd_store::StoreError> for AggError {
    fn from(e: crowd_store::StoreError) -> Self {
        AggError::Store(e)
    }
}

/// Result alias for aggregation operations.
pub type Result<T> = std::result::Result<T, AggError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_sources() {
        let busy = AggError::Busy { retry_after_ms: 3 };
        assert!(busy.to_string().contains("3 ms"));
        assert!(std::error::Error::source(&busy).is_none());
        let invalid = AggError::Invalid("bad dim".into());
        assert!(invalid.to_string().contains("bad dim"));
        let core: AggError = crowd_core::CoreError::Config("broken".into()).into();
        assert!(core.to_string().contains("broken"));
        assert!(std::error::Error::source(&core).is_some());
        assert!(AggError::ShuttingDown.to_string().contains("shutting down"));
        assert!(AggError::Timeout.to_string().contains("timed out"));
        let exhausted = AggError::BudgetExhausted { device_id: 6 };
        assert!(exhausted.to_string().contains("device 6"));
        assert!(std::error::Error::source(&exhausted).is_none());
        let store: AggError = crowd_store::StoreError::CorruptWal("tail".into()).into();
        assert!(store.to_string().contains("tail"));
        assert!(std::error::Error::source(&store).is_some());
    }
}
